"""Additional behavioural tests: expert disagreement statistic and the
Fig. 8 spread helper."""

import numpy as np
import pytest

from repro.analysis.case_study import CaseStudy, CaseStudyItem
from repro.experiments.fig8 import expert_score_spread


def make_case(score_rows, selected_mask):
    items = [
        CaseStudyItem(label=1 if i == 0 else 0,
                      expert_scores=np.asarray(row, dtype=float),
                      selected=np.asarray(selected_mask, dtype=bool),
                      prediction=float(np.mean(row)))
        for i, row in enumerate(score_rows)
    ]
    return CaseStudy(model_name="m", session_id=0, items=items)


class TestExpertScoreSpread:
    def test_unanimous_experts_zero_spread(self):
        case = make_case([[0.5, 0.5, 0.5, 0.9]], [True, True, True, False])
        assert expert_score_spread(case) == 0.0

    def test_disagreeing_experts_positive_spread(self):
        case = make_case([[0.1, 0.9, 0.5, 0.0]], [True, True, True, False])
        assert expert_score_spread(case) > 0.2

    def test_only_selected_experts_count(self):
        """Idle experts' scores must not affect the spread."""
        base = make_case([[0.5, 0.5, 0.0, 0.0]], [True, True, False, False])
        noisy_idle = make_case([[0.5, 0.5, 0.99, 0.01]], [True, True, False, False])
        assert expert_score_spread(base) == expert_score_spread(noisy_idle)

    def test_mean_over_items(self):
        case = make_case([[0.0, 1.0], [0.5, 0.5]], [True, True])
        assert expert_score_spread(case) == pytest.approx(0.25)


class TestCaseStudyHelpers:
    def test_ranks_positive_first_true(self):
        case = make_case([[0.9, 0.9], [0.1, 0.1]], [True, True])
        assert case.prediction_ranks_positive_first()

    def test_ranks_positive_first_false(self):
        case = make_case([[0.1, 0.1], [0.9, 0.9]], [True, True])
        assert not case.prediction_ranks_positive_first()
