"""Tests for gate clustering analysis (Fig. 6) and the case study (Fig. 8)."""

import numpy as np
import pytest

from repro.analysis import (analyze_gate_clustering, collect_gate_vectors,
                            pick_case_session, run_case_study)
from repro.models import MoERanker


@pytest.fixture()
def model(train_dataset, taxonomy, tiny_model_config):
    return MoERanker(train_dataset.spec, taxonomy, tiny_model_config,
                     use_hsc=True, use_adv=True)


class TestCollectGateVectors:
    def test_shapes_and_labels(self, model, test_dataset, tiny_model_config):
        vectors, labels, names = collect_gate_vectors(model, test_dataset,
                                                      max_examples=100, seed=0)
        assert vectors.shape == (100, tiny_model_config.num_experts)
        assert labels.shape == (100,)
        assert set(labels.tolist()) <= set(range(len(names)))

    def test_one_per_sc_mode(self, model, test_dataset):
        vectors, labels, _ = collect_gate_vectors(model, test_dataset,
                                                  one_per_sc=True)
        seen_sc = np.unique(test_dataset.query_sc)
        assert vectors.shape[0] == seen_sc.size

    def test_vectors_are_distributions(self, model, test_dataset):
        vectors, _, _ = collect_gate_vectors(model, test_dataset, max_examples=50)
        np.testing.assert_allclose(vectors.sum(axis=1), 1.0, atol=1e-9)


class TestAnalyzeGateClustering:
    def test_without_tsne(self, model, test_dataset):
        analysis = analyze_gate_clustering(model, test_dataset, model_name="m",
                                           max_examples=80, run_tsne=False)
        assert analysis.embedding is None
        assert analysis.silhouette_embedding is None
        assert np.isfinite(analysis.silhouette_gate)
        assert np.isfinite(analysis.intra_inter)

    def test_with_tsne(self, model, test_dataset):
        from repro.analysis import TSNEConfig
        analysis = analyze_gate_clustering(
            model, test_dataset, max_examples=40, run_tsne=True,
            tsne_config=TSNEConfig(n_iter=120, exaggeration_iters=40, perplexity=8))
        assert analysis.embedding.shape == (40, 2)


class TestCaseStudy:
    def test_pick_session_structure(self, test_dataset):
        rows = pick_case_session(test_dataset, num_negatives=2, seed=0)
        assert rows.shape == (3,)
        labels = test_dataset.labels[rows]
        assert labels[0] == 1 and (labels[1:] == 0).all()
        sessions = test_dataset.session_ids[rows]
        assert np.unique(sessions).size == 1

    def test_run_case_study(self, model, test_dataset, tiny_model_config):
        rows = pick_case_session(test_dataset, seed=0)
        case = run_case_study(model, test_dataset, rows, model_name="test")
        assert len(case.items) == 3
        for item in case.items:
            assert item.expert_scores.shape == (tiny_model_config.num_experts,)
            assert item.selected.sum() == tiny_model_config.top_k
            assert 0.0 < item.prediction < 1.0

    def test_ranks_positive_first_flag(self, model, test_dataset):
        rows = pick_case_session(test_dataset, seed=0)
        case = run_case_study(model, test_dataset, rows)
        assert case.prediction_ranks_positive_first() in (True, False)

    def test_impossible_request_raises(self, test_dataset):
        with pytest.raises(ValueError):
            pick_case_session(test_dataset, num_negatives=10_000)
