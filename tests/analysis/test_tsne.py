"""Tests for the numpy t-SNE implementation."""

import numpy as np
import pytest

from repro.analysis import TSNEConfig, conditional_probabilities, tsne
from repro.metrics import silhouette_score


class TestAffinities:
    def test_valid_joint_distribution(self):
        x = np.random.default_rng(0).normal(size=(20, 5))
        p = conditional_probabilities(x, perplexity=5.0)
        assert p.shape == (20, 20)
        np.testing.assert_allclose(p, p.T, atol=1e-12)
        assert p.min() > 0
        np.testing.assert_allclose(p.sum(), 1.0, atol=1e-6)

    def test_nearest_neighbors_get_higher_mass(self):
        x = np.array([[0.0], [0.1], [10.0], [10.1]])
        p = conditional_probabilities(x, perplexity=1.5)
        assert p[0, 1] > p[0, 2]
        assert p[2, 3] > p[2, 0]

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            conditional_probabilities(np.zeros((3, 2)), perplexity=5.0)


class TestTSNEConfigValidation:
    def test_perplexity(self):
        with pytest.raises(ValueError):
            TSNEConfig(perplexity=1.0)

    def test_iters_cover_exaggeration(self):
        with pytest.raises(ValueError):
            TSNEConfig(n_iter=50, exaggeration_iters=100)


class TestEmbedding:
    def test_output_shape(self):
        x = np.random.default_rng(0).normal(size=(30, 8))
        y = tsne(x, TSNEConfig(n_iter=120, exaggeration_iters=50, perplexity=8, seed=0))
        assert y.shape == (30, 2)
        assert np.isfinite(y).all()

    def test_deterministic_given_seed(self):
        x = np.random.default_rng(0).normal(size=(20, 4))
        config = TSNEConfig(n_iter=120, exaggeration_iters=50, perplexity=5, seed=3)
        np.testing.assert_allclose(tsne(x, config), tsne(x, config))

    def test_centered_output(self):
        x = np.random.default_rng(0).normal(size=(25, 4))
        y = tsne(x, TSNEConfig(n_iter=120, exaggeration_iters=50, perplexity=5))
        np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=1e-9)

    def test_separates_well_separated_clusters(self):
        """Two far-apart Gaussian blobs must stay separated in 2-D."""
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.3, size=(25, 10))
        b = rng.normal(8.0, 0.3, size=(25, 10))
        x = np.vstack([a, b])
        labels = np.r_[np.zeros(25), np.ones(25)]
        y = tsne(x, TSNEConfig(n_iter=300, exaggeration_iters=80, perplexity=10, seed=0))
        # t-SNE spreads within-cluster points, so the silhouette is modest in
        # absolute terms but far above the ~0 of unstructured data.
        assert silhouette_score(y, labels) > 0.25
        # Nearest-neighbor purity: almost every point's closest neighbor in
        # the embedding shares its blob label.
        from repro.metrics import pairwise_distances
        distances = pairwise_distances(y)
        np.fill_diagonal(distances, np.inf)
        nearest = distances.argmin(axis=1)
        assert (labels[nearest] == labels).mean() > 0.9
