"""Adversarial framing tests for the selector transport + protocol layer.

The keep-alive gateway must survive clients that fragment, stall, flood,
and pipeline: partial header delivery, slow-loris byte-at-a-time bodies
hitting the idle timeout, back-to-back pipelined requests in one
segment, and oversized bodies — all against a **real** selector-backend
server over raw sockets, plus unit coverage of the incremental
:class:`RequestParser` itself and the client's stale-socket retry.
"""

import json
import socket
import time

import numpy as np
import pytest

from repro import serving
from repro.models import build_model
from repro.serving import ProtocolError, RequestParser, ServingClient
from repro.serving.protocol import encode_response


@pytest.fixture(scope="module")
def model(dataset, taxonomy, tiny_model_config):
    return build_model("adv-hsc-moe", dataset.spec, taxonomy,
                       tiny_model_config, train_dataset=dataset)


IDLE_TIMEOUT_S = 0.5
MAX_BODY = 4096


@pytest.fixture(scope="module")
def server(model, dataset):
    registry = serving.ModelRegistry()
    registry.register("ranker", model)
    service = serving.RankingService(registry, default_model="ranker",
                                     num_workers=2, max_wait_ms=0.5)
    server = serving.ServingServer(service, port=0, spec=dataset.spec,
                                   backend="selector",
                                   idle_timeout_s=IDLE_TIMEOUT_S,
                                   max_body_bytes=MAX_BODY)
    server.start()
    client = ServingClient(server.url)
    client.wait_ready(timeout_s=30)
    yield server
    server.close()


def _connect(server) -> socket.socket:
    sock = socket.create_connection((server.host, server.port), timeout=10)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


class _ResponseReader:
    """Reads Content-Length-framed responses, keeping coalesced leftovers
    (pipelined responses often arrive in one segment)."""

    def __init__(self, sock):
        self._sock = sock
        self._buffer = b""

    def read_response(self) -> tuple[int, dict]:
        while b"\r\n\r\n" not in self._buffer:
            chunk = self._sock.recv(65536)
            assert chunk, f"connection closed mid-response: {self._buffer!r}"
            self._buffer += chunk
        head, _, rest = self._buffer.partition(b"\r\n\r\n")
        status = int(head.split()[1])
        headers = dict(line.split(b": ", 1)
                       for line in head.split(b"\r\n")[1:] if b": " in line)
        length = int(headers[b"Content-Length"])
        while len(rest) < length:
            chunk = self._sock.recv(65536)
            assert chunk, "connection closed mid-body"
            rest += chunk
        self._buffer = rest[length:]
        return status, json.loads(rest[:length])


def _read_response(sock) -> tuple[int, dict]:
    """Read exactly one Content-Length-framed response off the socket."""
    return _ResponseReader(sock).read_response()


def _read_until_closed(sock, timeout_s: float = 10.0) -> bytes:
    sock.settimeout(timeout_s)
    buffer = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            return buffer
        buffer += chunk


class TestAdversarialFraming:
    def test_partial_header_delivery(self, server):
        """Headers trickling in across many segments still frame cleanly."""
        sock = _connect(server)
        try:
            for fragment in [b"GET /hea", b"lthz HT", b"TP/1.1\r\n",
                             b"Host: test\r", b"\n", b"\r\n"]:
                sock.sendall(fragment)
                time.sleep(0.02)
            status, payload = _read_response(sock)
        finally:
            sock.close()
        assert status == 200
        assert payload["status"] == "ok"

    def test_partial_body_delivery(self, server):
        """A POST body split byte-by-byte (but inside the idle window)
        is reassembled and dispatched normally."""
        body = json.dumps({"tokens": [1, 2, 3]}).encode()
        head = (f"POST /classify HTTP/1.1\r\nContent-Type: application/json"
                f"\r\nContent-Length: {len(body)}\r\n\r\n").encode()
        sock = _connect(server)
        try:
            sock.sendall(head)
            for i in range(len(body)):
                sock.sendall(body[i:i + 1])
            status, payload = _read_response(sock)
        finally:
            sock.close()
        # The gateway has no classifier registered: structured 400, not
        # a framing error — proving the body made it to dispatch whole.
        assert status == 400
        assert payload["error"]["type"] == "no_classifier"

    def test_slow_loris_body_hits_idle_timeout(self, server):
        """A body that starts and stalls is answered 408 and the
        connection is closed — a stalling client costs one buffer, never
        a pinned thread."""
        sock = _connect(server)
        try:
            sock.sendall(b"POST /rank HTTP/1.1\r\nContent-Length: 500\r\n\r\n")
            sock.sendall(b"{")              # one byte, then silence
            started = time.monotonic()
            data = _read_until_closed(sock)
            elapsed = time.monotonic() - started
        finally:
            sock.close()
        assert b"408" in data.split(b"\r\n", 1)[0]
        assert b"request_timeout" in data
        assert elapsed < 20 * IDLE_TIMEOUT_S    # reaped, not hung

    def test_idle_keepalive_connection_is_reaped_silently(self, server):
        """Between requests there is nothing to answer: the reaper just
        closes the socket (the client's stale-retry handles the race)."""
        sock = _connect(server)
        try:
            sock.sendall(b"GET /healthz HTTP/1.1\r\n\r\n")
            status, _ = _read_response(sock)
            assert status == 200
            data = _read_until_closed(sock)
        finally:
            sock.close()
        assert data == b""                  # no 408 for a quiet connection

    def test_pipelined_requests_in_one_segment(self, server):
        """Back-to-back requests in a single segment get back-to-back
        responses in arrival order."""
        sock = _connect(server)
        try:
            sock.sendall(b"GET /healthz HTTP/1.1\r\n\r\n"
                         b"GET /models HTTP/1.1\r\n\r\n"
                         b"GET /healthz HTTP/1.1\r\n\r\n")
            reader = _ResponseReader(sock)
            first = reader.read_response()
            second = reader.read_response()
            third = reader.read_response()
        finally:
            sock.close()
        assert [s for s, _ in (first, second, third)] == [200, 200, 200]
        assert first[1]["status"] == "ok"           # /healthz
        assert "models" in second[1]                # /models
        assert third[1]["status"] == "ok"           # /healthz again

    def test_oversized_body_is_structured_413(self, server):
        sock = _connect(server)
        try:
            sock.sendall(f"POST /rank HTTP/1.1\r\n"
                         f"Content-Length: {MAX_BODY + 1}\r\n\r\n".encode())
            status, payload = _read_response(sock)
            remainder = _read_until_closed(sock)
        finally:
            sock.close()
        assert status == 413
        assert payload["error"]["type"] == "payload_too_large"
        assert remainder == b""             # framing broke: connection closed

    def test_oversized_body_is_structured_413_threaded(self, model, dataset):
        """The threaded fallback enforces the same body limit."""
        registry = serving.ModelRegistry()
        registry.register("ranker", model)
        service = serving.RankingService(registry, default_model="ranker")
        with serving.ServingServer(service, port=0, backend="threaded",
                                   max_body_bytes=MAX_BODY).start() as srv:
            ServingClient(srv.url).wait_ready(timeout_s=30)
            sock = _connect(srv)
            try:
                sock.sendall(f"POST /rank HTTP/1.1\r\n"
                             f"Content-Length: {MAX_BODY + 1}\r\n\r\n".encode())
                status, payload = _read_response(sock)
            finally:
                sock.close()
        assert status == 413
        assert payload["error"]["type"] == "payload_too_large"

    def test_valid_request_answered_before_pipelined_garbage(self, server):
        """A segment carrying a good request followed by a framing
        violation still answers the good request first, then the
        structured error, then closes — responses never jump the line."""
        sock = _connect(server)
        try:
            sock.sendall(b"GET /healthz HTTP/1.1\r\n\r\n"
                         b"GARBAGE\r\n\r\n")
            reader = _ResponseReader(sock)
            first = reader.read_response()
            second = reader.read_response()
            remainder = _read_until_closed(sock)
        finally:
            sock.close()
        assert first[0] == 200 and first[1]["status"] == "ok"
        assert second[0] == 400
        assert second[1]["error"]["type"] == "bad_request"
        assert remainder == b""

    def test_malformed_request_line_is_400_and_close(self, server):
        sock = _connect(server)
        try:
            sock.sendall(b"NOT A REQUEST LINE AT ALL\r\n\r\n")
            status, payload = _read_response(sock)
            remainder = _read_until_closed(sock)
        finally:
            sock.close()
        assert status == 400
        assert payload["error"]["type"] == "bad_request"
        assert remainder == b""

    def test_huge_headers_are_structured_431(self, server):
        sock = _connect(server)
        try:
            sock.sendall(b"GET /healthz HTTP/1.1\r\n"
                         + b"X-Filler: " + b"a" * 20000 + b"\r\n\r\n")
            status, payload = _read_response(sock)
        finally:
            sock.close()
        assert status == 431
        assert payload["error"]["type"] == "headers_too_large"

    def test_gateway_survives_framing_abuse(self, server, dataset, model):
        """After all of the above, the gateway still scores correctly."""
        client = ServingClient(server.url)
        batch = dataset.batch(np.arange(10))
        result = client.rank(batch.numeric, batch.sparse, top_k=4)
        np.testing.assert_allclose(result["scores"],
                                   np.sort(model.score(batch))[::-1][:4],
                                   atol=1e-9)


class TestRequestParser:
    """Unit coverage of the incremental parser, no sockets involved."""

    def test_single_request_in_fragments(self):
        parser = RequestParser()
        body = b'{"x": 1}'
        wire = (b"POST /rank HTTP/1.1\r\nContent-Length: "
                + str(len(body)).encode() + b"\r\n\r\n" + body)
        requests = []
        for i in range(len(wire)):          # worst case: byte at a time
            requests += parser.feed(wire[i:i + 1])
        assert len(requests) == 1
        request = requests[0]
        assert request.method == "POST"
        assert request.path == "/rank"
        assert request.body == body
        assert request.keep_alive

    def test_pipelined_requests_in_one_feed(self):
        parser = RequestParser()
        wire = (b"GET /healthz HTTP/1.1\r\n\r\n"
                b"POST /rank HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
                b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n")
        requests = parser.feed(wire)
        assert [r.path for r in requests] == ["/healthz", "/rank", "/stats"]
        assert requests[1].body == b"hi"
        assert requests[0].keep_alive and not requests[2].keep_alive

    def test_blank_lines_between_requests_do_not_stall(self):
        """Leading CRLFs before a complete request in the same segment
        must not leave it stuck in the buffer (RFC 9112 §2.2)."""
        parser = RequestParser()
        requests = parser.feed(b"\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n")
        assert [r.path for r in requests] == ["/healthz"]
        # And between pipelined keep-alive requests.
        requests = parser.feed(b"GET /stats HTTP/1.1\r\n\r\n"
                               b"\r\nGET /models HTTP/1.1\r\n\r\n")
        assert [r.path for r in requests] == ["/stats", "/models"]
        assert not parser.mid_request

    def test_path_normalization(self):
        parser = RequestParser()
        request, = parser.feed(b"GET /models/?verbose=1 HTTP/1.1\r\n\r\n")
        assert request.target == "/models/?verbose=1"
        assert request.path == "/models"

    def test_http10_defaults_to_close(self):
        parser = RequestParser()
        request, = parser.feed(b"GET /healthz HTTP/1.0\r\n\r\n")
        assert not request.keep_alive
        request, = parser.feed(
            b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        assert request.keep_alive

    def test_mid_request_flag(self):
        parser = RequestParser()
        assert not parser.mid_request
        assert parser.feed(b"GET /healthz") == []
        assert parser.mid_request           # header bytes buffered
        parser.feed(b" HTTP/1.1\r\nContent-Length: 4\r\n\r\nab")
        assert parser.mid_request           # body incomplete
        request, = parser.feed(b"cd")
        assert request.body == b"abcd"
        assert not parser.mid_request

    @pytest.mark.parametrize("wire,status,kind", [
        (b"GARBAGE\r\n\r\n", 400, "bad_request"),
        (b"GET /x HTTP/9.9\r\n\r\n", 505, "http_version_not_supported"),
        (b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
         400, "bad_request"),
        (b"GET /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
         400, "bad_request"),
        (b"GET /x HTTP/1.1\r\nBroken header line\r\n\r\n",
         400, "bad_request"),
        (b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
         501, "unsupported_framing"),
    ])
    def test_framing_violations(self, wire, status, kind):
        parser = RequestParser()
        with pytest.raises(ProtocolError) as excinfo:
            parser.feed(wire)
        assert excinfo.value.status == status
        assert excinfo.value.kind == kind

    def test_body_over_limit_is_413(self):
        parser = RequestParser(max_body_bytes=10)
        with pytest.raises(ProtocolError) as excinfo:
            parser.feed(b"POST /x HTTP/1.1\r\nContent-Length: 11\r\n\r\n")
        assert excinfo.value.status == 413
        assert excinfo.value.kind == "payload_too_large"

    def test_error_carries_requests_completed_first(self):
        """Requests framed before the violation in the same feed ride
        the exception as ``.completed`` — the transport owes them
        responses ahead of the error."""
        parser = RequestParser()
        with pytest.raises(ProtocolError) as excinfo:
            parser.feed(b"GET /healthz HTTP/1.1\r\n\r\nGARBAGE\r\n\r\n")
        assert [r.path for r in excinfo.value.completed] == ["/healthz"]

    def test_parser_dead_after_error(self):
        parser = RequestParser()
        with pytest.raises(ProtocolError):
            parser.feed(b"GARBAGE\r\n\r\n")
        with pytest.raises(ProtocolError):
            parser.feed(b"GET /healthz HTTP/1.1\r\n\r\n")

    def test_encode_response_is_single_segment(self):
        data = encode_response(200, {"ok": True}, keep_alive=True)
        head, _, body = data.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Connection: keep-alive" in head
        assert json.loads(body) == {"ok": True}
        assert f"Content-Length: {len(body)}".encode() in head


class TestEventLoopDoesNotSpin:
    def test_desynced_stream_with_inflight_handler_parks_the_socket(self):
        """A framing error behind an in-flight request leaves the
        connection with nothing to watch; it must be parked (selector
        unregistered), not registered for always-ready writes — that
        would spin the event loop at 100% CPU for the handler's whole
        runtime."""
        import threading

        from repro.serving import SelectorTransport

        release = threading.Event()

        class StubDispatcher:
            def dispatch(self, method, path, body, **context):
                release.wait(10)        # a slow scoring request
                return 200, {"ok": True}, {}

            def record_protocol_error(self):
                pass

        transport = SelectorTransport("127.0.0.1", 0, StubDispatcher(),
                                      idle_timeout_s=30.0)
        thread = threading.Thread(target=transport.serve_forever, daemon=True)
        thread.start()
        sock = socket.create_connection(transport.server_address, timeout=10)
        try:
            # Valid request (dispatched, blocks in the stub) + garbage
            # (desyncs the stream while the handler is in flight).
            sock.sendall(b"GET /x HTTP/1.1\r\n\r\nGARBAGE\r\n\r\n")
            time.sleep(0.3)             # let the loop ingest both
            cpu_before = time.process_time()
            time.sleep(0.6)
            cpu_used = time.process_time() - cpu_before
            release.set()
            reader = _ResponseReader(sock)
            assert reader.read_response()[0] == 200
            assert reader.read_response()[0] == 400
            assert _read_until_closed(sock) == b""
        finally:
            sock.close()
            transport.shutdown()
            transport.server_close()
        # A spinning loop burns ~0.6s CPU in the 0.6s window; a parked
        # one burns approximately nothing.
        assert cpu_used < 0.3, f"event loop burned {cpu_used:.2f}s CPU"

    def test_loop_blocks_while_handler_in_flight(self):
        """The event loop is event-driven, not polled: with every
        connection's handler in flight there is nothing reapable, so
        select() must block indefinitely instead of waking on a timer.
        The old idle floor (``max(poll_interval, 0.05)``) woke the loop
        20x/s here; the wakeup counter pins the fix."""
        import threading

        from repro.serving import SelectorTransport

        release = threading.Event()

        class StubDispatcher:
            def dispatch(self, method, path, body, **context):
                release.wait(10)        # hold the request in flight
                return 200, {"ok": True}, {}

            def record_protocol_error(self):
                pass

        transport = SelectorTransport("127.0.0.1", 0, StubDispatcher(),
                                      idle_timeout_s=30.0)
        thread = threading.Thread(target=transport.serve_forever, daemon=True)
        thread.start()
        sock = socket.create_connection(transport.server_address, timeout=10)
        try:
            sock.sendall(b"GET /x HTTP/1.1\r\n\r\n")
            time.sleep(0.2)             # accept + dispatch settle
            before = transport.loop_wakeups
            time.sleep(1.0)             # nothing happens: loop must sleep
            quiet_wakeups = transport.loop_wakeups - before
            release.set()
            reader = _ResponseReader(sock)
            assert reader.read_response()[0] == 200
        finally:
            sock.close()
            transport.shutdown()
            transport.server_close()
        # A 0.05s poll floor would produce ~20 wakeups in the quiet
        # second; an event-driven loop produces none (a small allowance
        # covers stray scheduling artifacts).
        assert quiet_wakeups <= 3, \
            f"loop woke {quiet_wakeups} times with nothing to do"


class TestClientStaleSocketRetry:
    """The keep-alive client rides out server-side idle reaping."""

    def test_retries_once_on_reaped_connection(self, server):
        client = ServingClient(server.url)
        assert client.healthz()["status"] == "ok"
        # Wait for the server's idle reaper to close our connection.
        time.sleep(IDLE_TIMEOUT_S * 3)
        assert client.healthz()["status"] == "ok"   # transparent retry
        assert client.stale_retries == 1

    def test_idle_reconnect_avoids_the_race(self, server):
        """With idle_reconnect_s under the server's timeout, the client
        reconnects proactively and never even hits the stale socket."""
        client = ServingClient(server.url,
                               idle_reconnect_s=IDLE_TIMEOUT_S / 2)
        assert client.healthz()["status"] == "ok"
        time.sleep(IDLE_TIMEOUT_S * 3)
        assert client.healthz()["status"] == "ok"
        assert client.stale_retries == 0

    def test_timeout_on_reused_connection_is_not_retried(self):
        """A socket timeout is not the stale-socket signature: the server
        may still be processing the first copy, so a transparent retry
        would double-execute the request.  It must surface."""
        import threading

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        requests_seen = []

        def serve_one_then_stall():
            conn, _ = listener.accept()
            conn.settimeout(10)
            # First request: answer normally (keep-alive).
            while b"\r\n\r\n" not in conn.recv(65536):
                pass
            requests_seen.append("answered")
            body = b'{"status": "ok"}'
            conn.sendall(b"HTTP/1.1 200 OK\r\nContent-Type: application/json"
                         b"\r\nContent-Length: " + str(len(body)).encode()
                         + b"\r\n\r\n" + body)
            # Second request: swallow it and never respond.
            try:
                conn.recv(65536)
                requests_seen.append("stalled")
                time.sleep(3)
            except OSError:
                pass
            conn.close()

        thread = threading.Thread(target=serve_one_then_stall, daemon=True)
        thread.start()
        client = ServingClient(f"http://127.0.0.1:{port}", timeout=0.5)
        try:
            assert client.healthz()["status"] == "ok"
            with pytest.raises(TimeoutError):
                client.healthz()        # reused conn, times out: surfaces
            assert client.stale_retries == 0
            # The stalled request was sent exactly once — no double-send.
            assert requests_seen == ["answered", "stalled"]
        finally:
            listener.close()

    def test_fresh_connection_failure_surfaces(self):
        """A failure on a *fresh* connection is a real error: no retry
        that could double-send a request."""
        # A listener that accepts and immediately closes: every request
        # rides a fresh-but-dead connection.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        port = listener.getsockname()[1]
        import threading

        def reject_all():
            try:
                while True:
                    conn, _ = listener.accept()
                    conn.close()
            except OSError:
                pass

        thread = threading.Thread(target=reject_all, daemon=True)
        thread.start()
        client = ServingClient(f"http://127.0.0.1:{port}", timeout=5)
        try:
            with pytest.raises(OSError):
                client.healthz()
            assert client.stale_retries == 0
        finally:
            listener.close()


class TestShardedTransport:
    """Gateway sharding: N selector loops behind one port."""

    def test_listeners_share_one_port(self):
        listeners, _ = serving.ShardedTransport._make_listeners(
            "127.0.0.1", 0, 3, allow_reuse_port=True)
        try:
            assert len(listeners) == 3
            assert len({sock.getsockname()[1] for sock in listeners}) == 1
        finally:
            for sock in listeners:
                sock.close()

    def test_dup_fallback_without_reuse_port(self):
        """Hosts without SO_REUSEPORT still shard: one bound listener,
        dup()'d per shard."""
        listeners, used_reuse_port = serving.ShardedTransport._make_listeners(
            "127.0.0.1", 0, 2, allow_reuse_port=False)
        try:
            assert used_reuse_port is False
            assert len(listeners) == 2
            assert len({sock.getsockname()[1] for sock in listeners}) == 1
        finally:
            for sock in listeners:
                sock.close()

    def test_threaded_backend_rejects_shards(self):
        from repro.serving.transport import create_transport
        with pytest.raises(ValueError, match="selector"):
            create_transport("threaded", "127.0.0.1", 0, None, shards=2)

    def test_sharded_gateway_end_to_end(self, model, dataset):
        registry = serving.ModelRegistry()
        registry.register("ranker", model)
        service = serving.RankingService(registry, default_model="ranker",
                                         num_workers=2, max_wait_ms=0.5)
        server = serving.ServingServer(service, port=0, spec=dataset.spec,
                                       backend="selector", gateway_shards=2)
        try:
            assert isinstance(server._transport, serving.ShardedTransport)
            assert server._transport.shards == 2
            server.start()
            batch = dataset.batch(np.arange(12))
            reference = np.sort(model.score(batch))[::-1][:4]
            # Fresh client (= fresh connection) per request: the kernel is
            # free to land each one on either shard, and every answer must
            # be identical.
            for _ in range(8):
                client = ServingClient(server.url)
                client.wait_ready(timeout_s=30)
                result = client.rank(batch.numeric, batch.sparse, top_k=4)
                np.testing.assert_allclose(result["scores"], reference,
                                           atol=1e-9)
            assert server._transport.loop_wakeups > 0
        finally:
            server.close()

    def test_sharded_gateway_dup_fallback_end_to_end(self, model, dataset):
        registry = serving.ModelRegistry()
        registry.register("ranker", model)
        service = serving.RankingService(registry, default_model="ranker",
                                         num_workers=1, max_wait_ms=0.0)
        server = serving.ServingServer(service, port=0, spec=dataset.spec,
                                       backend="selector")
        # Swap in a transport forced onto the dup() path, reusing the
        # server's dispatcher — proves the fallback serves identically.
        server._transport.server_close()
        server._transport = serving.ShardedTransport(
            "127.0.0.1", 0, server.dispatcher, counters=server.counters,
            shards=2, force_dup_fallback=True)
        try:
            assert server._transport.reuse_port is False
            server.start()
            client = ServingClient(server.url)
            client.wait_ready(timeout_s=30)
            batch = dataset.batch(np.arange(6))
            result = client.rank(batch.numeric, batch.sparse, top_k=3)
            np.testing.assert_allclose(
                result["scores"], np.sort(model.score(batch))[::-1][:3],
                atol=1e-9)
        finally:
            server.close()
