"""Tests for the version-keyed result cache (:mod:`repro.serving.cache`).

Three layers: :func:`canonical_key` canonicalization, the
:class:`ResultCache` LRU/TTL mechanics (with an injected clock — no
sleeps), and the service/gateway integration — cached answers must be
bit-identical to recomputation per model version, a hot reload must make
new-version answers immediately visible (the version lives in the key),
and degraded fallback answers must never be cached.
"""

import urllib.request

import numpy as np
import pytest

from repro import serving
from repro.models import build_model
from repro.querycat import QueryCategoryClassifier, QueryClassifierConfig
from repro.serving import (BreakerConfig, ModelRegistry, RankingService,
                           ResultCache, ServingClient, candidate_batch,
                           canonical_key)


# ----------------------------------------------------------------------
# canonical_key
# ----------------------------------------------------------------------
class TestCanonicalKey:
    def test_sparse_dict_order_independent(self):
        numeric = np.arange(6.0).reshape(2, 3)
        a = {"brand": np.array([1, 2]), "item_sc": np.array([3, 4])}
        b = {"item_sc": np.array([3, 4]), "brand": np.array([1, 2])}
        assert list(a) != list(b)       # genuinely different insertion order
        assert canonical_key(numeric, a) == canonical_key(numeric, b)

    def test_dtype_stable(self):
        # The same values arriving as f32/f64 or i32/i64 must collide:
        # clients serialize however their JSON decoder decided.
        f64 = np.array([[0.5, -1.25]], dtype=np.float64)
        f32 = np.array([[0.5, -1.25]], dtype=np.float32)
        assert canonical_key(f64) == canonical_key(f32)
        i64 = {"a": np.array([1, 2], dtype=np.int64)}
        i32 = {"a": np.array([1, 2], dtype=np.int32)}
        assert canonical_key(f64, i64) == canonical_key(f64, i32)

    def test_negative_zero_collapses(self):
        assert canonical_key(np.array([[0.0]])) == \
            canonical_key(np.array([[-0.0]]))

    def test_nan_bit_patterns_collapse(self):
        # -nan carries a different sign bit than the quiet nan; for
        # caching purposes all NaNs are the same (scoring treats them
        # identically), so the keys must match.
        quiet = np.array([[np.nan, 1.0]])
        negative = np.array([[-np.nan, 1.0]])
        assert np.signbit(negative[0, 0]) != np.signbit(quiet[0, 0])
        assert canonical_key(quiet) == canonical_key(negative)

    def test_values_and_names_change_the_key(self):
        numeric = np.ones((2, 2))
        base = canonical_key(numeric, {"a": np.array([1])})
        assert canonical_key(numeric + 1, {"a": np.array([1])}) != base
        assert canonical_key(numeric, {"a": np.array([2])}) != base
        assert canonical_key(numeric, {"b": np.array([1])}) != base

    def test_shape_is_part_of_the_digest(self):
        flat = np.arange(6.0)
        assert canonical_key(flat.reshape(2, 3)) != \
            canonical_key(flat.reshape(3, 2))

    def test_extra_scopes_the_key(self):
        numeric = np.zeros((1, 2))
        assert canonical_key(numeric, extra=("classify",)) != \
            canonical_key(numeric, extra=("rank",))

    def test_input_not_mutated(self):
        # NaN canonicalization happens on an internal copy.
        numeric = np.array([[-np.nan, -0.0]])
        before = numeric.copy()
        canonical_key(numeric)
        np.testing.assert_array_equal(
            numeric.view(np.int64), before.view(np.int64))


# ----------------------------------------------------------------------
# ResultCache mechanics
# ----------------------------------------------------------------------
class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestResultCache:
    def test_rejects_disabled_configurations(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)
        with pytest.raises(ValueError):
            ResultCache(ttl_s=0.0)

    def test_ttl_expiry_counts_and_drops(self):
        clock = _FakeClock()
        cache = ResultCache(max_entries=4, ttl_s=10.0, clock=clock)
        cache.put("k", "v")
        clock.now += 9.99
        assert cache.get("k") == "v"
        clock.now += 10.0               # stale relative to the original put
        assert cache.get("k") is None
        assert len(cache) == 0          # expired entries are removed
        snap = cache.snapshot()
        assert snap["expired"] == 1
        assert snap["misses"] == 1 and snap["hits"] == 1

    def test_put_refreshes_ttl(self):
        clock = _FakeClock()
        cache = ResultCache(max_entries=4, ttl_s=10.0, clock=clock)
        cache.put("k", "old")
        clock.now += 8.0
        cache.put("k", "new")
        clock.now += 8.0                # 16s after first put, 8s after second
        assert cache.get("k") == "new"

    def test_no_ttl_never_expires(self):
        clock = _FakeClock()
        cache = ResultCache(max_entries=4, ttl_s=None, clock=clock)
        cache.put("k", "v")
        clock.now += 1e9
        assert cache.get("k") == "v"

    def test_lru_eviction_respects_recency(self):
        cache = ResultCache(max_entries=2, ttl_s=None)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1      # touch: a is now most recent
        cache.put("c", 3)               # evicts b, the least recent
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.snapshot()["evictions"] == 1

    def test_hit_rate(self):
        cache = ResultCache(max_entries=2, ttl_s=None)
        cache.put("a", 1)
        cache.get("a")
        cache.get("ghost")
        assert cache.snapshot()["hit_rate"] == pytest.approx(0.5)

    def test_clear(self):
        cache = ResultCache(max_entries=2, ttl_s=None)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None


# ----------------------------------------------------------------------
# Service integration
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def model(dataset, taxonomy, tiny_model_config):
    return build_model("adv-hsc-moe", dataset.spec, taxonomy,
                       tiny_model_config, train_dataset=dataset)


@pytest.fixture(scope="module")
def classifier(log, taxonomy):
    return QueryCategoryClassifier(
        log.queries.vocab_size, taxonomy.max_sc_id() + 1,
        QueryClassifierConfig(embedding_dim=8, hidden_size=10))


@pytest.fixture()
def batch(dataset):
    return dataset.batch(np.arange(16))


def _cached_service(registry, **kwargs):
    return RankingService(registry, max_wait_ms=0.0,
                          result_cache=ResultCache(max_entries=64,
                                                   ttl_s=None),
                          **kwargs)


class TestServiceCaching:
    def test_hit_is_bit_identical_to_compute(self, model, batch):
        registry = ModelRegistry()
        registry.register("ranker", model)
        with _cached_service(registry, default_model="ranker") as service:
            first = service.rank(batch, top_k=7)
            second = service.rank(batch, top_k=7)
        assert first.cached is False and second.cached is True
        # Bit-identical, not just allclose: the cache hands back the
        # array the compute path produced.
        np.testing.assert_array_equal(first.scores, second.scores)
        np.testing.assert_array_equal(first.indices, second.indices)
        assert second.model_version == first.model_version
        snap = service.result_cache.snapshot()
        assert snap["hits"] == 1

    def test_entries_are_pre_topk_so_topk_variants_share(self, model, batch):
        registry = ModelRegistry()
        registry.register("ranker", model)
        with _cached_service(registry, default_model="ranker") as service:
            service.rank(batch, top_k=3)
            wider = service.rank(batch, top_k=9)
        assert wider.cached is True
        assert wider.indices.shape == (9,)
        direct = model.score(batch)
        np.testing.assert_allclose(wider.scores,
                                   np.sort(direct)[::-1][:9], atol=1e-12)

    def test_version_in_key_isolates_reloads(self, model, dataset, taxonomy,
                                             tiny_model_config, batch):
        fresh = build_model("adv-hsc-moe", dataset.spec, taxonomy,
                            tiny_model_config.with_updates(seed=77),
                            train_dataset=dataset)
        registry = ModelRegistry()
        registry.register("ranker", model)
        with _cached_service(registry, default_model="ranker") as service:
            v1 = service.rank(batch, top_k=5)
            assert service.rank(batch, top_k=5).cached is True
            registry.register("ranker", fresh)      # the hot reload
            v2 = service.rank(batch, top_k=5)
            # New version: structurally a miss, answered by the new model.
            assert v2.cached is False
            assert v2.model_version == 2
            np.testing.assert_allclose(
                v2.scores, np.sort(fresh.score(batch))[::-1][:5], atol=1e-12)
            assert service.rank(batch, top_k=5).cached is True
            # A caller pinning the old version still hits its own entry.
            pinned = service.rank(batch, top_k=5, version=1)
            assert pinned.cached is True
            assert pinned.model_version == 1
            np.testing.assert_array_equal(pinned.scores, v1.scores)

    def test_degraded_answers_never_cached(self, batch):
        class _Bomb:
            armed = True

            def score(self, b):
                if self.armed:
                    raise RuntimeError("model exploded")
                return np.zeros(len(b))

        registry = ModelRegistry()
        registry.register("m", _Bomb())
        with RankingService(
                registry, default_model="m", max_wait_ms=0.0,
                result_cache=ResultCache(max_entries=64, ttl_s=None),
                breaker_config=BreakerConfig(window_s=10.0,
                                             failure_threshold=0.5,
                                             min_requests=2,
                                             cooldown_s=60.0)) as service:
            for _ in range(2):
                with pytest.raises(RuntimeError):
                    service.rank(batch)
            degraded = service.rank(batch)
            assert degraded.degraded is True
            assert degraded.cached is False
            # Nothing was stored: a repeat is computed (degraded) again,
            # and the outage's prior can never shadow a healthy answer.
            assert len(service.result_cache) == 0
            repeat = service.rank(batch)
            assert repeat.degraded is True and repeat.cached is False
            assert len(service.result_cache) == 0

    def test_classify_memoized(self, model, classifier, taxonomy, log):
        registry = ModelRegistry()
        registry.register("ranker", model)
        queries = log.queries
        with _cached_service(registry, default_model="ranker",
                             classifier=classifier,
                             taxonomy=taxonomy) as service:
            first = service.classify_query(queries.tokens[0],
                                           queries.lengths[0])
            hits_before = service.result_cache.snapshot()["hits"]
            second = service.classify_query(queries.tokens[0],
                                            queries.lengths[0])
        assert second == first
        assert service.result_cache.snapshot()["hits"] == hits_before + 1

    def test_uncached_service_never_marks_cached(self, model, batch):
        registry = ModelRegistry()
        registry.register("ranker", model)
        with RankingService(registry, default_model="ranker",
                            max_wait_ms=0.0) as service:
            assert service.rank(batch).cached is False
            assert service.rank(batch).cached is False
            assert service.result_cache is None
            assert service.cache_stats()["enabled"] is False


# ----------------------------------------------------------------------
# Over the wire
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def checkpoint_dir(model, dataset, taxonomy, tmp_path_factory):
    directory = tmp_path_factory.mktemp("cache-ckpts")
    serving.save_environment(directory, dataset.spec, taxonomy)
    serving.save_checkpoint(model, directory / "ranker", "adv-hsc-moe")
    return directory


@pytest.fixture(scope="module")
def wire(checkpoint_dir):
    server = serving.serve_from_directory(checkpoint_dir, port=0,
                                          num_workers=2, max_wait_ms=0.5,
                                          backend="selector")
    server.start()
    client = ServingClient(server.url)
    client.wait_ready(timeout_s=30)
    yield server, client
    server.close()


class TestCacheOverTheWire:
    def test_repeat_request_hits_and_matches(self, wire, batch):
        _, client = wire
        first = client.rank(batch.numeric, batch.sparse, top_k=6)
        second = client.rank(batch.numeric, batch.sparse, top_k=6)
        assert first["cached"] is False
        assert second["cached"] is True
        np.testing.assert_array_equal(second["scores"], first["scores"])
        np.testing.assert_array_equal(second["indices"], first["indices"])
        cache = client.stats()["cache"]
        assert cache["enabled"] is True
        assert cache["hits"] >= 1

    def test_reload_serves_new_version_immediately(self, wire, checkpoint_dir,
                                                   dataset, taxonomy,
                                                   tiny_model_config, batch):
        _, client = wire
        warm = client.rank(batch.numeric, batch.sparse, top_k=4)
        assert client.rank(batch.numeric, batch.sparse,
                           top_k=4)["cached"] is True
        fresh = build_model("adv-hsc-moe", dataset.spec, taxonomy,
                            tiny_model_config.with_updates(seed=123),
                            train_dataset=dataset)
        serving.save_checkpoint(fresh, checkpoint_dir / "ranker",
                                "adv-hsc-moe")
        assert {"name": "ranker", "version": 2} in \
            client.reload()["registered"]
        served = client.rank(batch.numeric, batch.sparse, top_k=4)
        # The version lives in the key: no flush happened, yet the answer
        # is the new model's, immediately.
        assert served["cached"] is False
        assert served["model_version"] == 2
        assert not np.array_equal(served["scores"], warm["scores"])
        np.testing.assert_allclose(served["scores"],
                                   np.sort(fresh.score(batch))[::-1][:4],
                                   atol=1e-9)
        again = client.rank(batch.numeric, batch.sparse, top_k=4)
        assert again["cached"] is True and again["model_version"] == 2

    def test_metrics_expose_cache_families(self, wire):
        server, _ = wire
        response = urllib.request.urlopen(server.url + "/metrics", timeout=5)
        text = response.read().decode("utf-8")
        for family in ("result_cache_enabled", "result_cache_entries",
                       "result_cache_hits_total",
                       "result_cache_misses_total",
                       "result_cache_evictions_total",
                       "result_cache_expired_total"):
            assert family in text

    def test_cache_disabled_gateway(self, checkpoint_dir, batch):
        server = serving.serve_from_directory(checkpoint_dir, port=0,
                                              num_workers=1, max_wait_ms=0.5,
                                              backend="selector",
                                              cache_entries=0)
        server.start()
        try:
            client = ServingClient(server.url)
            client.wait_ready(timeout_s=30)
            assert client.rank(batch.numeric,
                               batch.sparse)["cached"] is False
            assert client.rank(batch.numeric,
                               batch.sparse)["cached"] is False
            assert client.stats()["cache"]["enabled"] is False
        finally:
            server.close()
