"""End-to-end tests for the HTTP serving gateway.

A real :class:`ServingServer` is started on an ephemeral port from a
checkpoint directory, and every request goes over the wire through
:class:`ServingClient` (or raw urllib for malformed-payload cases).  The
/healthz and /stats response schemas are pinned: they are the monitoring
contract.

The whole module is parametrized over **both connection backends** —
the selector event loop and the threaded fallback serve the same
protocol and dispatch layers, and this suite (including the hot-reload
path) is what pins their behavioral parity.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import serving
from repro.models import build_model
from repro.querycat import QueryCategoryClassifier, QueryClassifierConfig
from repro.serving import ServingClient, ServingError


@pytest.fixture(scope="module", params=["selector", "threaded"])
def backend(request):
    return request.param


@pytest.fixture(scope="module")
def model(dataset, taxonomy, tiny_model_config):
    return build_model("adv-hsc-moe", dataset.spec, taxonomy,
                       tiny_model_config, train_dataset=dataset)


@pytest.fixture(scope="module")
def checkpoint_dir(model, dataset, taxonomy, log, tmp_path_factory, backend):
    # Fresh directory per backend: the hot-reload test mutates it.
    directory = tmp_path_factory.mktemp(f"gateway-ckpts-{backend}")
    serving.save_environment(directory, dataset.spec, taxonomy)
    serving.save_checkpoint(model, directory / "ranker", "adv-hsc-moe")
    classifier = QueryCategoryClassifier(
        log.queries.vocab_size, taxonomy.max_sc_id() + 1,
        QueryClassifierConfig(embedding_dim=8, hidden_size=10))
    serving.save_classifier_checkpoint(classifier, directory / "querycat")
    return directory


@pytest.fixture(scope="module")
def server(checkpoint_dir, backend):
    server = serving.serve_from_directory(checkpoint_dir, port=0,
                                          num_workers=2, max_wait_ms=0.5,
                                          backend=backend)
    server.start()
    yield server
    server.close()


@pytest.fixture(scope="module")
def client(server):
    client = ServingClient(server.url)
    client.wait_ready(timeout_s=30)
    return client


@pytest.fixture()
def batch(dataset):
    return dataset.batch(np.arange(20))


def _raw_post(url, path, body: bytes, content_type="application/json"):
    request = urllib.request.Request(url + path, data=body,
                                     headers={"Content-Type": content_type})
    return urllib.request.urlopen(request, timeout=10)


class TestRankEndpoint:
    def test_rank_round_trip_matches_reference(self, client, model, batch):
        result = client.rank(batch.numeric, batch.sparse, top_k=6)
        reference = model.score(batch)
        assert result["model_name"] == "ranker"
        np.testing.assert_allclose(result["scores"],
                                   np.sort(reference)[::-1][:6], atol=1e-9)
        np.testing.assert_allclose(reference[result["indices"]],
                                   result["scores"], atol=1e-9)
        assert result["latency_ms"] > 0

    def test_rank_with_query_intent(self, client, log, batch, taxonomy):
        queries = log.queries
        result = client.rank(batch.numeric, batch.sparse,
                             query_tokens=queries.tokens[0],
                             query_lengths=int(queries.lengths[0]), top_k=3)
        assert result["predicted_sc"] is not None
        expected_tc = int(taxonomy.parents_of(
            np.asarray([result["predicted_sc"]]))[0])
        assert result["predicted_tc"] == expected_tc

    def test_unknown_model_is_structured_404(self, client, batch):
        with pytest.raises(ServingError) as excinfo:
            client.rank(batch.numeric, batch.sparse, model="ghost")
        assert excinfo.value.status == 404
        assert excinfo.value.kind == "unknown_model"

    def test_unknown_version_is_structured_404(self, client, batch):
        with pytest.raises(ServingError) as excinfo:
            client.rank(batch.numeric, batch.sparse, model="ranker", version=99)
        assert excinfo.value.status == 404

    def test_malformed_json_is_structured_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _raw_post(server.url, "/rank", b"{not json at all")
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read())
        assert payload["error"]["type"] == "bad_json"
        assert "message" in payload["error"]

    def test_missing_candidates_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _raw_post(server.url, "/rank", json.dumps({"top_k": 3}).encode())
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"]["type"] == "bad_request"

    def test_mismatched_sparse_lengths_is_400(self, client, batch):
        bad_sparse = dict(batch.sparse)
        bad_sparse["brand"] = np.asarray(bad_sparse["brand"][:3])
        with pytest.raises(ServingError) as excinfo:
            client.rank(batch.numeric, bad_sparse)
        assert excinfo.value.status == 400

    def test_bad_top_k_is_400(self, client, batch):
        with pytest.raises(ServingError) as excinfo:
            client.rank(batch.numeric, batch.sparse, top_k=0)
        assert excinfo.value.status == 400

    def test_worker_survives_bad_requests(self, client, model, batch):
        """A stream of malformed requests must never wedge the gateway:
        scoring keeps working afterwards."""
        for _ in range(3):
            with pytest.raises(ServingError):
                client.rank(batch.numeric, {"brand": np.zeros(3, dtype=int)})
        result = client.rank(batch.numeric, batch.sparse, top_k=4)
        np.testing.assert_allclose(result["scores"],
                                   np.sort(model.score(batch))[::-1][:4],
                                   atol=1e-9)


class TestClassifyEndpoint:
    def test_classify_round_trip(self, client, checkpoint_dir, log, taxonomy):
        classifier = serving.load_classifier_checkpoint(
            checkpoint_dir / "querycat")
        queries = log.queries
        length = int(queries.lengths[0])
        tokens = queries.tokens[0][:length]
        result = client.classify(tokens, lengths=length)
        expected_sc = int(classifier.predict_sc(
            tokens[None, :], np.asarray([length]))[0])
        assert result["sc"] == expected_sc
        assert result["tc"] == int(taxonomy.parents_of(
            np.asarray([expected_sc]))[0])

    def test_classify_with_probs(self, client, log):
        queries = log.queries
        length = int(queries.lengths[0])
        result = client.classify(queries.tokens[0][:length], lengths=length,
                                 probs=True)
        assert result["probs"].ndim == 1
        assert result["probs"].sum() == pytest.approx(1.0)

    def test_classify_requires_tokens(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _raw_post(server.url, "/classify", b"{}")
        assert excinfo.value.code == 400


class TestOperationalEndpoints:
    def test_healthz_schema_pinned(self, client):
        payload = client.healthz()
        assert set(payload) == {"status", "uptime_s", "models", "workers",
                                "requests", "errors"}
        assert payload["status"] == "ok"
        assert payload["workers"] == 2
        assert "ranker" in payload["models"]
        assert payload["uptime_s"] > 0

    def test_stats_schema_pinned(self, client, batch):
        client.rank(batch.numeric, batch.sparse)
        payload = client.stats()
        assert set(payload) == {"server", "scorers", "endpoints",
                                "breakers", "quarantined", "cache"}
        assert set(payload["server"]) == {"requests", "errors",
                                          "shed_requests",
                                          "deadline_exceeded",
                                          "degraded_responses", "uptime_s",
                                          "connections"}
        assert payload["server"]["requests"] > 0
        assert payload["server"]["shed_requests"] == 0
        assert payload["server"]["deadline_exceeded"] == 0
        assert payload["quarantined"] == {}
        assert set(payload["cache"]) == {"enabled", "entries", "max_entries",
                                         "ttl_s", "hits", "misses",
                                         "evictions", "expired", "hit_rate"}
        # A directory-booted gateway always serves with a breaker.
        assert payload["breakers"]
        for snapshot in payload["breakers"].values():
            assert snapshot["state"] == "closed"
        scorer_keys = {"requests", "rows", "batches", "busy_seconds",
                       "latency_samples", "mean_latency_ms", "p95_latency_ms",
                       "max_latency_ms", "workers", "mean_batch_rows",
                       "throughput_rows_per_s", "backlog_rows",
                       "max_backlog_rows", "shed_requests", "shed_rows",
                       "drain_rate_rows_per_s", "worker_restarts",
                       "expired_requests", "expired_rows",
                       "lost_resolutions", "averted_respawns", "processes",
                       "process_restarts", "process_busy_seconds",
                       "quantized"}
        assert payload["scorers"], "at least one scorer pool must report"
        for stats in payload["scorers"].values():
            assert set(stats) == scorer_keys
            assert stats["workers"] == 2

    def test_stats_endpoint_histograms(self, client, batch):
        """Per-endpoint latency histograms ride /stats: every known route
        reports, observed routes accumulate, quantiles are ordered."""
        client.rank(batch.numeric, batch.sparse)
        endpoints = client.stats()["endpoints"]
        assert "/rank" in endpoints and "/healthz" in endpoints
        rank = endpoints["/rank"]
        assert set(rank) == {"count", "sum_ms", "p50_ms", "p95_ms",
                             "p99_ms", "buckets"}
        assert rank["count"] >= 1
        assert rank["sum_ms"] > 0
        assert rank["p50_ms"] <= rank["p95_ms"] <= rank["p99_ms"]
        # Buckets are (bound_ms, cumulative count) with increasing bounds.
        bounds = [bound for bound, _ in rank["buckets"]]
        counts = [count for _, count in rank["buckets"]]
        assert bounds == sorted(bounds)
        assert counts == sorted(counts)

    def test_metrics_prometheus_exposition(self, server, client, batch):
        """GET /metrics serves the Prometheus text format: versioned
        content type, HELP/TYPE framing, and counters that agree with
        /stats."""
        client.rank(batch.numeric, batch.sparse)
        stats = client.stats()
        response = urllib.request.urlopen(server.url + "/metrics", timeout=5)
        assert response.headers["Content-Type"] \
            == "text/plain; version=0.0.4; charset=utf-8"
        text = response.read().decode("utf-8")
        assert "# HELP gateway_requests_total" in text
        assert "# TYPE gateway_request_duration_seconds histogram" in text
        samples = {}
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name, _, value = line.rpartition(" ")
            samples[name] = float(value)
        # /metrics itself dispatched after the /stats read, so >=.
        assert samples["gateway_requests_total"] \
            >= stats["server"]["requests"]
        assert samples["gateway_shed_requests_total"] == 0
        rank_count = samples[
            'gateway_request_duration_seconds_count{endpoint="/rank"}']
        assert rank_count >= 1
        # Scorer gauges are labeled per pool.
        assert any(name.startswith('scorer_requests_total{pool="')
                   for name in samples)

    def test_stats_connection_counters_pinned(self, client, batch):
        """Gateway-level connection counters: schema and keep-alive
        accounting are part of the monitoring contract on both backends."""
        before = client.stats()["server"]["connections"]
        assert set(before) == {"open", "accepted", "requests",
                               "keepalive_reuses", "in_flight"}
        client.rank(batch.numeric, batch.sparse)
        after = client.stats()["server"]["connections"]
        # This client holds one persistent connection: both requests rode
        # it, so served count advances and so does keep-alive reuse.
        assert after["open"] >= 1
        assert after["accepted"] >= 1
        assert after["requests"] >= before["requests"] + 2
        assert after["keepalive_reuses"] >= before["keepalive_reuses"] + 2
        assert after["accepted"] >= after["open"]

    def test_models_lists_registry_and_spec(self, client, dataset):
        payload = client.models()
        names = [(entry["name"], entry["version"])
                 for entry in payload["models"]]
        assert ("ranker", 1) in names
        assert payload["spec"]["numeric"] == dataset.spec.numeric_names
        assert payload["spec"]["sparse"] == {
            f.name: f.cardinality for f in dataset.spec.sparse}

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServingError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404
        assert excinfo.value.kind == "not_found"

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServingError) as excinfo:
            client._request("GET", "/rank")
        assert excinfo.value.status == 405
        assert excinfo.value.kind == "method_not_allowed"

    def test_error_responses_counted(self, client):
        before = client.healthz()["errors"]
        with pytest.raises(ServingError):
            client._request("GET", "/nope")
        assert client.healthz()["errors"] == before + 1


class TestHotReload:
    def test_reload_registers_new_version_and_serves_it(
            self, client, checkpoint_dir, dataset, taxonomy,
            tiny_model_config, batch):
        fresh = build_model("adv-hsc-moe", dataset.spec, taxonomy,
                            tiny_model_config.with_updates(seed=99),
                            train_dataset=dataset)
        serving.save_checkpoint(fresh, checkpoint_dir / "ranker",
                                "adv-hsc-moe")
        result = client.reload()
        assert {"name": "ranker", "version": 2} in result["registered"]
        served = client.rank(batch.numeric, batch.sparse, top_k=5)
        assert served["model_version"] == 2
        np.testing.assert_allclose(served["scores"],
                                   np.sort(fresh.score(batch))[::-1][:5],
                                   atol=1e-9)
        # Idempotent: a second reload with unchanged files registers nothing.
        assert client.reload()["registered"] == []

    def test_close_without_start_does_not_hang(self, model, backend):
        registry = serving.ModelRegistry()
        registry.register("ranker", model)
        service = serving.RankingService(registry, default_model="ranker")
        server = serving.ServingServer(service, port=0, backend=backend)
        server.close()                  # bound but never served: must return

    def test_reload_without_checkpoint_dir_is_400(self, model, dataset, backend):
        registry = serving.ModelRegistry()
        registry.register("ranker", model)
        service = serving.RankingService(registry, default_model="ranker",
                                         max_wait_ms=0.0)
        with serving.ServingServer(service, port=0,
                                   backend=backend).start() as bare:
            bare_client = ServingClient(bare.url)
            bare_client.wait_ready(timeout_s=30)
            with pytest.raises(ServingError) as excinfo:
                bare_client.reload()
        assert excinfo.value.status == 400
        assert excinfo.value.kind == "no_checkpoint_dir"
