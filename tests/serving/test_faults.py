"""Fault-tolerance tests: deadlines, supervision, breaker, corruption.

Three layers of coverage:

* Library level — :class:`CircuitBreaker` state machine, deadline drops
  inside :class:`ScorerPool`, worker-crash respawn by the pool
  supervisor, lost-resolution accounting, atomic checkpoint writes with
  checksum verification, and registry quarantine of corrupt checkpoints.
* Wire level — a real gateway with ``--enable-fault-injection``
  semantics, parametrized over **both connection backends**: expired
  deadlines answer structured 504s, a killed worker is respawned under
  traffic, a torn checkpoint write quarantines on reload while the last
  good version keeps serving.
* Harness level — a shortened ``loadgen --chaos`` run must pass its own
  acceptance checks end to end (the same checks CI gates on).
"""

import threading
import time

import numpy as np
import pytest

from repro import serving
from repro.models import build_model
from repro.serving import (BreakerConfig, CheckpointCorrupted, CircuitBreaker,
                           DeadlineExceeded, FaultInjector, ModelRegistry,
                           RankingService, ScorerPool, ServingClient,
                           ServingError, candidate_batch)
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN
from repro.serving.client import DEADLINE_HEADER
from repro.serving.faults import InjectedFault, WorkerKilled
from repro.serving.handlers import GatewayDispatcher
from repro.serving.loadgen import run_chaos
from repro.utils.serialization import (atomic_write_bytes, checksum_file,
                                       load_checkpoint)


# ----------------------------------------------------------------------
# Circuit breaker state machine
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def _breaker(self, clock, **overrides):
        config = dict(window_s=10.0, failure_threshold=0.5, min_requests=4,
                      cooldown_s=1.0, probe_successes=2)
        config.update(overrides)
        return CircuitBreaker(BreakerConfig(**config), clock=clock)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=1.5)
        with pytest.raises(ValueError):
            BreakerConfig(window_s=0)
        with pytest.raises(ValueError):
            BreakerConfig(min_requests=0)

    def test_stays_closed_below_min_requests(self):
        breaker = self._breaker(lambda: 0.0)
        for _ in range(3):              # min_requests is 4
            breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_at_failure_ratio_and_rejects(self):
        breaker = self._breaker(lambda: 0.0)
        breaker.record_success()
        for _ in range(3):
            breaker.record_failure()    # 3/4 failures >= 0.5
        assert breaker.state == OPEN
        assert not breaker.allow()
        snapshot = breaker.snapshot()
        assert snapshot["opens"] == 1
        assert snapshot["rejected"] == 1

    def test_successes_keep_it_closed(self):
        breaker = self._breaker(lambda: 0.0)
        for _ in range(3):
            breaker.record_success()
        breaker.record_failure()        # 1/4 < 0.5
        assert breaker.state == CLOSED

    def test_cooldown_half_open_probes_close(self):
        now = [0.0]
        breaker = self._breaker(lambda: now[0])
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN
        now[0] = 0.5                    # still cooling down
        assert breaker.state == OPEN
        now[0] = 1.5                    # past cooldown
        assert breaker.state == HALF_OPEN
        # Concurrent probes are bounded by probe_successes.
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED
        # The cleared window: the old failures cannot re-trip it.
        assert breaker.snapshot()["window_requests"] == 0

    def test_half_open_failure_reopens(self):
        now = [0.0]
        breaker = self._breaker(lambda: now[0])
        for _ in range(4):
            breaker.record_failure()
        now[0] = 1.5
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 2

    def test_abandon_frees_probe_slot(self):
        now = [0.0]
        breaker = self._breaker(lambda: now[0], probe_successes=1)
        for _ in range(4):
            breaker.record_failure()
        now[0] = 1.5
        assert breaker.allow()
        assert not breaker.allow()      # the only probe slot is taken
        breaker.abandon()               # probe ended without a verdict
        assert breaker.allow()


# ----------------------------------------------------------------------
# Pool-level deadlines, supervision, lost resolutions
# ----------------------------------------------------------------------
def _rows(n):
    return candidate_batch(np.linspace(0.0, 1.0, n)[:, None], {})


class TestPoolDeadlines:
    def test_pre_submit_expiry_raises_and_counts(self):
        with ScorerPool(lambda: (lambda b: b.numeric[:, 0]),
                        num_workers=1, max_wait_ms=0.0) as pool:
            with pytest.raises(DeadlineExceeded):
                pool.submit(_rows(3), deadline=time.monotonic() - 0.5)
            stats = pool.stats()
        assert stats.expired_requests == 1
        assert stats.expired_rows == 3

    def test_expired_in_queue_dropped_at_collect(self):
        release = threading.Event()

        def factory():
            def score(batch):
                release.wait(10)
                return batch.numeric[:, 0]
            return score

        with ScorerPool(factory, num_workers=1, max_wait_ms=0.0) as pool:
            blocker = pool.submit(_rows(2))     # occupies the sole worker
            time.sleep(0.05)
            doomed = pool.submit(_rows(4),
                                 deadline=time.monotonic() + 0.01)
            time.sleep(0.05)                    # let the deadline lapse
            release.set()
            assert blocker.result(timeout=10).shape == (2,)
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=10)
            for _ in range(100):                # stats update post-resolve
                if pool.stats().expired_requests:
                    break
                time.sleep(0.01)
            stats = pool.stats()
        assert stats.expired_requests == 1
        assert stats.expired_rows == 4

    def test_lost_resolution_counted_not_swallowed(self):
        release = threading.Event()

        def factory():
            def score(batch):
                release.wait(10)
                return batch.numeric[:, 0]
            return score

        with ScorerPool(factory, num_workers=1, max_wait_ms=0.0) as pool:
            blocker = pool.submit(_rows(2))
            time.sleep(0.05)
            abandoned = pool.submit(_rows(3))
            assert abandoned.cancel()           # caller gave up while queued
            release.set()
            blocker.result(timeout=10)
            for _ in range(100):
                if pool.stats().lost_resolutions:
                    break
                time.sleep(0.01)
            stats = pool.stats()
        assert stats.lost_resolutions == 1


# An injected kill *is* an unhandled exception escaping the worker
# thread — that is the mechanism under test, not a leak.
@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning")
class TestWorkerSupervision:
    def test_dead_worker_respawned_with_fresh_plan(self):
        injector = FaultInjector()
        plans = []

        def factory():
            def score(batch):
                return batch.numeric[:, 0]
            plans.append(score)
            return score

        with ScorerPool(factory, num_workers=2, max_wait_ms=0.0,
                        fault_injector=injector) as pool:
            np.testing.assert_allclose(pool.score(_rows(3)),
                                       np.linspace(0, 1, 3))
            plans_before = len(plans)
            injector.arm_worker_kills(1)
            with pytest.raises(WorkerKilled):
                pool.score(_rows(3))            # resolved, then thread dies
            deadline = time.monotonic() + 5.0
            while pool.worker_restarts < 1:
                assert time.monotonic() < deadline, "supervisor never respawned"
                time.sleep(0.02)
            # The replacement got its own compiled plan and the pool
            # keeps serving at full strength.
            assert len(plans) == plans_before + 1
            np.testing.assert_allclose(pool.score(_rows(5)),
                                       np.linspace(0, 1, 5))
            stats = pool.stats()
        assert stats.worker_restarts == 1
        assert stats.workers == 2
        assert injector.snapshot()["kills_delivered"] == 1

    def test_restart_counters_fold_retired_work(self):
        """Requests served before a crash stay in the pool totals after
        the worker is replaced."""
        injector = FaultInjector()
        with ScorerPool(lambda: (lambda b: b.numeric[:, 0]),
                        num_workers=1, max_wait_ms=0.0,
                        fault_injector=injector) as pool:
            for _ in range(3):
                pool.score(_rows(2))
            injector.arm_worker_kills(1)
            with pytest.raises(WorkerKilled):
                pool.score(_rows(2))
            deadline = time.monotonic() + 5.0
            while pool.worker_restarts < 1:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            pool.score(_rows(2))
            stats = pool.stats()
        assert stats.requests == 4              # 3 pre-crash + 1 post-respawn
        assert stats.rows == 8

    def test_close_during_respawn_is_averted(self):
        """The respawn/close TOCTOU race, interleaved deterministically.

        A respawner that passed its top-of-loop closed check and is deep
        inside the (slow, lock-free) factory call must NOT publish and
        start its replacement once ``close()`` wins — pre-fix it did,
        leaking a worker thread that no sentinel would ever stop.
        """
        injector = FaultInjector()
        in_factory = threading.Event()
        release = threading.Event()
        builds = []

        def factory():
            if builds:                          # respawn path only
                in_factory.set()
                assert release.wait(timeout=10)

            def score(batch):
                return batch.numeric[:, 0]
            builds.append(score)
            return score

        pool = ScorerPool(factory, num_workers=1, max_wait_ms=0.0,
                          fault_injector=injector)
        injector.arm_worker_kills(1)
        with pytest.raises(WorkerKilled):
            pool.score(_rows(2))
        deadline = time.monotonic() + 5.0
        while pool.worker_stats() and pool._workers[0].thread.is_alive():
            assert time.monotonic() < deadline, "killed worker never died"
            time.sleep(0.01)
        # Take over the supervisor's role so the interleaving is ours.
        pool._supervisor_stop.set()
        pool._supervisor.join()
        respawner = threading.Thread(target=pool._respawn_dead_workers)
        respawner.start()
        assert in_factory.wait(timeout=5), "respawn never reached factory"
        pool.close()                            # wins the race mid-respawn
        release.set()
        respawner.join(timeout=5)
        assert not respawner.is_alive()
        # The replacement was abandoned: not published, never started.
        assert pool.averted_respawns == 1
        assert pool.worker_restarts == 0
        assert not pool._workers[0].thread.is_alive()
        assert pool.stats().averted_respawns == 1


# ----------------------------------------------------------------------
# Service-level breaker + degraded fallback
# ----------------------------------------------------------------------
class _FlakyModel:
    def __init__(self):
        self.mode = "ok"

    def score(self, batch):
        if self.mode == "boom":
            raise RuntimeError("model exploded")
        if self.mode == "client":
            raise ValueError("bad candidate data")
        return np.asarray(batch.numeric[:, 0], dtype=np.float64)


class TestDegradedFallback:
    def _service(self, model, **breaker_overrides):
        config = dict(window_s=10.0, failure_threshold=0.5, min_requests=2,
                      cooldown_s=0.2, probe_successes=1)
        config.update(breaker_overrides)
        registry = ModelRegistry()
        registry.register("m", model)
        return RankingService(registry, default_model="m", max_wait_ms=0.0,
                              breaker_config=BreakerConfig(**config))

    def test_open_breaker_serves_degraded_prior(self):
        model = _FlakyModel()
        with self._service(model) as service:
            candidates = _rows(6)
            model.mode = "boom"
            for _ in range(2):
                with pytest.raises(RuntimeError):
                    service.rank(candidates)
            assert service.breaker_stats()["m"]["state"] == OPEN
            response = service.rank(candidates)
            assert response.degraded is True
            assert service.degraded_responses == 1
            # The model-free prior: sigmoid of the numeric mean — and
            # crucially, no model call (still in boom mode).
            prior = 1.0 / (1.0 + np.exp(-candidates.numeric.mean(axis=1)))
            order = np.argsort(-prior, kind="stable")[:10]
            np.testing.assert_array_equal(response.indices, order)
            np.testing.assert_allclose(response.scores, prior[order])

    def test_breaker_recloses_after_successful_probe(self):
        model = _FlakyModel()
        with self._service(model) as service:
            candidates = _rows(4)
            model.mode = "boom"
            for _ in range(2):
                with pytest.raises(RuntimeError):
                    service.rank(candidates)
            model.mode = "ok"
            time.sleep(0.25)            # past the cooldown
            response = service.rank(candidates)   # the half-open probe
            assert response.degraded is False
            assert service.breaker_stats()["m"]["state"] == CLOSED

    def test_client_errors_exempt_from_breaker(self):
        model = _FlakyModel()
        with self._service(model) as service:
            model.mode = "client"
            for _ in range(4):
                with pytest.raises(ValueError):
                    service.rank(_rows(3))
            snapshot = service.breaker_stats()["m"]
            assert snapshot["state"] == CLOSED
            assert snapshot["window_requests"] == 0

    def test_degraded_prior_override(self):
        model = _FlakyModel()
        registry = ModelRegistry()
        registry.register("m", model)
        with RankingService(
                registry, default_model="m", max_wait_ms=0.0,
                breaker_config=BreakerConfig(min_requests=1, cooldown_s=60.0),
                degraded_prior=lambda batch: -np.arange(float(len(batch)))
        ) as service:
            model.mode = "boom"
            with pytest.raises(RuntimeError):
                service.rank(_rows(5))
            response = service.rank(_rows(5))
            assert response.degraded
            np.testing.assert_array_equal(response.indices, np.arange(5))


# ----------------------------------------------------------------------
# Corruption-safe checkpoints
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def model(dataset, taxonomy, tiny_model_config):
    return build_model("adv-hsc-moe", dataset.spec, taxonomy,
                       tiny_model_config, train_dataset=dataset)


class TestCorruptionSafety:
    def test_checkpoint_checksum_round_trip(self, model, dataset, taxonomy,
                                            tmp_path):
        serving.save_checkpoint(model, tmp_path / "ranker", "adv-hsc-moe")
        state, meta = load_checkpoint(tmp_path / "ranker")
        assert meta["checksum"]["weights"].startswith("sha256:")
        assert meta["checksum"]["weights"] \
            == checksum_file(tmp_path / "ranker.npz")
        assert state

    def test_flipped_byte_detected(self, model, tmp_path):
        serving.save_checkpoint(model, tmp_path / "ranker", "adv-hsc-moe")
        weights = tmp_path / "ranker.npz"
        raw = bytearray(weights.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        weights.write_bytes(bytes(raw))
        with pytest.raises(CheckpointCorrupted):
            load_checkpoint(tmp_path / "ranker")

    def test_truncated_archive_detected(self, model, tmp_path):
        serving.save_checkpoint(model, tmp_path / "ranker", "adv-hsc-moe")
        FaultInjector().tear_file(tmp_path / "ranker.npz")
        with pytest.raises(CheckpointCorrupted):
            load_checkpoint(tmp_path / "ranker")

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"x" * 1024)
        assert target.read_bytes() == b"x" * 1024
        assert [p.name for p in tmp_path.iterdir()] == ["blob.bin"]

    def test_reload_quarantines_and_keeps_last_good(self, model, dataset,
                                                    taxonomy, tmp_path):
        serving.save_environment(tmp_path, dataset.spec, taxonomy)
        serving.save_checkpoint(model, tmp_path / "ranker", "adv-hsc-moe")
        registry = ModelRegistry()
        first = registry.reload_from_directory(tmp_path, dataset.spec,
                                               taxonomy)
        assert [(e.name, e.version) for e in first] == [("ranker", 1)]
        # Torn write lands with *different* bytes: the reload must refuse
        # it, remember why, and keep serving v1.
        FaultInjector().tear_file(tmp_path / "ranker.npz")
        assert registry.reload_from_directory(tmp_path, dataset.spec,
                                              taxonomy) == []
        quarantined = registry.quarantined()
        assert "ranker" in quarantined
        assert "CheckpointCorrupted" in quarantined["ranker"]["reason"]
        assert registry.latest_version("ranker") == 1
        registry.get("ranker").score(dataset.batch(np.arange(4)))
        # Re-polling unchanged corrupt bytes stays quiet and idempotent.
        assert registry.reload_from_directory(tmp_path, dataset.spec,
                                              taxonomy) == []
        assert registry.quarantined() == quarantined
        # Repair path 1 — rollback: restoring the registered version's
        # exact bytes clears the quarantine without a new version.
        serving.save_checkpoint(model, tmp_path / "ranker", "adv-hsc-moe")
        assert registry.reload_from_directory(tmp_path, dataset.spec,
                                              taxonomy) == []
        assert registry.quarantined() == {}
        assert registry.latest_version("ranker") == 1
        # Repair path 2 — roll forward: new good bytes register as v2.
        FaultInjector().tear_file(tmp_path / "ranker.npz")
        registry.reload_from_directory(tmp_path, dataset.spec, taxonomy)
        assert "ranker" in registry.quarantined()
        state = model.state_dict()
        key = next(iter(state))
        state[key] = state[key] + 0.125
        model.load_state_dict(state)
        try:
            serving.save_checkpoint(model, tmp_path / "ranker",
                                    "adv-hsc-moe")
            repaired = registry.reload_from_directory(tmp_path, dataset.spec,
                                                      taxonomy)
        finally:                        # module-scoped model: restore it
            state[key] = state[key] - 0.125
            model.load_state_dict(state)
        assert [(e.name, e.version) for e in repaired] == [("ranker", 2)]
        assert registry.quarantined() == {}

    def test_same_size_same_mtime_rewrite_detected(self, model, dataset,
                                                   taxonomy, tmp_path):
        """The content fingerprint catches what mtime+size cannot: an
        in-place rewrite of equal length inside mtime granularity."""
        import os

        serving.save_environment(tmp_path, dataset.spec, taxonomy)
        serving.save_checkpoint(model, tmp_path / "ranker", "adv-hsc-moe")
        registry = ModelRegistry()
        registry.reload_from_directory(tmp_path, dataset.spec, taxonomy)
        weights = tmp_path / "ranker.npz"
        stat = weights.stat()
        raw = bytearray(weights.read_bytes())
        # npz members are stored uncompressed: flipping low bits inside
        # one weight array keeps the byte length identical.
        raw[len(raw) // 2] ^= 0x01
        weights.write_bytes(bytes(raw))
        os.utime(weights, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        after = weights.stat()
        assert (after.st_size, after.st_mtime_ns) \
            == (stat.st_size, stat.st_mtime_ns)
        # mtime+size says "unchanged"; the checksum knows better.  Here
        # the changed bytes break the checksum manifest, so the correct
        # outcome is quarantine — not a silent skip.
        assert registry.reload_from_directory(tmp_path, dataset.spec,
                                              taxonomy) == []
        assert "ranker" in registry.quarantined()


# ----------------------------------------------------------------------
# Client-side deadline header + backoff
# ----------------------------------------------------------------------
class TestClientRetries:
    def _client(self, **kwargs):
        return ServingClient("http://127.0.0.1:9", **kwargs)

    def test_deadline_header_sent(self, monkeypatch):
        client = self._client()
        seen = {}

        def fake_once(method, path, data, headers):
            seen.update(headers)
            return {"indices": [], "scores": []}

        monkeypatch.setattr(client, "_request_once", fake_once)
        client.rank(np.zeros((1, 2)), {}, deadline_ms=75.5)
        assert seen[DEADLINE_HEADER] == "75.5"

    def test_backoff_retries_429_honoring_retry_after(self, monkeypatch):
        client = self._client(max_retries=2, backoff_base_s=0.01)
        responses = [ServingError(429, "overloaded", "x", retry_after_s=0.5),
                     ServingError(429, "overloaded", "x"),
                     {"ok": True}]
        sleeps = []
        monkeypatch.setattr(
            client, "_request_once",
            lambda *a: (_ for _ in ()).throw(responses.pop(0))
            if isinstance(responses[0], Exception) else responses.pop(0))
        monkeypatch.setattr("repro.serving.client.time.sleep", sleeps.append)
        assert client._request("GET", "/x") == {"ok": True}
        assert client.backoff_retries == 2
        assert len(sleeps) == 2
        assert sleeps[0] >= 0.5         # Retry-After floor, jitter on top

    def test_no_retries_by_default_and_never_on_other_statuses(
            self, monkeypatch):
        client = self._client()
        calls = []

        def fake_once(*args):
            calls.append(1)
            raise ServingError(429, "overloaded", "x")

        monkeypatch.setattr(client, "_request_once", fake_once)
        with pytest.raises(ServingError):
            client._request("GET", "/x")
        assert len(calls) == 1          # max_retries defaults to 0

        retrying = self._client(max_retries=3)
        calls.clear()

        def fake_500(*args):
            calls.append(1)
            raise ServingError(500, "internal", "x")

        monkeypatch.setattr(retrying, "_request_once", fake_500)
        with pytest.raises(ServingError):
            retrying._request("GET", "/x")
        assert len(calls) == 1          # 500 may have executed: no retry


# ----------------------------------------------------------------------
# Over the wire, both backends
# ----------------------------------------------------------------------
@pytest.fixture(params=["selector", "threaded"])
def backend(request):
    return request.param


@pytest.fixture()
def fault_server(model, dataset, taxonomy, tmp_path, backend):
    serving.save_environment(tmp_path, dataset.spec, taxonomy)
    serving.save_checkpoint(model, tmp_path / "ranker", "adv-hsc-moe")
    server = serving.serve_from_directory(
        tmp_path, port=0, num_workers=2, max_wait_ms=0.5, backend=backend,
        enable_fault_injection=True,
        # Fault tests repeat identical payloads and need every request to
        # reach the scorer, so the result cache must be off.
        cache_entries=0,
        breaker_config=BreakerConfig(window_s=5.0, failure_threshold=0.9,
                                     min_requests=50, cooldown_s=0.5,
                                     probe_successes=1))
    server.start()
    client = ServingClient(server.url)
    client.wait_ready(timeout_s=30)
    yield server, client
    server.close()


@pytest.fixture()
def wire_batch(dataset):
    return dataset.batch(np.arange(12))


@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning")
class TestFaultsOverTheWire:
    def test_faults_endpoint_gated_without_flag(self, model):
        registry = ModelRegistry()
        registry.register("m", model)
        with RankingService(registry, default_model="m") as service:
            dispatcher = GatewayDispatcher(service)
            status, payload, _ = dispatcher.dispatch("POST", "/faults", b"{}")
            assert status == 403
            assert payload["error"]["type"] == "fault_injection_disabled"

    def test_expired_deadline_is_structured_504(self, fault_server,
                                                wire_batch):
        _, client = fault_server
        with pytest.raises(ServingError) as excinfo:
            client.rank(wire_batch.numeric, wire_batch.sparse,
                        deadline_ms=0.001)
        assert excinfo.value.status == 504
        assert excinfo.value.kind == "deadline_exceeded"
        stats = client.stats()["server"]
        assert stats["deadline_exceeded"] >= 1
        # And without a deadline the same request scores fine.
        result = client.rank(wire_batch.numeric, wire_batch.sparse)
        assert result["degraded"] is False

    def test_malformed_deadline_header_ignored(self, fault_server,
                                               wire_batch):
        _, client = fault_server
        seen = client.rank(wire_batch.numeric, wire_batch.sparse,
                           deadline_ms=-5)        # non-positive: no budget
        assert seen["scores"].size > 0

    def test_worker_kill_recovers_under_traffic(self, fault_server,
                                                wire_batch):
        _, client = fault_server
        client.rank(wire_batch.numeric, wire_batch.sparse)
        client.faults(kill_workers=1)
        # The kill surfaces as one structured 500 (the victim request's
        # future is resolved before the worker thread dies).
        with pytest.raises(ServingError) as excinfo:
            client.rank(wire_batch.numeric, wire_batch.sparse)
        assert excinfo.value.status == 500
        deadline = time.monotonic() + 5.0
        while True:
            scorers = client.stats()["scorers"]
            if sum(s["worker_restarts"] for s in scorers.values()) >= 1:
                break
            assert time.monotonic() < deadline, "no respawn on /stats"
            time.sleep(0.05)
        result = client.rank(wire_batch.numeric, wire_batch.sparse)
        assert result["degraded"] is False
        for stats in client.stats()["scorers"].values():
            assert stats["workers"] == 2
        assert client.stats()["faults"]["kills_delivered"] == 1

    def test_torn_checkpoint_quarantined_last_good_serves(self, fault_server,
                                                          wire_batch):
        _, client = fault_server
        before = client.rank(wire_batch.numeric, wire_batch.sparse)
        assert before["model_version"] == 1
        torn = client.faults(tear_checkpoint=True)
        assert torn["torn"]["path"].endswith("ranker.npz")
        reloaded = client.reload()
        assert reloaded["registered"] == []
        assert "ranker" in reloaded["quarantined"]
        # The last good version keeps serving, and /stats reports the
        # quarantine for operators.
        after = client.rank(wire_batch.numeric, wire_batch.sparse)
        assert after["model_version"] == 1
        np.testing.assert_allclose(after["scores"].sum(),
                                   before["scores"].sum(), atol=1e-9)
        assert "ranker" in client.stats()["quarantined"]

    def test_metrics_expose_fault_counters(self, fault_server, wire_batch):
        server, client = fault_server
        client.rank(wire_batch.numeric, wire_batch.sparse)
        import urllib.request
        body = urllib.request.urlopen(server.url + "/metrics",
                                      timeout=10).read().decode()
        for needle in ("gateway_deadline_exceeded_total",
                       "gateway_degraded_responses_total",
                       "scorer_worker_restarts_total",
                       "scorer_expired_requests_total",
                       "scorer_lost_resolutions_total",
                       'breaker_state{model="ranker",state="closed"} 1'):
            assert needle in body, f"missing {needle}"


# ----------------------------------------------------------------------
# The chaos harness end to end (one backend; CI runs both)
# ----------------------------------------------------------------------
@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning")
class TestChaosHarness:
    def test_short_chaos_run_passes_its_own_gate(self, model, dataset,
                                                 taxonomy, tmp_path):
        serving.save_environment(tmp_path, dataset.spec, taxonomy)
        serving.save_checkpoint(model, tmp_path / "ranker", "adv-hsc-moe")
        server = serving.serve_from_directory(
            tmp_path, port=0, num_workers=2, max_wait_ms=0.5,
            backend="selector", enable_fault_injection=True,
            cache_entries=0,
            breaker_config=BreakerConfig(window_s=3.0, failure_threshold=0.05,
                                         min_requests=5, cooldown_s=0.5,
                                         probe_successes=2))
        server.start()
        try:
            summary, detail, failures = run_chaos(
                server.url, duration_s=4.0, clients=8, rows_per_request=6,
                error_rate=0.3, deadline_ms=10.0, deadline_fraction=0.2,
                recovery_timeout_s=15.0)
            assert failures == [], f"chaos gate failed: {failures}"
            assert summary.transport_errors == 0
            assert summary.degraded >= 1
            assert detail["recovered"]
            assert detail["stats_after"]["quarantined"]
            assert [e["event"] for e in detail["events"]] == [
                "inject_errors", "kill_worker", "tear_checkpoint", "heal"]
        finally:
            server.close()
