"""Tests for :class:`repro.serving.ScorerPool`: concurrency, hot reload, and
micro-batch assembly properties.

Covers the PR 4 pool semantics:

* per-worker compiled plans (one factory call per worker, exclusive use),
* aggregate + per-worker stats with conserved row/request counts,
* the hot-reload soak: traffic through a :class:`RankingService` while a
  checkpoint directory reload swaps model versions mid-flight — every
  response must match the single-thread reference scores of whichever
  version served it,
* a hypothesis property test: for random request sizes and arrival
  patterns, pooled results equal per-request ``score()`` and no rows are
  lost or duplicated across workers.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn, serving
from repro.models import build_model
from repro.serving import (BatchScorer, ModelRegistry, PoolOverloaded,
                           RankingService, ScorerPool, ScorerStats,
                           latency_percentile)


@pytest.fixture(scope="module")
def model(dataset, taxonomy, tiny_model_config):
    return build_model("adv-hsc-moe", dataset.spec, taxonomy,
                       tiny_model_config, train_dataset=dataset)


class TestScorerPool:
    def test_pooled_scores_match_reference(self, model, dataset):
        batches = [dataset.batch(np.arange(i, i + 5)) for i in range(30)]
        expected = [model.score(b) for b in batches]
        with ScorerPool(model.make_scorer, num_workers=3,
                        max_batch_rows=32, max_wait_ms=1.0) as pool:
            futures = [pool.submit(b) for b in batches]
            for future, want in zip(futures, expected):
                np.testing.assert_allclose(future.result(timeout=10), want,
                                           atol=1e-12)

    def test_factory_called_once_per_worker(self, model):
        calls = []

        def factory():
            calls.append(threading.get_ident())
            return model.make_scorer()

        with ScorerPool(factory, num_workers=3, max_wait_ms=0.0) as pool:
            assert pool.num_workers == 3
        # Called on the constructing thread (compile failures surface to
        # the caller, not inside a daemon thread), once per worker.
        assert calls == [threading.get_ident()] * 3

    def test_factory_failure_raises_at_construction(self):
        def broken_factory():
            raise RuntimeError("compile exploded")

        with pytest.raises(RuntimeError, match="compile exploded"):
            ScorerPool(broken_factory, num_workers=2)

    def test_workers_run_concurrently(self, dataset):
        """With blocking score closures, a pool must overlap requests —
        wall clock proves more than one worker actually scored."""
        delay = 0.05

        def factory():
            def slow_score(batch):
                time.sleep(delay)
                return np.zeros(len(batch))
            return slow_score

        requests = [dataset.batch(np.arange(i, i + 2)) for i in range(4)]
        # max_batch_rows == one request's rows: every micro-batch is one
        # request, so the four requests need four worker slots to overlap.
        with ScorerPool(factory, num_workers=4, max_batch_rows=2,
                        max_wait_ms=0.0) as pool:
            started = time.monotonic()
            futures = [pool.submit(b) for b in requests]
            for future in futures:
                future.result(timeout=10)
            elapsed = time.monotonic() - started
            per_worker = pool.worker_stats()
        assert elapsed < 4 * delay          # serial execution would be ≥ 4*delay
        assert sum(1 for s in per_worker if s.batches) >= 2

    def test_stats_aggregate_and_per_worker_conserved(self, model, dataset):
        sizes = [3, 5, 2, 7, 4, 6, 1, 8]
        with ScorerPool(model.make_scorer, num_workers=3,
                        max_batch_rows=16, max_wait_ms=1.0) as pool:
            futures = [pool.submit(dataset.batch(np.arange(s))) for s in sizes]
            for future in futures:
                future.result(timeout=10)
            stats = pool.stats()
            per_worker = pool.worker_stats()
        assert stats.workers == 3 and len(per_worker) == 3
        assert stats.requests == len(sizes)
        assert stats.rows == sum(sizes)
        # Conservation across workers: nothing lost, nothing double-counted.
        assert sum(s.requests for s in per_worker) == stats.requests
        assert sum(s.rows for s in per_worker) == stats.rows
        assert sum(s.batches for s in per_worker) == stats.batches
        assert stats.latency_samples == sum(s.latency_samples for s in per_worker)

    def test_submit_after_close_raises(self, model, dataset):
        pool = ScorerPool(model.make_scorer, num_workers=2)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.submit(dataset.batch(np.arange(3)))

    def test_close_completes_pending(self, model, dataset):
        batch = dataset.batch(np.arange(6))
        pool = ScorerPool(model.make_scorer, num_workers=2, max_wait_ms=50.0)
        future = pool.submit(batch)
        pool.close()
        np.testing.assert_array_equal(future.result(timeout=10),
                                      model.score(batch))

    def test_invalid_num_workers_rejected(self, model):
        with pytest.raises(ValueError):
            ScorerPool(model.make_scorer, num_workers=0)


class TestAdmissionBound:
    """The pool's overload self-protection: a bounded backlog that sheds
    over-budget submissions with :class:`PoolOverloaded` instead of
    queueing without limit."""

    @staticmethod
    def _gated_factory(release):
        """Score closures that block until ``release`` is set — lets a
        test pin the backlog at a known size."""
        def factory():
            def gated_score(batch):
                release.wait(10)
                return np.zeros(len(batch))
            return gated_score
        return factory

    def test_over_bound_submit_sheds(self, dataset):
        release = threading.Event()
        with ScorerPool(self._gated_factory(release), num_workers=1,
                        max_batch_rows=4, max_wait_ms=0.0,
                        max_backlog_rows=8, name="bounded") as pool:
            # First submit is collected by the worker (blocks in score);
            # the next fills the backlog to the bound.
            first = pool.submit(dataset.batch(np.arange(4)))
            time.sleep(0.05)            # let the worker collect it
            second = pool.submit(dataset.batch(np.arange(8)))
            with pytest.raises(PoolOverloaded) as excinfo:
                pool.submit(dataset.batch(np.arange(4)))
            error = excinfo.value
            assert error.name == "bounded"
            assert error.backlog_rows == 8
            assert error.max_backlog_rows == 8
            assert error.retry_after_s > 0
            stats = pool.stats()
            assert stats.backlog_rows == 8
            assert stats.max_backlog_rows == 8
            assert stats.shed_requests == 1
            assert stats.shed_rows == 4
            release.set()
            # Shedding must not disturb admitted work.
            assert first.result(timeout=10).shape == (4,)
            assert second.result(timeout=10).shape == (8,)
        final = pool.stats()
        assert final.requests == 2 and final.rows == 12

    def test_idle_pool_admits_oversized_request(self, dataset):
        """An empty pool accepts a request larger than the whole bound:
        refusing it would make the request unservable forever, and an
        idle pool is by definition not overloaded."""
        def factory():
            return lambda batch: np.zeros(len(batch))

        with ScorerPool(factory, num_workers=1, max_batch_rows=64,
                        max_wait_ms=0.0, max_backlog_rows=8) as pool:
            future = pool.submit(dataset.batch(np.arange(32)))
            assert future.result(timeout=10).shape == (32,)
            assert pool.stats().shed_requests == 0

    def test_drain_rate_and_retry_after(self, dataset):
        def factory():
            return lambda batch: np.zeros(len(batch))

        with ScorerPool(factory, num_workers=1, max_batch_rows=64,
                        max_wait_ms=0.0, max_backlog_rows=100) as pool:
            for _ in range(5):
                pool.submit(dataset.batch(np.arange(10))).result(timeout=10)
            rate = pool.drain_rate_rows_per_s()
            assert rate > 0
            retry = pool.retry_after_s()
            assert 0.5 <= retry <= 30.0
        # A pool that never drained anything still gives a usable hint.
        fresh = ScorerPool(factory, num_workers=1, max_backlog_rows=10)
        try:
            assert fresh.retry_after_s() == pytest.approx(1.0)
        finally:
            fresh.close()

    def test_invalid_bound_rejected(self, model):
        with pytest.raises(ValueError):
            ScorerPool(model.make_scorer, num_workers=1, max_backlog_rows=0)

    def test_unbounded_pool_reports_none(self, model, dataset):
        with ScorerPool(model.make_scorer, num_workers=1) as pool:
            pool.submit(dataset.batch(np.arange(3))).result(timeout=10)
            stats = pool.stats()
        assert stats.max_backlog_rows is None
        assert stats.shed_requests == 0


class TestAdaptiveCap:
    """The adaptive micro-batch policy: cap = clamp(ceil(backlog /
    workers), min_batch_rows, max_batch_rows), recomputed at collect
    time (every worker rejoins within one batch, so the fair share is
    over the whole pool).  ScorerPool defaults to adaptive; BatchScorer
    pins the PR 3 static contract."""

    def test_defaults(self, model):
        with ScorerPool(model.make_scorer, num_workers=2) as pool:
            assert pool.adaptive_batch
        with BatchScorer(model.score) as scorer:
            assert not scorer.adaptive_batch    # PR 3 contract unchanged

    def test_static_override_pins_max_batch_rows(self, model):
        with ScorerPool(model.make_scorer, num_workers=2,
                        max_batch_rows=64, adaptive_batch=False) as pool:
            assert not pool.adaptive_batch
            assert pool.current_batch_cap() == 64
            assert pool._collect_cap(1000) == 64

    def test_cap_formula(self, model):
        """White-box: the clamp arithmetic over the live backlog."""
        with ScorerPool(model.make_scorer, num_workers=4, max_batch_rows=64,
                        min_batch_rows=4) as pool:
            def cap_at(backlog, held=0):
                with pool._state_lock:
                    pool._backlog_rows = backlog
                try:
                    return pool._collect_cap(held)
                finally:
                    with pool._state_lock:
                        pool._backlog_rows = 0

            assert cap_at(0) == 4               # idle pool: min clamp
            assert cap_at(64) == 16             # 64 rows over 4 workers
            assert cap_at(100) == 25            # per-pool share, ceil'd up
            assert cap_at(101) == 26
            assert cap_at(10_000) == 64         # max clamp holds
            assert cap_at(18, held=6) == 6      # held rows count as backlog
            assert cap_at(0, held=40) == 10     # share of what's in hand

    def test_min_cap_clamped_to_max(self, model):
        with ScorerPool(model.make_scorer, num_workers=2, max_batch_rows=2,
                        min_batch_rows=8) as pool:
            assert pool.current_batch_cap() == 2

    def test_invalid_min_batch_rows_rejected(self, model):
        with pytest.raises(ValueError):
            ScorerPool(model.make_scorer, min_batch_rows=0)

    def test_idle_pool_scores_without_straggler_wait(self, model, dataset):
        """The latency half of the policy: with no backlog the cap
        collapses to min_batch_rows, so a request that already meets it
        is scored immediately instead of sitting out max_wait_ms."""
        batch = dataset.batch(np.arange(8))     # 8 rows ≥ min_batch_rows
        wait_ms = 400.0
        with ScorerPool(model.make_scorer, num_workers=2,
                        max_batch_rows=256, max_wait_ms=wait_ms,
                        min_batch_rows=8) as pool:
            started = time.monotonic()
            pool.score(batch)
            adaptive_elapsed = time.monotonic() - started
        with ScorerPool(model.make_scorer, num_workers=2,
                        max_batch_rows=256, max_wait_ms=wait_ms,
                        adaptive_batch=False) as pool:
            started = time.monotonic()
            pool.score(batch)
            static_elapsed = time.monotonic() - started
        # The static pool must wait out the full coalescing window; the
        # adaptive pool answers as soon as the request meets its cap.
        assert adaptive_elapsed < wait_ms / 1000.0 / 2
        assert static_elapsed >= wait_ms / 1000.0 * 0.9

    def test_backlog_splits_across_workers(self, model, dataset):
        """The throughput half: a queued burst is coalesced into
        multi-request micro-batches bounded by the adaptive cap."""
        requests = [dataset.batch(np.arange(i % 8, i % 8 + 4))
                    for i in range(48)]
        expected = [model.score(b) for b in requests]
        release = threading.Event()

        def factory():
            plan = model.make_scorer()      # per-worker: plans aren't shared

            def gated(batch):
                release.wait(10)
                return plan(batch)
            return gated

        with ScorerPool(factory, num_workers=2, max_batch_rows=64,
                        max_wait_ms=1.0, min_batch_rows=4) as pool:
            futures = [pool.submit(b) for b in requests]
            release.set()
            results = [f.result(timeout=30) for f in futures]
            stats = pool.stats()
        for got, want in zip(results, expected):
            np.testing.assert_allclose(got, want, atol=1e-12)
        assert stats.rows == 48 * 4
        assert stats.mean_batch_rows > 4.0      # the backlog coalesced
        assert stats.batches < len(requests)


class TestScorerStatsWindow:
    """Empty/low-sample latency semantics are pinned, not numpy accidents."""

    def test_empty_window_is_all_zeros(self, model):
        with BatchScorer(model.score) as scorer:
            stats = scorer.stats()
        assert stats.latency_samples == 0
        assert stats.mean_latency_ms == 0.0
        assert stats.p95_latency_ms == 0.0
        assert stats.max_latency_ms == 0.0
        assert stats.mean_batch_rows == 0.0
        assert stats.throughput_rows_per_s == 0.0

    def test_single_sample_percentile_is_that_sample(self, model, dataset):
        with BatchScorer(model.score, max_wait_ms=0.0) as scorer:
            scorer.score(dataset.batch(np.arange(4)))
            stats = scorer.stats()
        assert stats.latency_samples == 1
        assert stats.p95_latency_ms == stats.max_latency_ms > 0.0
        assert stats.mean_latency_ms == stats.max_latency_ms

    def test_percentile_never_interpolates_below_observations(self):
        samples = np.asarray([0.010, 0.020, 0.100])
        assert latency_percentile(samples, 95) == 0.100
        assert latency_percentile(samples, 50) == 0.020
        assert latency_percentile(np.asarray([]), 95) == 0.0

    def test_from_window_counts_samples(self):
        stats = ScorerStats.from_window(requests=3, rows=9, batches=2,
                                        busy_seconds=0.5,
                                        latencies=np.asarray([0.001, 0.003]))
        assert stats.latency_samples == 2
        assert stats.max_latency_ms == pytest.approx(3.0)


class TestHotReloadSoak:
    """M client threads × K models under a pool while checkpoints hot-swap.

    Every response must match the single-thread reference scores for
    whichever version served it — no torn reads, no stale-plan crashes —
    and the new version must actually take traffic mid-flight.
    """

    def test_soak_under_hot_reload(self, dataset, taxonomy, tiny_model_config,
                                   tmp_path):
        names = ["ranker_a", "ranker_b"]
        versions = {}                    # (name, version) -> reference scores
        batch = dataset.batch(np.arange(16))

        def make_version(seed):
            return build_model("adv-hsc-moe", dataset.spec, taxonomy,
                               tiny_model_config.with_updates(seed=seed),
                               train_dataset=dataset)

        models = {name: make_version(seed)
                  for seed, name in enumerate(names)}
        serving.save_environment(tmp_path, dataset.spec, taxonomy)
        for name, m in models.items():
            serving.save_checkpoint(m, tmp_path / name, "adv-hsc-moe")
            versions[(name, 1)] = m.score(batch)

        registry = ModelRegistry()
        registry.reload_from_directory(tmp_path, dataset.spec, taxonomy)
        failures = []
        observed_versions = set()
        stop = threading.Event()

        with RankingService(registry, max_wait_ms=0.5,
                            num_workers=3) as service:
            def client(index):
                name = names[index % len(names)]
                # Any escaping exception (e.g. a stale-pool crash during
                # the swap) must land in `failures`, not die with the
                # thread — the soak exists to assert no-crash under reload.
                try:
                    while not stop.is_set():
                        response = service.rank(batch, model=name,
                                                top_k=len(batch))
                        key = (name, response.model_version)
                        observed_versions.add(key)
                        reference = versions.get(key)
                        if reference is None:
                            failures.append(f"unknown version served: {key}")
                            return
                        if not np.allclose(reference[response.indices],
                                           response.scores, atol=1e-9):
                            failures.append(f"scores mismatch for {key}")
                            return
                except BaseException as error:
                    failures.append(f"client {index} crashed: {error!r}")

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            # Hot swap both models to fresh weights while traffic flows.
            time.sleep(0.05)
            for seed, name in enumerate(names):
                fresh = make_version(seed + 10)
                versions[(name, 2)] = fresh.score(batch)
                serving.save_checkpoint(fresh, tmp_path / name, "adv-hsc-moe")
            registry.reload_from_directory(tmp_path, dataset.spec, taxonomy)
            time.sleep(0.15)
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not failures, failures
        # The reload took effect under traffic for every model name.
        for name in names:
            assert (name, 2) in observed_versions
            assert registry.latest_version(name) == 2


class TestMicroBatchAssemblyProperties:
    """Property test: pooled micro-batch assembly is exact and conservative.

    For random request sizes, worker counts, and batching knobs, the
    concatenated pool results must equal per-request ``score()`` (within
    the parity suite's f64 tolerance — same compiled kernels, but BLAS may
    reassociate across batch sizes) and row/request counts must be
    conserved across workers.
    """

    @settings(max_examples=20, deadline=None)
    @given(sizes=st.lists(st.integers(min_value=1, max_value=12),
                          min_size=1, max_size=16),
           num_workers=st.integers(min_value=1, max_value=4),
           max_batch_rows=st.integers(min_value=1, max_value=48),
           max_wait_ms=st.sampled_from([0.0, 0.5, 2.0]),
           submitters=st.integers(min_value=1, max_value=4),
           adaptive=st.booleans())
    def test_assembly_exact_and_conserved(self, model, dataset, sizes,
                                          num_workers, max_batch_rows,
                                          max_wait_ms, submitters, adaptive):
        requests = [dataset.batch(np.arange(i % 8, i % 8 + size))
                    for i, size in enumerate(sizes)]
        expected = [model.score(b) for b in requests]
        with ScorerPool(model.make_scorer, num_workers=num_workers,
                        max_batch_rows=max_batch_rows,
                        max_wait_ms=max_wait_ms, adaptive_batch=adaptive) as pool:
            # Random-ish arrival: requests fan out over several submitter
            # threads, so enqueue order interleaves with worker collection.
            with ThreadPoolExecutor(max_workers=submitters) as executor:
                futures = list(executor.map(pool.submit, requests))
            results = [future.result(timeout=30) for future in futures]
            stats = pool.stats()
            per_worker = pool.worker_stats()
        for got, want in zip(results, expected):
            np.testing.assert_allclose(got, want, atol=1e-12)
        assert stats.requests == len(sizes)
        assert stats.rows == sum(sizes)
        assert sum(s.rows for s in per_worker) == stats.rows
        assert sum(s.requests for s in per_worker) == stats.requests

    @settings(max_examples=10, deadline=None)
    @given(sizes=st.lists(st.integers(min_value=1, max_value=10),
                          min_size=1, max_size=10))
    def test_assembly_float32(self, dataset, taxonomy, tiny_model_config,
                              sizes, f32_model_and_dataset):
        model32, dataset32 = f32_model_and_dataset
        requests = [dataset32.batch(np.arange(size)) for size in sizes]
        expected = [model32.score(b) for b in requests]
        with ScorerPool(model32.make_scorer, num_workers=2,
                        max_batch_rows=24, max_wait_ms=1.0) as pool:
            futures = [pool.submit(b) for b in requests]
            results = [future.result(timeout=30) for future in futures]
        for got, want in zip(results, expected):
            np.testing.assert_allclose(got, want, atol=1e-6)


@pytest.fixture(scope="module")
def f32_model_and_dataset(dataset, taxonomy, tiny_model_config):
    with nn.default_dtype(np.float32):
        model32 = build_model("dnn", dataset.spec, taxonomy, tiny_model_config)
    return model32, dataset.astype(np.float32)
