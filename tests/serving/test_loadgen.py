"""Unit tests for the load generator's rate arithmetic.

Regression suite for the PR 9 rate-math fix: published req/s and rows/s
used to divide by the *configured* ``--duration``, so client ramp-up
(threads starting late) and overrun (in-flight requests completing after
the deadline) skewed every rate the sweep printed.  Rates now divide by
the measured first-send → last-response window; ``duration_s`` stays the
nominal knob it always was.
"""

import pytest

from repro.serving.loadgen import LoadSummary, _measured_elapsed, _summarize


class TestMeasuredElapsed:
    def test_spans_earliest_start_to_latest_end(self):
        windows = [[10.0, 14.0], [10.5, 16.0], [11.0, 13.0]]
        assert _measured_elapsed(windows) == pytest.approx(6.0)

    def test_clients_that_never_sent_are_ignored(self):
        windows = [[None, None], [5.0, 9.0], [None, None]]
        assert _measured_elapsed(windows) == pytest.approx(4.0)

    def test_no_traffic_measures_zero(self):
        assert _measured_elapsed([]) == 0.0
        assert _measured_elapsed([[None, None]]) == 0.0

    def test_never_negative(self):
        # A client that sent but whose only response landed "before" a
        # later client's first send cannot produce a negative window.
        assert _measured_elapsed([[7.0, 7.0]]) == 0.0


class TestRateDenominator:
    def test_rates_divide_by_measured_not_nominal(self):
        """100 requests over a measured 2s is 50 req/s, even when the
        operator asked for ``--duration 5`` (the pre-fix code published
        20 req/s here)."""
        summary = _summarize(duration_s=5.0, clients=4, rows_per_request=8,
                             latencies=[0.01] * 100, transport_errors=0,
                             error_statuses={}, retry_after_hint_s=0.0,
                             elapsed_s=2.0)
        assert summary.rps == pytest.approx(50.0)
        assert summary.rows_per_s == pytest.approx(400.0)

    def test_nominal_duration_is_preserved_untouched(self):
        summary = _summarize(duration_s=5.0, clients=1, rows_per_request=1,
                             latencies=[0.01] * 10, transport_errors=0,
                             error_statuses={}, retry_after_hint_s=0.0,
                             elapsed_s=2.5)
        assert summary.duration_s == 5.0
        assert summary.elapsed_s == 2.5

    def test_unmeasured_falls_back_to_nominal(self):
        """Callers that never measured (elapsed_s=None) keep the old
        behavior rather than publishing infinities."""
        summary = _summarize(duration_s=4.0, clients=1, rows_per_request=2,
                             latencies=[0.01] * 8, transport_errors=0,
                             error_statuses={}, retry_after_hint_s=0.0)
        assert summary.rps == pytest.approx(2.0)
        assert summary.rows_per_s == pytest.approx(4.0)
        assert summary.elapsed_s == 0.0

    def test_zero_measured_window_yields_zero_rates(self):
        summary = _summarize(duration_s=3.0, clients=1, rows_per_request=1,
                             latencies=[0.01], transport_errors=0,
                             error_statuses={}, retry_after_hint_s=0.0,
                             elapsed_s=0.0)
        assert summary.rps == 0.0
        assert summary.rows_per_s == 0.0

    def test_elapsed_rides_serialization(self):
        summary = _summarize(duration_s=3.0, clients=2, rows_per_request=4,
                             latencies=[0.02] * 6, transport_errors=0,
                             error_statuses={}, retry_after_hint_s=0.0,
                             elapsed_s=1.5)
        assert summary.to_dict()["elapsed_s"] == 1.5

    def test_format_reports_both_measured_and_nominal(self):
        summary = _summarize(duration_s=5.0, clients=4, rows_per_request=8,
                             latencies=[0.01] * 100, transport_errors=0,
                             error_statuses={}, retry_after_hint_s=0.0,
                             elapsed_s=2.0)
        text = summary.format()
        assert "2.00s measured" in text
        assert "nominal 5s" in text

    def test_format_without_measurement_shows_nominal_as_measured(self):
        text = LoadSummary(duration_s=3.0, clients=1, rows_per_request=1,
                           requests=3, rows=3, errors=0,
                           transport_errors=0).format()
        assert "3.00s measured" in text
