"""Overload self-protection and graceful-drain tests for the gateway.

End-to-end over real sockets: a deliberately slow toy model gives the
scorer pool a small, predictable capacity, so a burst of concurrent
clients drives the backlog past its admission bound on demand.  The
suite pins the two halves of the PR's contract:

* **Shedding is exact and clean** — under overload every submitted
  request is either served or answered with a structured 429 (+
  ``Retry-After``); the gateway's own shed counter agrees with what
  clients observed, and operational endpoints keep answering while
  scoring traffic is refused.
* **Shutdown answers what it accepted** — ``close()`` (and SIGTERM via
  the installed handlers) drains: requests in flight when the stop began
  still get their 200, final responses carry ``Connection: close``, and
  the serve loop exits on its own.  This is the regression test for the
  old ``cancel_futures=True`` teardown, which reset accepted requests.
"""

import http.client
import json
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.serving import (ModelRegistry, RankingService, ServingClient,
                           ServingError, ServingServer)


class _SlowToyModel:
    """Scores are row sums after a fixed delay — capacity is exact."""

    def __init__(self, delay_s: float):
        self.delay_s = delay_s

    def make_scorer(self):
        def score(batch):
            time.sleep(self.delay_s)
            return batch.numeric.sum(axis=1)
        return score


def _make_server(backend: str, delay_s: float = 0.05,
                 max_backlog_rows: int | None = 8,
                 drain_deadline_s: float = 5.0) -> ServingServer:
    registry = ModelRegistry()
    registry.register("toy", _SlowToyModel(delay_s))
    service = RankingService(registry, num_workers=1, max_batch_rows=4,
                             max_wait_ms=1.0,
                             max_backlog_rows=max_backlog_rows)
    return ServingServer(service, backend=backend,
                         drain_deadline_s=drain_deadline_s).start()


def _rank_payload(rows: int = 4) -> bytes:
    return json.dumps({
        "candidates": {"numeric": np.ones((rows, 3)).tolist(), "sparse": {}},
        "top_k": 1,
    }).encode("utf-8")


@pytest.fixture(params=["selector", "threaded"])
def backend(request):
    return request.param


class TestOverloadShedding:
    def test_every_request_served_or_shed_exactly(self, backend):
        """shed == submitted - served, across client and gateway books."""
        server = _make_server(backend)
        try:
            ServingClient(server.url).wait_ready()
            per_thread = 8
            threads = 6
            served = []
            sheds = []

            def worker():
                client = ServingClient(server.url)
                for _ in range(per_thread):
                    try:
                        client.rank(np.ones((4, 3)), {}, top_k=1)
                        served.append(1)
                    except ServingError as error:
                        # Any status other than a structured overload
                        # shed fails the test by re-raising.
                        assert error.status == 429
                        assert error.kind == "overloaded"
                        assert error.retry_after_s is not None
                        assert error.retry_after_s >= 1
                        sheds.append(1)

            pool = [threading.Thread(target=worker) for _ in range(threads)]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()

            submitted = per_thread * threads
            assert len(served) + len(sheds) == submitted
            assert sheds, "the burst never hit the admission bound"
            assert served, "shedding must not starve admitted traffic"
            stats = ServingClient(server.url).stats()
            assert stats["server"]["shed_requests"] == len(sheds)
            scorer = next(iter(stats["scorers"].values()))
            assert scorer["max_backlog_rows"] == 8
            # The pool-level race backstop may or may not have fired; the
            # gate plus backstop together must never under-count.
            assert scorer["shed_requests"] <= len(sheds)
        finally:
            server.close()

    def test_operational_endpoints_never_shed(self):
        """Monitoring must keep answering while scoring traffic sheds."""
        server = _make_server("selector", delay_s=0.3, max_backlog_rows=4)
        try:
            client = ServingClient(server.url)
            client.wait_ready()
            blocker = threading.Thread(
                target=lambda: ServingClient(server.url, timeout=15).rank(
                    np.ones((4, 3)), {}, top_k=1))
            filler = threading.Thread(
                target=lambda: ServingClient(server.url, timeout=15).rank(
                    np.ones((4, 3)), {}, top_k=1))
            blocker.start()
            time.sleep(0.05)            # worker collects the first request
            filler.start()
            time.sleep(0.05)            # backlog now at the bound
            with pytest.raises(ServingError) as excinfo:
                client.rank(np.ones((4, 3)), {}, top_k=1)
            assert excinfo.value.status == 429
            # Shed for scoring, open for operations — same instant.
            assert client.healthz()["status"] == "ok"
            stats = client.stats()
            assert stats["server"]["shed_requests"] >= 1
            blocker.join()
            filler.join()
        finally:
            server.close()

    def test_shed_response_shape_pinned(self):
        """The 429 contract: error schema, Retry-After header, counted."""
        server = _make_server("selector", delay_s=0.3, max_backlog_rows=4)
        try:
            ServingClient(server.url).wait_ready()
            holders = [threading.Thread(
                target=lambda: ServingClient(server.url, timeout=15).rank(
                    np.ones((4, 3)), {}, top_k=1)) for _ in range(2)]
            for holder in holders:
                holder.start()
                time.sleep(0.05)
            connection = http.client.HTTPConnection(server.host, server.port,
                                                    timeout=10)
            connection.request("POST", "/rank", _rank_payload(),
                               {"Content-Type": "application/json"})
            response = connection.getresponse()
            body = json.loads(response.read())
            assert response.status == 429
            assert response.getheader("Retry-After") is not None
            assert int(response.getheader("Retry-After")) >= 1
            assert body["error"]["type"] == "overloaded"
            connection.close()
            for holder in holders:
                holder.join()
        finally:
            server.close()


class TestGracefulDrain:
    def test_close_answers_in_flight_requests(self, backend):
        """The shutdown-drop regression: a request being scored when
        close() starts must still receive its response (the old teardown
        cancelled dispatch futures and reset the connection)."""
        server = _make_server(backend, delay_s=0.3, max_backlog_rows=None)
        result = {}

        def slow_request():
            client = ServingClient(server.url, timeout=15)
            result["response"] = client.rank(np.ones((4, 3)), {}, top_k=1)

        ServingClient(server.url).wait_ready()
        requester = threading.Thread(target=slow_request)
        requester.start()
        time.sleep(0.1)                 # request is now inside the scorer
        server.close()
        requester.join(timeout=10)
        assert "response" in result, "in-flight request dropped by close()"
        assert result["response"]["scores"].shape == (1,)

    def test_selector_drain_marks_last_response_close(self):
        """A drain begun mid-request finishes it with Connection: close,
        then the serve loop exits on its own (no forced shutdown)."""
        server = _make_server("selector", delay_s=0.3, max_backlog_rows=None)
        try:
            ServingClient(server.url).wait_ready()
            connection = http.client.HTTPConnection(server.host, server.port,
                                                    timeout=10)
            connection.request("POST", "/rank", _rank_payload(),
                               {"Content-Type": "application/json"})
            time.sleep(0.1)             # in flight on the gateway
            server.request_drain()
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Connection") == "close"
            connection.close()
            server._thread.join(timeout=5)
            assert not server._thread.is_alive(), \
                "serve loop did not exit after the drain finished"
        finally:
            server.close()

    def test_sigterm_drains_and_exits(self):
        """SIGTERM through install_signal_handlers: every accepted
        request answered, loop exits within the deadline, clean close."""
        server = _make_server("selector", delay_s=0.3, max_backlog_rows=None)
        previous = server.install_signal_handlers()
        result = {}
        try:
            ServingClient(server.url).wait_ready()

            def slow_request():
                client = ServingClient(server.url, timeout=15)
                result["response"] = client.rank(np.ones((4, 3)), {}, top_k=1)

            requester = threading.Thread(target=slow_request)
            requester.start()
            time.sleep(0.1)             # in flight when the signal lands
            os.kill(os.getpid(), signal.SIGTERM)
            requester.join(timeout=10)
            assert "response" in result, "SIGTERM dropped an accepted request"
            server._thread.join(timeout=5)
            assert not server._thread.is_alive(), \
                "serve loop still running after SIGTERM drain"
            # New connections are refused once the drain began.
            with pytest.raises(OSError):
                ServingClient(server.url).healthz()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            server.close()

    def test_drain_deadline_cuts_stuck_requests(self):
        """A request slower than the deadline cannot wedge shutdown."""
        server = _make_server("selector", delay_s=3.0, max_backlog_rows=None,
                              drain_deadline_s=0.2)
        ServingClient(server.url).wait_ready()

        def doomed_request():
            client = ServingClient(server.url, timeout=15)
            try:
                client.rank(np.ones((4, 3)), {}, top_k=1)
            except (ServingError, OSError):
                pass                    # cut off by the deadline: expected

        requester = threading.Thread(target=doomed_request)
        requester.start()
        time.sleep(0.1)
        started = time.monotonic()
        server.close()
        elapsed = time.monotonic() - started
        requester.join(timeout=15)
        # close() = deadline (0.2s) + executor wait for the 3s handler;
        # well under the full request plus a 10s default deadline.
        assert elapsed < 6.0, f"drain deadline did not bound close: {elapsed:.1f}s"
