"""Tests for the multi-process scorer backend (PR 9 tentpole).

Three layers are covered:

* the binary frame codec (pure functions, no processes),
* the shared weight store — content-addressed ``.npy`` extraction that
  lets N processes mmap one physical copy of every parameter,
* :class:`ProcessScorerHost` itself: byte-for-byte parity with the
  in-process model, transparent child respawn, structured error
  propagation, and counter aggregation,

plus an end-to-end gateway slice: ``--scorer-processes 2`` behind
``--gateway-shards 2``, including hot-reload atomicity across shards.

Children are real spawned processes (the serving default): each one
re-imports numpy and hydrates the model from disk, so the process-backed
tests trade a few seconds of spawn time for fidelity.
"""

import json
import urllib.request

import numpy as np
import pytest

from repro import serving
from repro.models import build_model
from repro.querycat import QueryCategoryClassifier, QueryClassifierConfig
from repro.serving import (ProcessScorerError, ProcessScorerHost,
                           ServingClient, ensure_weight_store,
                           load_model_shared, load_shared_state)
from repro.serving.checkpoint import checksum_file
from repro.serving.procscorer import (FRAME_MAGIC, KIND_BATCH, KIND_SCORES,
                                      decode_batch, decode_frame,
                                      decode_scores, encode_batch,
                                      encode_frame, encode_scores)


@pytest.fixture(scope="module")
def model(dataset, taxonomy, tiny_model_config):
    return build_model("adv-hsc-moe", dataset.spec, taxonomy,
                       tiny_model_config, train_dataset=dataset)


@pytest.fixture(scope="module")
def checkpoint_dir(model, dataset, taxonomy, tmp_path_factory):
    directory = tmp_path_factory.mktemp("procscorer-ckpts")
    serving.save_environment(directory, dataset.spec, taxonomy)
    serving.save_checkpoint(model, directory / "ranker", "adv-hsc-moe")
    return directory


@pytest.fixture(scope="module")
def batch(dataset):
    return dataset.batch(np.arange(20))


# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------
class TestFrameCodec:
    def test_batch_round_trip(self, batch):
        kind, payload = decode_frame(encode_batch(batch))
        assert kind == KIND_BATCH
        decoded = decode_batch(payload)
        np.testing.assert_array_equal(decoded.numeric, batch.numeric)
        assert set(decoded.sparse) == set(batch.sparse)
        for name in batch.sparse:
            np.testing.assert_array_equal(decoded.sparse[name],
                                          batch.sparse[name])
            assert decoded.sparse[name].dtype == batch.sparse[name].dtype
        # Serving placeholders: labels/session ids travel as zeros.
        assert (decoded.labels == 0).all()
        assert (decoded.session_ids == 0).all()

    def test_batch_round_trip_float32_and_empty_sparse(self):
        batch = serving.candidate_batch(
            np.linspace(0, 1, 12, dtype=np.float32).reshape(4, 3), {})
        decoded = decode_batch(decode_frame(encode_batch(batch))[1])
        assert decoded.numeric.dtype == np.float32
        np.testing.assert_array_equal(decoded.numeric, batch.numeric)
        assert decoded.sparse == {}

    def test_scores_round_trip_is_writable_copy(self):
        scores = np.linspace(-1, 1, 7)
        kind, payload = decode_frame(encode_scores(scores))
        assert kind == KIND_SCORES
        decoded = decode_scores(payload)
        np.testing.assert_array_equal(decoded, scores)
        decoded[0] = 42.0                       # owned, not a pipe view

    def test_frame_header(self):
        frame = encode_frame(KIND_SCORES, b"xyz")
        assert frame[:2] == FRAME_MAGIC
        kind, payload = decode_frame(frame)
        assert kind == KIND_SCORES and bytes(payload) == b"xyz"

    def test_bad_magic_rejected(self):
        with pytest.raises(ProcessScorerError, match="magic"):
            decode_frame(b"XX" + bytes([KIND_BATCH]))

    def test_short_frame_rejected(self):
        with pytest.raises(ProcessScorerError, match="short"):
            decode_frame(b"R")


# ----------------------------------------------------------------------
# Shared weight store
# ----------------------------------------------------------------------
class TestWeightStore:
    def test_store_holds_every_param_keyed_by_content(self, model,
                                                      checkpoint_dir):
        store = ensure_weight_store(checkpoint_dir / "ranker")
        manifest = json.loads((store / "manifest.json").read_text())
        assert manifest["kind"] == "weight_store"
        assert manifest["fingerprint"] \
            == checksum_file(checkpoint_dir / "ranker.npz")
        assert set(manifest["params"]) == set(model.state_dict())
        state = load_shared_state(store)
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(state[name], value)

    def test_shared_state_is_read_only_mmap(self, checkpoint_dir):
        store = ensure_weight_store(checkpoint_dir / "ranker")
        state = load_shared_state(store)
        array = next(iter(state.values()))
        assert isinstance(array, np.memmap)
        assert not array.flags.writeable

    def test_idempotent_second_call_reuses_store(self, checkpoint_dir):
        store = ensure_weight_store(checkpoint_dir / "ranker")
        marker = store / "marker"
        marker.touch()
        assert ensure_weight_store(checkpoint_dir / "ranker") == store
        assert marker.exists()                  # not rebuilt

    def test_changed_weights_get_a_fresh_store(self, model, dataset, taxonomy,
                                               tiny_model_config, tmp_path):
        serving.save_checkpoint(model, tmp_path / "m", "adv-hsc-moe")
        first = ensure_weight_store(tmp_path / "m")
        other = build_model("adv-hsc-moe", dataset.spec, taxonomy,
                            tiny_model_config, train_dataset=dataset)
        for param in other.parameters():
            param.data = param.data + 0.5       # force different bytes
        serving.save_checkpoint(other, tmp_path / "m", "adv-hsc-moe")
        second = ensure_weight_store(tmp_path / "m")
        assert first != second

    def test_shared_model_scores_match_exactly(self, model, dataset, taxonomy,
                                               checkpoint_dir, batch):
        shared = load_model_shared(checkpoint_dir / "ranker", dataset.spec,
                                   taxonomy)
        np.testing.assert_array_equal(shared.score(batch), model.score(batch))


# ----------------------------------------------------------------------
# ProcessScorerHost
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def host(checkpoint_dir):
    with ProcessScorerHost(checkpoint_dir / "ranker", checkpoint_dir,
                           processes=2, seed=0, version=1) as host:
        yield host


class TestProcessScorerHost:
    def test_every_process_scores_byte_identically(self, host, model, batch):
        reference = model.score(batch)
        for _ in range(host.processes):         # round-robin hits them all
            np.testing.assert_array_equal(host.make_scorer()(batch),
                                          reference)

    def test_child_failure_is_structured_and_survivable(self, host, model,
                                                        batch):
        score = host.make_scorer()
        bad = serving.candidate_batch(np.zeros((3, 999)), {})  # wrong width
        with pytest.raises(ProcessScorerError):
            score(bad)
        # Same child answered the error — no respawn for a scoring error.
        assert host.process_restarts == 0
        np.testing.assert_array_equal(score(batch), model.score(batch))

    def test_invalid_process_count_rejected(self, checkpoint_dir):
        with pytest.raises(ValueError):
            ProcessScorerHost(checkpoint_dir / "ranker", checkpoint_dir,
                              processes=0)


class TestChildLifecycle:
    def test_killed_child_is_respawned_transparently(self, checkpoint_dir,
                                                     model, batch):
        with ProcessScorerHost(checkpoint_dir / "ranker", checkpoint_dir,
                               processes=1) as host:
            score = host.make_scorer()
            np.testing.assert_array_equal(score(batch), model.score(batch))
            victim = host._channels[0].process
            victim.kill()
            victim.join(timeout=10)
            # The next call finds the corpse, respawns, and still answers.
            np.testing.assert_array_equal(score(batch), model.score(batch))
            assert host.process_restarts == 1
            assert host._channels[0].process.pid != victim.pid

    def test_broken_channel_raises_once_then_recovers(self, checkpoint_dir,
                                                      model, batch):
        with ProcessScorerHost(checkpoint_dir / "ranker", checkpoint_dir,
                               processes=1) as host:
            score = host.make_scorer()
            np.testing.assert_array_equal(score(batch), model.score(batch))
            host._channels[0].conn.close()      # sever the pipe mid-life
            with pytest.raises(ProcessScorerError, match="died mid-request"):
                score(batch)
            assert host.process_restarts == 1
            np.testing.assert_array_equal(score(batch), model.score(batch))

    def test_stats_aggregate_across_children(self, checkpoint_dir, batch):
        with ProcessScorerHost(checkpoint_dir / "ranker", checkpoint_dir,
                               processes=1) as host:
            score = host.make_scorer()
            for _ in range(3):
                score(batch)
            stats = host.stats()
            assert set(stats) == {"processes", "process_restarts", "requests",
                                  "rows", "busy_seconds"}
            assert stats["processes"] == 1
            assert stats["process_restarts"] == 0
            assert stats["requests"] == 3
            assert stats["rows"] == 3 * len(batch)
            assert stats["busy_seconds"] > 0

    def test_closed_host_refuses_work(self, checkpoint_dir, batch):
        host = ProcessScorerHost(checkpoint_dir / "ranker", checkpoint_dir,
                                 processes=1)
        score = host.make_scorer()
        host.close()
        host.close()                            # idempotent
        with pytest.raises(ProcessScorerError, match="closed"):
            score(batch)
        assert not host._channels[0].process.is_alive()


# ----------------------------------------------------------------------
# End to end: scorer processes behind a sharded gateway
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def gateway_dir(model, dataset, taxonomy, log, tmp_path_factory):
    # Own directory: the reload test rewrites the checkpoint.
    directory = tmp_path_factory.mktemp("multiproc-gateway")
    serving.save_environment(directory, dataset.spec, taxonomy)
    serving.save_checkpoint(model, directory / "ranker", "adv-hsc-moe")
    classifier = QueryCategoryClassifier(
        log.queries.vocab_size, taxonomy.max_sc_id() + 1,
        QueryClassifierConfig(embedding_dim=8, hidden_size=10))
    serving.save_classifier_checkpoint(classifier, directory / "querycat")
    return directory


@pytest.fixture(scope="module")
def gateway(gateway_dir):
    server = serving.serve_from_directory(gateway_dir, port=0, num_workers=2,
                                          max_wait_ms=0.5, scorer_processes=2,
                                          gateway_shards=2)
    server.start()
    yield server
    server.close()


@pytest.fixture(scope="module")
def gateway_client(gateway):
    client = ServingClient(gateway.url)
    client.wait_ready(timeout_s=30)
    return client


class TestMultiprocessShardedGateway:
    def test_rank_parity_through_processes_and_shards(self, gateway_client,
                                                      model, batch):
        reference = model.score(batch)
        result = gateway_client.rank(batch.numeric, batch.sparse, top_k=6)
        np.testing.assert_allclose(result["scores"],
                                   np.sort(reference)[::-1][:6], atol=1e-9)

    def test_stats_report_process_fleet(self, gateway_client, batch):
        gateway_client.rank(batch.numeric, batch.sparse)
        scorers = gateway_client.stats()["scorers"]
        assert scorers
        for stats in scorers.values():
            assert stats["processes"] == 2
            assert stats["workers"] == 2
            assert stats["process_restarts"] == 0
            assert stats["process_busy_seconds"] > 0

    def test_metrics_expose_process_gauges(self, gateway, gateway_client,
                                           batch):
        gateway_client.rank(batch.numeric, batch.sparse)
        text = urllib.request.urlopen(gateway.url + "/metrics",
                                      timeout=10).read().decode()
        assert 'scorer_processes{pool="ranker:v1"} 2' in text
        assert "scorer_process_restarts_total" in text
        assert "scorer_process_busy_seconds_total" in text

    def test_reload_is_atomic_across_shards(self, gateway, gateway_client,
                                            gateway_dir, model, dataset,
                                            taxonomy, tiny_model_config,
                                            batch):
        """After one ``POST /reload``, every shard serves the new weights:
        fresh connections (kernel-balanced across shard listeners) must
        all answer with the new model's scores and version."""
        replacement = build_model("adv-hsc-moe", dataset.spec, taxonomy,
                                  tiny_model_config, train_dataset=dataset)
        for param in replacement.parameters():
            param.data = param.data * 1.5 + 0.25
        serving.save_checkpoint(replacement, gateway_dir / "ranker",
                                "adv-hsc-moe")
        payload = gateway_client.reload()
        assert "ranker" in payload["models"]
        want = np.sort(replacement.score(batch))[::-1][:6]
        old = np.sort(model.score(batch))[::-1][:6]
        assert not np.allclose(want, old)
        for _ in range(6):                      # fresh connection each time
            probe = ServingClient(gateway.url)
            result = probe.rank(batch.numeric, batch.sparse, top_k=6)
            assert result["model_version"] == 2
            np.testing.assert_allclose(result["scores"], want, atol=1e-9)
