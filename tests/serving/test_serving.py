"""Tests for the ``repro.serving`` subsystem."""

import threading

import numpy as np
import pytest

from repro import nn, serving
from repro.models import build_model
from repro.querycat import QueryCategoryClassifier, QueryClassifierConfig
from repro.serving import (BatchScorer, ModelRegistry, RankingService,
                           candidate_batch, concat_batches)


@pytest.fixture(scope="module")
def model(dataset, taxonomy, tiny_model_config):
    return build_model("adv-hsc-moe", dataset.spec, taxonomy,
                       tiny_model_config, train_dataset=dataset)


@pytest.fixture(scope="module")
def classifier(log, taxonomy):
    return QueryCategoryClassifier(
        log.queries.vocab_size, taxonomy.max_sc_id() + 1,
        QueryClassifierConfig(embedding_dim=8, hidden_size=10))


@pytest.fixture()
def batch(dataset):
    return dataset.batch(np.arange(24))


class TestCheckpoints:
    def test_ranking_round_trip(self, model, dataset, taxonomy, batch, tmp_path):
        path = tmp_path / "ranker"
        serving.save_checkpoint(model, path, "adv-hsc-moe")
        reloaded = serving.load_model(path, dataset.spec, taxonomy)
        np.testing.assert_allclose(reloaded.score(batch), model.score(batch),
                                   atol=1e-12)

    def test_ranking_round_trip_preserves_f32(self, dataset, taxonomy,
                                              tiny_model_config, tmp_path):
        with nn.default_dtype(np.float32):
            model32 = build_model("dnn", dataset.spec, taxonomy, tiny_model_config)
        path = tmp_path / "f32"
        serving.save_checkpoint(model32, path, "dnn")
        reloaded = serving.load_model(path, dataset.spec, taxonomy)
        assert all(p.dtype == np.float32 for p in reloaded.parameters())
        batch32 = dataset.astype(np.float32).batch(np.arange(16))
        np.testing.assert_array_equal(reloaded.score(batch32),
                                      model32.score(batch32))

    def test_classifier_round_trip(self, classifier, log, tmp_path):
        path = tmp_path / "clf"
        serving.save_classifier_checkpoint(classifier, path, extra={"note": "t"})
        reloaded = serving.load_classifier_checkpoint(path)
        tokens, lengths = log.queries.tokens[:16], log.queries.lengths[:16]
        np.testing.assert_array_equal(
            reloaded.predict_proba(tokens, lengths),
            classifier.predict_proba(tokens, lengths))

    def test_classifier_checkpoint_missing(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            serving.load_classifier_checkpoint(tmp_path / "nope")

    def test_classifier_checkpoint_rejects_ranking_meta(self, model, tmp_path):
        path = tmp_path / "ranker"
        serving.save_checkpoint(model, path, "adv-hsc-moe")
        with pytest.raises(ValueError):
            serving.load_classifier_checkpoint(path)

    def test_environment_bundle_round_trip(self, dataset, taxonomy, tmp_path):
        serving.save_environment(tmp_path, dataset.spec, taxonomy)
        spec, tax = serving.load_environment(tmp_path)
        assert spec.to_dict() == dataset.spec.to_dict()
        assert tax.to_dict() == taxonomy.to_dict()
        np.testing.assert_array_equal(tax.parents_of(np.arange(10)),
                                      taxonomy.parents_of(np.arange(10)))

    def test_environment_bundle_missing(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            serving.load_environment(tmp_path)

    def test_find_classifier_checkpoint(self, model, classifier, tmp_path):
        assert serving.find_classifier_checkpoint(tmp_path) is None
        serving.save_checkpoint(model, tmp_path / "ranker", "adv-hsc-moe")
        serving.save_classifier_checkpoint(classifier, tmp_path / "clf")
        found = serving.find_classifier_checkpoint(tmp_path)
        assert found == tmp_path / "clf"


class TestModelRegistry:
    def test_register_and_get(self, model):
        registry = ModelRegistry()
        entry = registry.register("ranker", model, metadata={"auc": 0.7})
        assert entry.version == 1 and entry.metadata["auc"] == 0.7
        assert registry.get("ranker") is model
        assert "ranker" in registry and len(registry) == 1

    def test_versions_auto_increment_and_latest_wins(self, model):
        registry = ModelRegistry()
        registry.register("ranker", "v1-model")
        registry.register("ranker", "v2-model")
        assert registry.versions("ranker") == [1, 2]
        assert registry.latest_version("ranker") == 2
        assert registry.get("ranker") == "v2-model"
        assert registry.get("ranker", version=1) == "v1-model"

    def test_duplicate_version_rejected(self):
        registry = ModelRegistry()
        registry.register("m", object(), version=3)
        with pytest.raises(ValueError):
            registry.register("m", object(), version=3)

    def test_unknown_lookups_raise(self):
        registry = ModelRegistry()
        with pytest.raises(KeyError):
            registry.get("ghost")
        registry.register("m", object())
        with pytest.raises(KeyError):
            registry.get("m", version=9)

    def test_register_checkpoint(self, model, dataset, taxonomy, batch, tmp_path):
        path = tmp_path / "ckpt"
        serving.save_checkpoint(model, path, "adv-hsc-moe")
        registry = ModelRegistry()
        entry = registry.register_checkpoint("ranker", path, dataset.spec, taxonomy)
        assert entry.metadata["checkpoint"] == str(path)
        np.testing.assert_allclose(entry.model.score(batch), model.score(batch),
                                   atol=1e-12)

    def test_entries_ordered(self, model):
        registry = ModelRegistry()
        registry.register("b", model)
        registry.register("a", model)
        registry.register("a", model)
        assert [(e.name, e.version) for e in registry.entries()] == \
            [("a", 1), ("a", 2), ("b", 1)]

    def test_reload_from_directory_registers_and_skips(self, model, dataset,
                                                       taxonomy, batch,
                                                       tmp_path):
        serving.save_environment(tmp_path, dataset.spec, taxonomy)
        serving.save_checkpoint(model, tmp_path / "ranker", "adv-hsc-moe")
        registry = ModelRegistry()
        first = registry.reload_from_directory(tmp_path, dataset.spec, taxonomy)
        assert [(e.name, e.version) for e in first] == [("ranker", 1)]
        np.testing.assert_allclose(first[0].model.score(batch),
                                   model.score(batch), atol=1e-12)
        # Unchanged weights: a re-scan is a no-op (fingerprint match).
        assert registry.reload_from_directory(tmp_path, dataset.spec,
                                              taxonomy) == []
        # Rewriting the *same* bytes is still a no-op: the fingerprint
        # is a content checksum, not mtime+size.
        serving.save_checkpoint(model, tmp_path / "ranker", "adv-hsc-moe")
        assert registry.reload_from_directory(tmp_path, dataset.spec,
                                              taxonomy) == []
        # Changed weights: registered as the next version.
        state = model.state_dict()
        key = next(iter(state))
        state[key] = state[key] + 0.25
        model.load_state_dict(state)
        serving.save_checkpoint(model, tmp_path / "ranker", "adv-hsc-moe")
        second = registry.reload_from_directory(tmp_path, dataset.spec, taxonomy)
        assert [(e.name, e.version) for e in second] == [("ranker", 2)]

    def test_reload_from_directory_missing_dir(self, dataset, taxonomy,
                                               tmp_path):
        with pytest.raises(FileNotFoundError):
            ModelRegistry().reload_from_directory(tmp_path / "nope",
                                                  dataset.spec, taxonomy)


class TestBatchScorer:
    def test_scores_match_direct(self, model, batch):
        with BatchScorer(model.score, max_wait_ms=0.0) as scorer:
            np.testing.assert_array_equal(scorer.score(batch), model.score(batch))

    def test_concurrent_requests_micro_batched(self, model, dataset):
        batches = [dataset.batch(np.arange(i, i + 5)) for i in range(40)]
        expected = [model.score(b) for b in batches]
        with BatchScorer(model.score, max_batch_rows=64, max_wait_ms=20.0) as scorer:
            futures = [scorer.submit(b) for b in batches]
            for future, want in zip(futures, expected):
                np.testing.assert_allclose(future.result(timeout=10), want,
                                           atol=1e-12)
            stats = scorer.stats()
        assert stats.requests == 40
        assert stats.rows == 200
        assert stats.batches < 40           # coalescing actually happened
        assert stats.mean_batch_rows > 5.0
        assert stats.throughput_rows_per_s > 0
        assert stats.max_latency_ms >= stats.mean_latency_ms > 0

    def test_submit_after_close_raises(self, model, batch):
        scorer = BatchScorer(model.score)
        scorer.close()
        with pytest.raises(RuntimeError):
            scorer.submit(batch)

    def test_close_completes_pending(self, model, batch):
        scorer = BatchScorer(model.score, max_wait_ms=50.0)
        future = scorer.submit(batch)
        scorer.close()
        np.testing.assert_array_equal(future.result(timeout=10), model.score(batch))

    def test_exception_propagates_to_future(self, batch):
        def broken(_):
            raise RuntimeError("model exploded")
        with BatchScorer(broken, max_wait_ms=0.0) as scorer:
            future = scorer.submit(batch)
            with pytest.raises(RuntimeError, match="model exploded"):
                future.result(timeout=10)

    def test_worker_survives_bad_requests(self, model, batch, dataset):
        """Merge failures and bad score shapes must fail the waiting
        futures, not kill the worker (which would hang later callers)."""
        with BatchScorer(model.score, max_wait_ms=0.0) as scorer:
            malformed = dataset.batch(np.arange(4))
            malformed.sparse = {"only_key": np.zeros(4, dtype=np.int64)}
            with pytest.raises(Exception):
                scorer.submit(malformed).result(timeout=10)
            # Worker still alive and scoring correctly afterwards.
            np.testing.assert_array_equal(scorer.score(batch), model.score(batch))

    def test_worker_survives_scalar_score_fn(self, batch):
        with BatchScorer(lambda b: np.float64(0.5), max_wait_ms=0.0) as scorer:
            with pytest.raises(ValueError, match="shape"):
                scorer.submit(batch).result(timeout=10)

    def test_many_threads_submit(self, model, dataset):
        results = {}
        with BatchScorer(model.score, max_batch_rows=128, max_wait_ms=5.0) as scorer:
            def submit(i):
                results[i] = scorer.score(dataset.batch(np.arange(i, i + 3)))
            threads = [threading.Thread(target=submit, args=(i,)) for i in range(16)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for i in range(16):
            np.testing.assert_allclose(
                results[i], model.score(dataset.batch(np.arange(i, i + 3))),
                atol=1e-12)

    def test_concat_batches_round_trip(self, dataset):
        a, b = dataset.batch(np.arange(5)), dataset.batch(np.arange(5, 12))
        merged = concat_batches([a, b])
        assert len(merged) == 12
        np.testing.assert_array_equal(merged.numeric[:5], a.numeric)
        np.testing.assert_array_equal(merged.sparse["query_sc"][5:],
                                      b.sparse["query_sc"])

    def test_invalid_knobs_rejected(self, model):
        with pytest.raises(ValueError):
            BatchScorer(model.score, max_batch_rows=0)
        with pytest.raises(ValueError):
            BatchScorer(model.score, max_wait_ms=-1.0)


class TestRankingService:
    @pytest.fixture()
    def registry(self, model):
        registry = ModelRegistry()
        registry.register("ranker", model)
        return registry

    def test_rank_returns_topk_best_first(self, registry, model, batch):
        with RankingService(registry, default_model="ranker",
                            max_wait_ms=0.0) as service:
            response = service.rank(batch, top_k=5)
        direct = model.score(batch)
        assert response.indices.shape == (5,)
        np.testing.assert_allclose(response.scores,
                                   np.sort(direct)[::-1][:5], atol=1e-12)
        np.testing.assert_allclose(direct[response.indices], response.scores)
        assert response.model_name == "ranker" and response.model_version == 1
        assert response.latency_ms > 0

    def test_query_intent_populated(self, registry, classifier, taxonomy,
                                    log, batch):
        queries = log.queries
        with RankingService(registry, default_model="ranker",
                            classifier=classifier, taxonomy=taxonomy,
                            max_wait_ms=0.0) as service:
            response = service.rank(batch, query_tokens=queries.tokens[0],
                                    query_lengths=queries.lengths[0], top_k=3)
        assert response.predicted_sc is not None
        expected_tc = int(taxonomy.parents_of(
            np.asarray([response.predicted_sc]))[0])
        assert response.predicted_tc == expected_tc

    def test_category_routing_selects_dedicated_model(self, model, classifier,
                                                      taxonomy, log, batch):
        registry = ModelRegistry()
        registry.register("general", model)
        registry.register("dedicated", model)
        queries = log.queries
        sc, tc = None, None
        with RankingService(registry, default_model="general",
                            classifier=classifier, taxonomy=taxonomy,
                            max_wait_ms=0.0) as probe:
            sc, tc = probe.classify_query(queries.tokens[0], queries.lengths[0])
        with RankingService(registry, default_model="general",
                            classifier=classifier, taxonomy=taxonomy,
                            routing={tc: "dedicated"}, max_wait_ms=0.0) as service:
            routed = service.rank(batch, query_tokens=queries.tokens[0],
                                  query_lengths=queries.lengths[0])
            unrouted = service.rank(batch)
        assert routed.model_name == "dedicated"
        assert unrouted.model_name == "general"

    def test_single_registered_model_is_implicit_default(self, registry, batch):
        with RankingService(registry, max_wait_ms=0.0) as service:
            assert service.rank(batch).model_name == "ranker"

    def test_ambiguous_routing_raises(self, model, batch):
        registry = ModelRegistry()
        registry.register("a", model)
        registry.register("b", model)
        with RankingService(registry, max_wait_ms=0.0) as service:
            with pytest.raises(ValueError):
                service.rank(batch)

    def test_closed_service_refuses_scoring(self, registry, batch):
        """close() must be terminal: a late caller would otherwise rebuild
        a scorer pool whose worker threads nothing ever stops."""
        service = RankingService(registry, default_model="ranker",
                                 max_wait_ms=0.0)
        service.rank(batch)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.score(batch)
        service.close()                 # idempotent

    def test_rank_rides_out_retired_pool(self, registry, model, batch):
        """A caller can resolve a pool and lose the race with a hot swap
        retiring it; the service must transparently re-resolve instead of
        surfacing 'ScorerPool is closed'."""
        with RankingService(registry, default_model="ranker",
                            max_wait_ms=0.0) as service:
            scorer, _ = service._scorer_for("ranker", None)
            with service._scorers_lock:
                service._scorers.pop(("ranker", 1))
            scorer.close()              # simulate the losing side of the race
            np.testing.assert_allclose(service.score(batch),
                                       model.score(batch), atol=1e-12)

    def test_hot_swap_retires_old_version_scorer(self, model, batch):
        """Registering a new version must not leak the old version's
        worker thread / model reference once traffic moves over."""
        registry = ModelRegistry()
        registry.register("ranker", model)
        with RankingService(registry, default_model="ranker",
                            max_wait_ms=0.0) as service:
            first = service.rank(batch)
            assert first.model_version == 1
            registry.register("ranker", model)  # hot swap to v2
            second = service.rank(batch)
            assert second.model_version == 2
            assert list(service.stats()) == ["ranker:v2"]  # v1 retired
            # Pinning the old version still works (fresh scorer on demand).
            assert service.rank(batch, version=1).model_version == 1

    def test_stats_exposed_per_model(self, registry, batch):
        with RankingService(registry, max_wait_ms=0.0) as service:
            service.rank(batch)
            stats = service.stats()
        assert "ranker:v1" in stats
        assert stats["ranker:v1"].requests == 1

    def test_pooled_service_matches_reference(self, registry, model, batch):
        with RankingService(registry, default_model="ranker", max_wait_ms=0.0,
                            num_workers=3) as service:
            response = service.rank(batch, top_k=4)
            stats = service.stats()
        np.testing.assert_allclose(response.scores,
                                   np.sort(model.score(batch))[::-1][:4],
                                   atol=1e-12)
        assert stats["ranker:v1"].workers == 3

    def test_invalid_num_workers_rejected(self, registry):
        with pytest.raises(ValueError):
            RankingService(registry, num_workers=0)

    def test_split_precompute_matches_reference(self, registry, model, batch):
        """split_precompute routes scoring through the split plan + shared
        prefix memo; answers must match the full plan to float rounding,
        repeat requests included (memoized prefixes)."""
        with RankingService(registry, default_model="ranker", max_wait_ms=0.0,
                            num_workers=2, split_precompute=True) as service:
            first = service.rank(batch, top_k=6)
            second = service.rank(batch, top_k=6)
        expected = np.sort(model.score(batch))[::-1][:6]
        np.testing.assert_allclose(first.scores, expected, atol=1e-9)
        np.testing.assert_allclose(second.scores, expected, atol=1e-9)

    def test_split_precompute_falls_back_without_support(self, batch):
        """Models without make_split_scorer (arbitrary scorables) must
        still serve when the flag is on."""
        class _Plain:
            def score(self, b):
                return np.asarray(b.numeric[:, 0], dtype=np.float64)

        registry = ModelRegistry()
        registry.register("plain", _Plain())
        with RankingService(registry, default_model="plain", max_wait_ms=0.0,
                            split_precompute=True) as service:
            response = service.rank(batch, top_k=3)
        np.testing.assert_allclose(
            response.scores,
            np.sort(np.asarray(batch.numeric[:, 0]))[::-1][:3], atol=1e-12)

    def test_candidate_batch_shapes(self, dataset):
        raw = dataset.batch(np.arange(6))
        built = candidate_batch(raw.numeric, raw.sparse)
        assert len(built) == 6
        assert built.labels.sum() == 0
        np.testing.assert_array_equal(built.numeric, raw.numeric)

    def test_checkpoint_to_service_end_to_end(self, model, classifier, dataset,
                                              taxonomy, log, tmp_path):
        """The quickstart path: save -> register from disk -> rank."""
        path = tmp_path / "ranker"
        serving.save_checkpoint(model, path, "adv-hsc-moe")
        clf_path = tmp_path / "clf"
        serving.save_classifier_checkpoint(classifier, clf_path)
        registry = ModelRegistry()
        registry.register_checkpoint("ranker", path, dataset.spec, taxonomy)
        batch = dataset.batch(np.arange(24))
        with RankingService(registry, default_model="ranker",
                            classifier=serving.load_classifier_checkpoint(clf_path),
                            taxonomy=taxonomy, max_wait_ms=0.0) as service:
            response = service.rank(batch, query_tokens=log.queries.tokens[0],
                                    query_lengths=log.queries.lengths[0], top_k=4)
        np.testing.assert_allclose(response.scores,
                                   np.sort(model.score(batch))[::-1][:4],
                                   atol=1e-12)
