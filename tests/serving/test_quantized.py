"""Tests for int8 quantized serving end to end (PR 10 tentpole).

Layers covered:

* checkpoint persistence — ``save_checkpoint(quantize=True)`` writes the
  ``.quant.npz`` sidecar, records calibration error in the sidecar meta,
  and the checksum manifest covers **every** artifact (a torn sidecar can
  no longer pass verification — the satellite fix this PR pins),
* registry — quantized reload lane, quarantine on torn/missing artifacts,
  last-good keeps serving,
* the quantized weight store + process scorers — byte-identical scores
  between in-process and ``--scorer-processes`` serving of the same
  quantized checkpoint,
* the gateway — ``quantized=True`` boots, answers, and reports the plan
  lane on ``/stats``,
* model quality — NDCG/AUC at DEFAULT scale move ≤ 0.1% relative vs f32.
"""

import json

import numpy as np
import pytest

from repro import serving
from repro.models import build_model
from repro.nn.quantize import is_quantized_serving
from repro.serving import ModelRegistry, ProcessScorerHost
from repro.serving.checkpoint import ensure_weight_store, load_model_shared
from repro.serving.faults import FaultInjector
from repro.utils.serialization import (CheckpointCorrupted, load_checkpoint,
                                       load_model_quantized,
                                       load_quantized_checkpoint)


@pytest.fixture(scope="module")
def f32_model(dataset, taxonomy, tiny_model_config):
    model = build_model("adv-hsc-moe", dataset.spec, taxonomy,
                        tiny_model_config, train_dataset=dataset)
    return model.astype(np.float32)


@pytest.fixture(scope="module")
def batch(dataset):
    return dataset.batch(np.arange(24))


@pytest.fixture(scope="module")
def quant_dir(f32_model, dataset, taxonomy, batch, tmp_path_factory):
    directory = tmp_path_factory.mktemp("quantized-ckpts")
    serving.save_environment(directory, dataset.spec, taxonomy)
    serving.save_checkpoint(f32_model, directory / "ranker", "adv-hsc-moe",
                            quantize=True, calibration_batch=batch)
    return directory


class TestQuantizedCheckpoint:
    def test_sidecar_artifact_and_manifest(self, quant_dir):
        assert (quant_dir / "ranker.quant.npz").exists()
        meta = json.loads((quant_dir / "ranker.json").read_text())
        assert set(meta["checksum"]) == {"weights", "quantized"}
        q = meta["quantization"]
        assert q["scheme"] == "per-channel-symmetric-int8"
        assert q["params"] and all(name.endswith(".weight")
                                   for name in q["params"])
        assert q["nbytes"] > 0

    def test_calibration_recorded(self, quant_dir):
        meta = json.loads((quant_dir / "ranker.json").read_text())
        calibration = meta["quantization"]["calibration"]
        assert calibration["rows"] == 24
        assert 0.0 <= calibration["mean_abs_score_delta"] \
            <= calibration["max_abs_score_delta"] < 0.1

    def test_quantization_does_not_mutate_the_model(self, f32_model, batch,
                                                    quant_dir):
        """Saving with quantize=True (incl. calibration) must leave the
        live model full-precision: fresh plans score identically."""
        assert not is_quantized_serving(f32_model)
        assert all(not np.isnan(p.data).any()
                   for p in f32_model.parameters())
        np.testing.assert_array_equal(f32_model.make_scorer()(batch),
                                      f32_model.score(batch))

    def test_load_model_quantized_score_parity(self, f32_model, dataset,
                                               taxonomy, batch, quant_dir):
        qmodel = load_model_quantized(quant_dir / "ranker", dataset.spec,
                                      taxonomy)
        assert is_quantized_serving(qmodel)
        reference = np.asarray(f32_model.score(batch), dtype=np.float64)
        got = np.asarray(qmodel.score(batch), dtype=np.float64)
        meta = json.loads((quant_dir / "ranker.json").read_text())
        bound = meta["quantization"]["calibration"]["max_abs_score_delta"]
        # The calibration bound was measured on this very batch — loading
        # from disk must reproduce it, not merely approximate it.
        assert np.abs(got - reference).max() <= bound + 1e-7

    def test_predict_raises_on_quantized_model(self, dataset, taxonomy,
                                               batch, quant_dir):
        qmodel = load_model_quantized(quant_dir / "ranker", dataset.spec,
                                      taxonomy)
        with pytest.raises(RuntimeError, match="quantized"):
            qmodel.predict(batch)

    def test_unquantized_checkpoint_refuses_quantized_load(
            self, f32_model, dataset, taxonomy, tmp_path):
        serving.save_checkpoint(f32_model, tmp_path / "plain", "adv-hsc-moe")
        with pytest.raises(ValueError, match="quantize=True"):
            load_quantized_checkpoint(tmp_path / "plain")


class TestSidecarManifestCoverage:
    """Satellite fix: the checksum manifest must cover every artifact, so a
    torn sidecar can never pass verification."""

    def _save(self, f32_model, batch, tmp_path):
        serving.save_checkpoint(f32_model, tmp_path / "ranker",
                                "adv-hsc-moe", quantize=True,
                                calibration_batch=batch)
        return tmp_path / "ranker"

    def test_torn_quant_sidecar_fails_full_precision_load_too(
            self, f32_model, batch, tmp_path):
        """Even the f32 loader verifies the whole manifest: a checkpoint
        with any torn artifact is corrupt, full stop."""
        base = self._save(f32_model, batch, tmp_path)
        FaultInjector().tear_file(tmp_path / "ranker.quant.npz")
        with pytest.raises(CheckpointCorrupted, match="quantized"):
            load_checkpoint(base)
        with pytest.raises(CheckpointCorrupted):
            load_quantized_checkpoint(base)

    def test_torn_weights_fails_quantized_load(self, f32_model, batch,
                                               tmp_path):
        base = self._save(f32_model, batch, tmp_path)
        FaultInjector().tear_file(tmp_path / "ranker.npz")
        with pytest.raises(CheckpointCorrupted):
            load_quantized_checkpoint(base)

    def test_missing_declared_artifact_detected(self, f32_model, batch,
                                                tmp_path):
        base = self._save(f32_model, batch, tmp_path)
        (tmp_path / "ranker.quant.npz").unlink()
        with pytest.raises(CheckpointCorrupted, match="missing"):
            load_checkpoint(base)

    def test_unknown_manifest_key_detected(self, f32_model, batch, tmp_path):
        base = self._save(f32_model, batch, tmp_path)
        meta_path = tmp_path / "ranker.json"
        meta = json.loads(meta_path.read_text())
        meta["checksum"]["mystery"] = "sha256:" + "0" * 64
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(CheckpointCorrupted, match="mystery"):
            load_checkpoint(base)


class TestQuantizedRegistry:
    def test_reload_registers_quantized_lane(self, quant_dir, dataset,
                                             taxonomy, batch, f32_model):
        registry = ModelRegistry()
        entries = registry.reload_from_directory(quant_dir, dataset.spec,
                                                 taxonomy, quantized=True)
        assert [(e.name, e.version) for e in entries] == [("ranker", 1)]
        entry = registry.entry("ranker")
        assert entry.metadata["quantized"] is True
        assert is_quantized_serving(entry.model)
        # Idempotent re-poll.
        assert registry.reload_from_directory(quant_dir, dataset.spec,
                                              taxonomy, quantized=True) == []

    def test_missing_quant_artifact_quarantined(self, f32_model, dataset,
                                                taxonomy, tmp_path):
        serving.save_environment(tmp_path, dataset.spec, taxonomy)
        serving.save_checkpoint(f32_model, tmp_path / "ranker",
                                "adv-hsc-moe")          # no quantize=True
        registry = ModelRegistry()
        assert registry.reload_from_directory(tmp_path, dataset.spec,
                                              taxonomy, quantized=True) == []
        quarantined = registry.quarantined()
        assert "ranker" in quarantined
        assert "quantize=True" in quarantined["ranker"]["reason"]

    def test_torn_quant_artifact_quarantines_and_keeps_last_good(
            self, f32_model, dataset, taxonomy, batch, tmp_path):
        serving.save_environment(tmp_path, dataset.spec, taxonomy)
        serving.save_checkpoint(f32_model, tmp_path / "ranker",
                                "adv-hsc-moe", quantize=True,
                                calibration_batch=batch)
        registry = ModelRegistry()
        first = registry.reload_from_directory(tmp_path, dataset.spec,
                                               taxonomy, quantized=True)
        assert len(first) == 1
        FaultInjector().tear_file(tmp_path / "ranker.quant.npz")
        assert registry.reload_from_directory(tmp_path, dataset.spec,
                                              taxonomy, quantized=True) == []
        assert "CheckpointCorrupted" in \
            registry.quarantined()["ranker"]["reason"]
        # v1 still serves.
        assert registry.latest_version("ranker") == 1
        registry.get("ranker").score(batch)
        # Repair: rewriting good bytes rolls forward to v2.
        serving.save_checkpoint(f32_model, tmp_path / "ranker",
                                "adv-hsc-moe", quantize=True,
                                calibration_batch=batch)
        repaired = registry.reload_from_directory(tmp_path, dataset.spec,
                                                  taxonomy, quantized=True)
        # Same logical weights, but int8 bytes are freshly serialized; the
        # fingerprint decides.  Either a clean repair (same bytes → clear
        # quarantine) or a new version is acceptable; the quarantine must
        # be gone and the registry serving.
        assert registry.quarantined() == {}
        assert repaired == [] or repaired[0].version == 1


class TestQuantizedWeightStore:
    def test_store_and_mmap_round_trip(self, quant_dir, dataset, taxonomy,
                                       batch):
        store = ensure_weight_store(quant_dir / "ranker", quantized=True)
        assert store.name.endswith(".qweights")
        manifest = json.loads((store / "manifest.json").read_text())
        assert manifest["quantized"] is True
        shared = load_model_shared(quant_dir / "ranker", dataset.spec,
                                   taxonomy, quantized=True)
        assert is_quantized_serving(shared)
        reference = load_model_quantized(quant_dir / "ranker", dataset.spec,
                                         taxonomy)
        np.testing.assert_array_equal(shared.score(batch),
                                      reference.score(batch))

    def test_idempotent(self, quant_dir):
        store = ensure_weight_store(quant_dir / "ranker", quantized=True)
        assert ensure_weight_store(quant_dir / "ranker",
                                   quantized=True) == store


class TestQuantizedProcessScorers:
    def test_in_process_vs_process_shards_byte_identical(
            self, quant_dir, dataset, taxonomy, batch):
        """The ISSUE acceptance bar: the same quantized checkpoint must
        score byte-identically in-process and across scorer processes."""
        reference = load_model_quantized(quant_dir / "ranker", dataset.spec,
                                         taxonomy).score(batch)
        with ProcessScorerHost(quant_dir / "ranker", quant_dir,
                               processes=2, quantized=True) as host:
            for _ in range(host.processes):     # round-robin hits them all
                np.testing.assert_array_equal(host.make_scorer()(batch),
                                              reference)


class TestQuantizedGateway:
    @pytest.fixture(scope="class")
    def gateway_dir(self, f32_model, dataset, taxonomy, log, batch,
                    tmp_path_factory):
        from repro.querycat import (QueryCategoryClassifier,
                                    QueryClassifierConfig)
        directory = tmp_path_factory.mktemp("quantized-gateway")
        serving.save_environment(directory, dataset.spec, taxonomy)
        serving.save_checkpoint(f32_model, directory / "ranker",
                                "adv-hsc-moe", quantize=True,
                                calibration_batch=batch)
        classifier = QueryCategoryClassifier(
            log.queries.vocab_size, taxonomy.max_sc_id() + 1,
            QueryClassifierConfig(embedding_dim=8, hidden_size=10))
        serving.save_classifier_checkpoint(classifier, directory / "querycat")
        return directory

    def _rank_payload(self, dataset, rows=8, seed=11):
        rng = np.random.default_rng(seed)
        batch = dataset.batch(rng.integers(0, len(dataset), size=rows))
        numeric = batch.numeric
        sparse = {name: ids for name, ids in batch.sparse.items()}
        return numeric, sparse

    def test_quantized_gateway_serves_and_reports_lane(self, gateway_dir,
                                                       dataset, f32_model):
        from repro.serving.client import ServingClient
        from repro.serving.server import serve_from_directory
        numeric, sparse = self._rank_payload(dataset)
        server = serve_from_directory(gateway_dir, host="127.0.0.1", port=0,
                                      quantized=True, cache_entries=0)
        server.start()
        try:
            client = ServingClient(f"http://{server.host}:{server.port}")
            result = client.rank(numeric, sparse, top_k=8)
            assert result["scores"].shape == (8,)
            stats = client.stats()
            scorers = stats["scorers"]
            assert scorers and all(s["quantized"] for s in scorers.values())
            # Parity against direct f32 scoring within the pinned bound.
            meta = json.loads((gateway_dir / "ranker.json").read_text())
            bound = meta["quantization"]["calibration"][
                "max_abs_score_delta"]
            batch = serving.candidate_batch(numeric, sparse)
            reference = np.asarray(f32_model.score(batch),
                                   dtype=np.float64)
            reference = np.sort(reference)[::-1][:8]
            got = np.sort(np.asarray(result["scores"]))[::-1]
            assert np.abs(got - reference).max() <= bound + 1e-7
        finally:
            server.close()

    def test_f32_gateway_reports_unquantized_lane(self, gateway_dir,
                                                  dataset):
        from repro.serving.client import ServingClient
        from repro.serving.server import serve_from_directory
        numeric, sparse = self._rank_payload(dataset)
        server = serve_from_directory(gateway_dir, host="127.0.0.1", port=0,
                                      cache_entries=0)
        server.start()
        try:
            client = ServingClient(f"http://{server.host}:{server.port}")
            client.rank(numeric, sparse, top_k=4)
            scorers = client.stats()["scorers"]
            assert scorers and not any(s["quantized"]
                                       for s in scorers.values())
        finally:
            server.close()


class TestQuantizedQuality:
    def test_ndcg_auc_delta_within_tenth_percent_at_default_scale(
            self, tmp_path):
        """ISSUE acceptance: NDCG/AUC delta ≤ 0.1% (relative) vs f32 on the
        paper experiment at DEFAULT scale."""
        from repro.experiments.common import (DEFAULT, build_environment,
                                              train_and_eval)
        from repro.training.trainer import evaluate
        env = build_environment(DEFAULT)
        metrics, model = train_and_eval("adv-hsc-moe", env, DEFAULT,
                                        return_model=True)
        serving.save_checkpoint(
            model, tmp_path / "ranker", "adv-hsc-moe", quantize=True,
            calibration_batch=env.test.batch(np.arange(128)))
        qmodel = load_model_quantized(tmp_path / "ranker", env.dataset.spec,
                                      env.taxonomy)
        qmetrics = evaluate(qmodel, env.test)
        for key in ("auc", "ndcg", "ndcg@10"):
            delta = abs(qmetrics[key] - metrics[key]) / max(metrics[key],
                                                            1e-12)
            assert delta <= 1e-3, (key, metrics[key], qmetrics[key])
