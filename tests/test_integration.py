"""End-to-end integration tests spanning every subsystem.

These walk the full pipeline the README advertises: world → log → dataset →
model → training → evaluation → analysis → checkpointing, at a tiny scale.
"""

import numpy as np
import pytest

from repro.analysis import analyze_gate_clustering, pick_case_session, run_case_study
from repro.data import (LogConfig, WorldConfig, SyntheticWorld, dataset_from_log,
                        simulate_log, train_test_split)
from repro.hierarchy import random_taxonomy
from repro.models import ModelConfig, build_model, extract_dedicated_model
from repro.querycat import QueryCategoryClassifier, QueryClassifierConfig, train_classifier
from repro.training import TrainConfig, Trainer, evaluate
from repro.utils import load_model, save_checkpoint


@pytest.fixture(scope="module")
def pipeline():
    """A fully trained combined model on a fresh random taxonomy."""
    rng = np.random.default_rng(99)
    taxonomy = random_taxonomy(num_top=8, subs_per_top=(2, 4), rng=rng)
    world = SyntheticWorld.generate(taxonomy, WorldConfig(seed=11))
    log = simulate_log(world, LogConfig(seed=12, num_queries=500))
    dataset = dataset_from_log(log)
    train, test = train_test_split(dataset, seed=13)
    config = ModelConfig(embedding_dim=4, hidden_sizes=(10,), num_experts=6,
                         top_k=2, num_disagreeing=1, seed=0)
    model = build_model("adv-hsc-moe", dataset.spec, taxonomy, config,
                        train_dataset=train)
    trainer = Trainer(model, TrainConfig(epochs=3, batch_size=256,
                                         learning_rate=3e-3))
    result = trainer.fit(train, eval_dataset=test)
    return dict(taxonomy=taxonomy, world=world, log=log, dataset=dataset,
                train=train, test=test, model=model, result=result,
                config=config)


class TestFullPipeline:
    def test_model_learns_on_random_taxonomy(self, pipeline):
        """The system is not tied to the hand-written taxonomy."""
        assert pipeline["result"].final_auc > 0.6

    def test_metrics_consistent(self, pipeline):
        metrics = evaluate(pipeline["model"], pipeline["test"])
        assert metrics["auc"] == pytest.approx(pipeline["result"].final_auc)

    def test_analysis_runs_on_trained_model(self, pipeline):
        analysis = analyze_gate_clustering(pipeline["model"], pipeline["test"],
                                           max_examples=60, run_tsne=False)
        assert np.isfinite(analysis.silhouette_gate)

    def test_case_study_on_trained_model(self, pipeline):
        rows = pick_case_session(pipeline["test"], num_negatives=1, seed=0)
        case = run_case_study(pipeline["model"], pipeline["test"], rows)
        assert len(case.items) == 2

    def test_extraction_from_trained_model(self, pipeline):
        sc = int(pipeline["train"].query_sc[0])
        dedicated = extract_dedicated_model(pipeline["model"], sc, pipeline["train"])
        rows = np.flatnonzero(pipeline["test"].query_sc == sc)
        if rows.size:
            batch = pipeline["test"].batch(rows[:10])
            np.testing.assert_allclose(dedicated.predict(batch),
                                       pipeline["model"].predict(batch), atol=1e-10)

    def test_checkpoint_roundtrip_preserves_metrics(self, pipeline, tmp_path):
        save_checkpoint(pipeline["model"], tmp_path / "model",
                        model_name="adv-hsc-moe")
        restored = load_model(tmp_path / "model", pipeline["dataset"].spec,
                              pipeline["taxonomy"], train_dataset=pipeline["train"])
        original = evaluate(pipeline["model"], pipeline["test"])["auc"]
        assert evaluate(restored, pipeline["test"])["auc"] == pytest.approx(original)

    def test_query_classifier_feeds_gate_ids(self, pipeline):
        """§4.1 end to end: classify query text, route through the gate."""
        queries = pipeline["log"].queries
        taxonomy = pipeline["taxonomy"]
        classifier = QueryCategoryClassifier(
            queries.vocab_size, taxonomy.max_sc_id() + 1,
            QueryClassifierConfig(embedding_dim=8, hidden_size=8, epochs=2))
        outcome = train_classifier(classifier, queries, taxonomy)
        assert outcome.sc_accuracy >= 0.0
        predicted = classifier.predict_sc(queries.tokens[:4], queries.lengths[:4])
        parents = taxonomy.parents_of(predicted)
        assert parents.shape == (4,)

    def test_training_is_deterministic_end_to_end(self, pipeline):
        config = pipeline["config"]
        def run():
            model = build_model("adv-hsc-moe", pipeline["dataset"].spec,
                                pipeline["taxonomy"], config,
                                train_dataset=pipeline["train"])
            Trainer(model, TrainConfig(epochs=1, batch_size=512,
                                       learning_rate=3e-3, seed=5)).fit(pipeline["train"])
            return model.predict(pipeline["test"].batch(np.arange(20)))
        np.testing.assert_allclose(run(), run())
