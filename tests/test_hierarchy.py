"""Tests for the category taxonomy (paper Figure 1 / Table 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hierarchy import (SEMANTIC_GROUPS, SubCategory, Taxonomy, TopCategory,
                             default_taxonomy, random_taxonomy)


class TestTaxonomyConstruction:
    def test_duplicate_tc_rejected(self):
        with pytest.raises(ValueError):
            Taxonomy(top_categories=[TopCategory(0, "A"), TopCategory(0, "B")],
                     sub_categories=[])

    def test_duplicate_sc_rejected(self):
        tops = [TopCategory(0, "A")]
        subs = [SubCategory(0, "x", 0), SubCategory(0, "y", 0)]
        with pytest.raises(ValueError):
            Taxonomy(top_categories=tops, sub_categories=subs)

    def test_orphan_sc_rejected(self):
        with pytest.raises(ValueError):
            Taxonomy(top_categories=[TopCategory(0, "A")],
                     sub_categories=[SubCategory(0, "x", 99)])

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            Taxonomy(top_categories=[TopCategory(-1, "A")], sub_categories=[])


class TestDefaultTaxonomy:
    def test_contains_paper_categories(self):
        taxonomy = default_taxonomy()
        names = {tc.name for tc in taxonomy.top_categories}
        for paper_name in ("Clothing", "Sports", "Foods", "Computer",
                           "Electronics", "Mobile Phone", "Books"):
            assert paper_name in names

    def test_semantic_groups_match_table4(self):
        taxonomy = default_taxonomy()
        groups = taxonomy.semantic_groups()
        assert set(groups) == set(SEMANTIC_GROUPS)
        by_name = {tc.name: tc.semantic_group for tc in taxonomy.top_categories}
        assert by_name["Mobile Phone"] == "electronics"
        assert by_name["Clothing"] == "fashion"
        assert by_name["Foods"] == "daily_necessities"

    def test_every_tc_has_children(self):
        taxonomy = default_taxonomy()
        for tc in taxonomy.top_categories:
            assert len(taxonomy.children_of(tc.tc_id)) >= 2

    def test_sc_ids_dense(self):
        taxonomy = default_taxonomy()
        ids = sorted(sc.sc_id for sc in taxonomy.sub_categories)
        assert ids == list(range(len(ids)))

    def test_describe_mentions_counts(self):
        text = default_taxonomy().describe()
        assert "top categories" in text


class TestLookups:
    @pytest.fixture()
    def taxonomy(self):
        return default_taxonomy()

    def test_parent_of(self, taxonomy):
        sc = taxonomy.sub_categories[0]
        assert taxonomy.parent_of(sc.sc_id) == sc.tc_id

    def test_parents_of_vectorized(self, taxonomy):
        sc_ids = np.array([s.sc_id for s in taxonomy.sub_categories])
        parents = taxonomy.parents_of(sc_ids)
        expected = np.array([s.tc_id for s in taxonomy.sub_categories])
        np.testing.assert_array_equal(parents, expected)

    def test_parents_of_unknown_raises(self, taxonomy):
        with pytest.raises(KeyError):
            taxonomy.parents_of(np.array([taxonomy.max_sc_id() + 500]))

    def test_siblings_exclude_self(self, taxonomy):
        sc = taxonomy.sub_categories[0]
        siblings = taxonomy.siblings_of(sc.sc_id)
        assert sc.sc_id not in siblings
        assert all(taxonomy.parent_of(s) == sc.tc_id for s in siblings)

    def test_children_roundtrip(self, taxonomy):
        for tc in taxonomy.top_categories:
            for child in taxonomy.children_of(tc.tc_id):
                assert taxonomy.parent_of(child) == tc.tc_id

    def test_semantic_group_of(self, taxonomy):
        for tc in taxonomy.top_categories:
            assert taxonomy.semantic_group_of(tc.tc_id) == tc.semantic_group

    def test_max_ids(self, taxonomy):
        assert taxonomy.max_sc_id() == max(s.sc_id for s in taxonomy.sub_categories)
        assert taxonomy.max_tc_id() == max(t.tc_id for t in taxonomy.top_categories)


class TestRandomTaxonomy:
    def test_respects_bounds(self):
        rng = np.random.default_rng(0)
        taxonomy = random_taxonomy(num_top=12, subs_per_top=(2, 5), rng=rng)
        assert taxonomy.num_top_categories == 12
        for tc in taxonomy.top_categories:
            assert 2 <= len(taxonomy.children_of(tc.tc_id)) <= 5

    def test_invalid_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_taxonomy(0, (1, 2), rng)
        with pytest.raises(ValueError):
            random_taxonomy(3, (2, 1), rng)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 20), st.integers(1, 4), st.integers(0, 3), st.integers(0, 1000))
    def test_property_tree_invariants(self, num_top, low, extra, seed):
        """Every SC has exactly one parent; children partition the SC set."""
        rng = np.random.default_rng(seed)
        taxonomy = random_taxonomy(num_top, (low, low + extra), rng)
        all_children = [c for tc in taxonomy.top_categories
                        for c in taxonomy.children_of(tc.tc_id)]
        assert sorted(all_children) == sorted(s.sc_id for s in taxonomy.sub_categories)
        assert len(set(all_children)) == len(all_children)
