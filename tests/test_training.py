"""Tests for the Trainer, evaluation, and grid search."""

import numpy as np
import pytest

from repro.models import DNNRanker, ModelConfig
from repro.training import (GridPoint, TrainConfig, Trainer, evaluate,
                            grid_search, lambda_grid, predict_dataset)


@pytest.fixture()
def small_train(train_dataset):
    return train_dataset.subset(np.arange(min(2000, len(train_dataset))))


@pytest.fixture()
def small_test(test_dataset):
    return test_dataset


class TestTrainConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(optimizer="rmsprop")


class TestTrainer:
    def test_loss_decreases(self, small_train, tiny_model_config):
        model = DNNRanker(small_train.spec, tiny_model_config)
        trainer = Trainer(model, TrainConfig(epochs=3, batch_size=256,
                                             learning_rate=3e-3))
        result = trainer.fit(small_train)
        losses = [r.train_loss for r in result.history]
        assert losses[-1] < losses[0]

    def test_history_records_eval(self, small_train, small_test, tiny_model_config):
        model = DNNRanker(small_train.spec, tiny_model_config)
        trainer = Trainer(model, TrainConfig(epochs=2, batch_size=512,
                                             learning_rate=3e-3))
        result = trainer.fit(small_train, eval_dataset=small_test)
        assert len(result.history) == 2
        assert all(r.eval_auc is not None for r in result.history)
        assert result.final_auc == result.history[-1].eval_auc
        assert result.best_auc >= result.final_auc - 1e-12

    def test_learns_better_than_chance(self, train_dataset, small_test, tiny_model_config):
        model = DNNRanker(train_dataset.spec, tiny_model_config)
        trainer = Trainer(model, TrainConfig(epochs=6, batch_size=256,
                                             learning_rate=3e-3))
        result = trainer.fit(train_dataset, eval_dataset=small_test)
        assert result.final_auc > 0.65

    def test_final_eval_without_per_epoch(self, small_train, small_test, tiny_model_config):
        model = DNNRanker(small_train.spec, tiny_model_config)
        config = TrainConfig(epochs=2, batch_size=512, learning_rate=3e-3,
                             eval_every_epoch=False)
        result = Trainer(model, config).fit(small_train, eval_dataset=small_test)
        assert result.final_auc is not None
        assert result.history[0].eval_auc is None

    def test_optimizer_choices(self, small_train, tiny_model_config):
        for optimizer in ("adamw", "adam", "sgd"):
            model = DNNRanker(small_train.spec, tiny_model_config)
            trainer = Trainer(model, TrainConfig(epochs=1, batch_size=1024,
                                                 learning_rate=1e-3,
                                                 optimizer=optimizer))
            result = trainer.fit(small_train)
            assert np.isfinite(result.history[0].train_loss)

    def test_deterministic_given_seed(self, small_train, tiny_model_config):
        def run():
            model = DNNRanker(small_train.spec, tiny_model_config)
            trainer = Trainer(model, TrainConfig(epochs=1, batch_size=512,
                                                 learning_rate=1e-3, seed=11))
            trainer.fit(small_train)
            return model.state_dict()
        a, b = run(), run()
        for key in a:
            np.testing.assert_allclose(a[key], b[key])


class TestEvaluate:
    def test_metric_keys(self, small_train, small_test, tiny_model_config):
        model = DNNRanker(small_train.spec, tiny_model_config)
        metrics = evaluate(model, small_test, ndcg_k=10)
        assert set(metrics) == {"auc", "ndcg", "ndcg@10"}
        assert all(0.0 <= v <= 1.0 for v in metrics.values())

    def test_predict_dataset_batched_matches_full(self, small_test, tiny_model_config):
        model = DNNRanker(small_test.spec, tiny_model_config)
        batched = predict_dataset(model, small_test, batch_size=100)
        full = model.predict(small_test.full_batch())
        np.testing.assert_allclose(batched, full, atol=1e-12)


class TestGridSearch:
    def test_lambda_grid_powers_of_ten(self):
        assert lambda_grid(-3, -1) == [1e-3, 1e-2, 1e-1]
        with pytest.raises(ValueError):
            lambda_grid(-1, -3)

    def test_grid_runs_all_points(self, small_train, small_test, tiny_model_config):
        calls = []

        def build(params):
            calls.append(params)
            return DNNRanker(small_train.spec,
                             tiny_model_config.with_updates(**params))
        results = grid_search({"embedding_dim": [2, 4]}, build,
                              small_train, small_test,
                              TrainConfig(epochs=1, batch_size=1024,
                                          learning_rate=3e-3))
        assert len(results) == 2
        assert all(isinstance(r, GridPoint) for r in results)
        assert calls == [{"embedding_dim": 2}, {"embedding_dim": 4}]

    def test_infeasible_points_skipped(self, small_train, small_test, tiny_model_config):
        def build(params):
            if params["num_experts"] < 4:
                raise ValueError("infeasible")
            return DNNRanker(small_train.spec, tiny_model_config)
        results = grid_search({"num_experts": [2, 6]}, build,
                              small_train, small_test,
                              TrainConfig(epochs=1, batch_size=1024,
                                          learning_rate=3e-3))
        assert len(results) == 1
        assert results[0].params == {"num_experts": 6}
