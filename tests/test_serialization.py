"""Tests for model checkpointing (save/load roundtrips)."""

import numpy as np
import pytest

from repro.models import build_model
from repro.utils import load_checkpoint, load_model, save_checkpoint


@pytest.fixture()
def batch(test_dataset):
    return test_dataset.batch(np.arange(32))


class TestRoundtrip:
    @pytest.mark.parametrize("name", ["dnn", "adv-hsc-moe", "4-mmoe"])
    def test_predictions_identical_after_reload(self, name, train_dataset,
                                                taxonomy, tiny_model_config,
                                                batch, tmp_path):
        model = build_model(name, train_dataset.spec, taxonomy,
                            tiny_model_config, train_dataset=train_dataset)
        before = model.predict(batch)
        save_checkpoint(model, tmp_path / "ckpt", model_name=name)
        restored = load_model(tmp_path / "ckpt", train_dataset.spec, taxonomy,
                              train_dataset=train_dataset)
        np.testing.assert_allclose(restored.predict(batch), before, atol=1e-12)

    def test_config_restored(self, train_dataset, taxonomy, tiny_model_config, tmp_path):
        model = build_model("moe", train_dataset.spec, taxonomy, tiny_model_config)
        save_checkpoint(model, tmp_path / "m", model_name="moe")
        restored = load_model(tmp_path / "m", train_dataset.spec, taxonomy)
        assert restored.config == tiny_model_config

    def test_extra_metadata_persisted(self, train_dataset, taxonomy,
                                      tiny_model_config, tmp_path):
        model = build_model("dnn", train_dataset.spec, taxonomy, tiny_model_config)
        save_checkpoint(model, tmp_path / "m", model_name="dnn",
                        extra={"auc": 0.82})
        _, meta = load_checkpoint(tmp_path / "m")
        assert meta["extra"]["auc"] == 0.82
        assert meta["model_name"] == "dnn"

    def test_mmoe_bucket_assignment_persisted(self, train_dataset, taxonomy,
                                              tiny_model_config, tmp_path, batch):
        model = build_model("4-mmoe", train_dataset.spec, taxonomy,
                            tiny_model_config, train_dataset=train_dataset)
        save_checkpoint(model, tmp_path / "m", model_name="4-mmoe")
        # Reload WITHOUT the training dataset: routing must still match
        # because bucket assignment travels in the checkpoint.
        restored = load_model(tmp_path / "m", train_dataset.spec, taxonomy)
        assert restored.bucket_assignment == model.bucket_assignment
        np.testing.assert_allclose(restored.predict(batch), model.predict(batch))


class TestErrors:
    def test_missing_checkpoint(self, train_dataset, taxonomy, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nope")

    def test_partial_checkpoint(self, train_dataset, taxonomy, tiny_model_config,
                                tmp_path):
        model = build_model("dnn", train_dataset.spec, taxonomy, tiny_model_config)
        save_checkpoint(model, tmp_path / "m", model_name="dnn")
        (tmp_path / "m.json").unlink()
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "m")

    def test_version_check(self, train_dataset, taxonomy, tiny_model_config, tmp_path):
        import json
        model = build_model("dnn", train_dataset.spec, taxonomy, tiny_model_config)
        save_checkpoint(model, tmp_path / "m", model_name="dnn")
        meta = json.loads((tmp_path / "m.json").read_text())
        meta["format_version"] = 999
        (tmp_path / "m.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError):
            load_checkpoint(tmp_path / "m")
