"""Shared fixtures: a small synthetic world/log reused across test modules.

Session-scoped so the (cheap but not free) generation happens once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (LogConfig, WorldConfig, SyntheticWorld, dataset_from_log,
                        simulate_log, train_test_split)
from repro.hierarchy import default_taxonomy
from repro.models import ModelConfig


@pytest.fixture(scope="session")
def taxonomy():
    return default_taxonomy()


@pytest.fixture(scope="session")
def world(taxonomy):
    return SyntheticWorld.generate(taxonomy, WorldConfig(seed=0))


@pytest.fixture(scope="session")
def log(world):
    return simulate_log(world, LogConfig(seed=1, num_queries=600))


@pytest.fixture(scope="session")
def dataset(log):
    return dataset_from_log(log)


@pytest.fixture(scope="session")
def splits(dataset):
    return train_test_split(dataset, test_fraction=0.25, seed=3)


@pytest.fixture(scope="session")
def train_dataset(splits):
    return splits[0]


@pytest.fixture(scope="session")
def test_dataset(splits):
    return splits[1]


@pytest.fixture(scope="session")
def tiny_model_config():
    """Small but structurally faithful model config for fast tests."""
    return ModelConfig(embedding_dim=4, hidden_sizes=(8,), num_experts=6,
                       top_k=2, num_disagreeing=1, seed=0)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
