"""Tests for the BiGRU query→category classifier (§4.1)."""

import numpy as np
import pytest

from repro.querycat import (QueryCategoryClassifier, QueryClassifierConfig,
                            train_classifier)


@pytest.fixture()
def config():
    return QueryClassifierConfig(embedding_dim=8, hidden_size=10, epochs=2,
                                 batch_size=64, learning_rate=5e-3, seed=0)


class TestClassifierModel:
    def test_logit_shape(self, log, config):
        queries = log.queries
        model = QueryCategoryClassifier(queries.vocab_size, 68, config)
        logits = model(queries.tokens[:16], queries.lengths[:16])
        assert logits.shape == (16, 68)

    def test_predict_sc_in_range(self, log, config):
        queries = log.queries
        model = QueryCategoryClassifier(queries.vocab_size, 68, config)
        predictions = model.predict_sc(queries.tokens[:32], queries.lengths[:32])
        assert predictions.min() >= 0 and predictions.max() < 68

    def test_predict_tc_via_hierarchy(self, log, taxonomy, config):
        """§4.1: TC follows from predicted SC through the tree."""
        queries = log.queries
        model = QueryCategoryClassifier(queries.vocab_size,
                                        taxonomy.max_sc_id() + 1, config)
        sc = model.predict_sc(queries.tokens[:16], queries.lengths[:16])
        tc = model.predict_tc(queries.tokens[:16], queries.lengths[:16], taxonomy)
        np.testing.assert_array_equal(tc, taxonomy.parents_of(sc))

    def test_padding_does_not_change_prediction(self, log, taxonomy, config):
        queries = log.queries
        model = QueryCategoryClassifier(queries.vocab_size,
                                        taxonomy.max_sc_id() + 1, config)
        tokens = queries.tokens[:4].copy()
        lengths = queries.lengths[:4]
        clean = model.predict_sc(tokens, lengths)
        corrupted = tokens.copy()
        for i, length in enumerate(lengths):
            corrupted[i, length:] = 3  # garbage in padding
        np.testing.assert_array_equal(model.predict_sc(corrupted, lengths), clean)


class TestLengthBucketing:
    def test_bucketed_batches_cover_all_rows_once(self, log, config):
        """Bucketing reorders rows into length-homogeneous batches but must
        keep the epoch an exact partition of the training rows."""
        from repro.querycat.classifier import _epoch_batches
        rng = np.random.default_rng(0)
        lengths = np.ascontiguousarray(log.queries.lengths, dtype=np.int64)
        rows = rng.permutation(len(lengths))[:300]
        batches = list(_epoch_batches(rows, lengths, config, rng))
        seen = np.concatenate(batches)
        assert sorted(seen.tolist()) == sorted(rows.tolist())
        assert all(len(b) <= config.batch_size for b in batches)
        # Sorted slicing makes each batch a narrow length band on average.
        spans = [lengths[b].max() - lengths[b].min() for b in batches]
        assert np.mean(spans) <= lengths[rows].max() - lengths[rows].min()

    def test_unbucketed_batches_are_contiguous_slices(self, log, config):
        from repro.querycat.classifier import _epoch_batches
        config_off = QueryClassifierConfig(**{**config.__dict__,
                                              "bucket_by_length": False})
        rng = np.random.default_rng(0)
        lengths = np.ascontiguousarray(log.queries.lengths, dtype=np.int64)
        rows = np.arange(200)
        batches = list(_epoch_batches(rows, lengths, config_off, rng))
        np.testing.assert_array_equal(np.concatenate(batches), rows)

    def test_bucketed_training_reaches_same_quality(self, log, taxonomy, config):
        """Trimmed, length-bucketed epochs must not cost accuracy."""
        queries = log.queries
        model = QueryCategoryClassifier(queries.vocab_size,
                                        taxonomy.max_sc_id() + 1, config)
        result = train_classifier(model, queries, taxonomy)
        assert config.bucket_by_length  # default on
        assert result.sc_accuracy > 3.0 / 68
        assert result.history[-1] < result.history[0]

    def test_bucketed_training_hits_packed_fast_path(self, log, taxonomy,
                                                     config):
        """Regression: bucketed batches are (near-)sorted by length, so the
        packed GRU scan's argsort must early-exit on (nearly) every ragged
        batch — bucketing and packing compose instead of fighting."""
        from repro.nn import functional as F
        from repro.querycat.classifier import _epoch_batches
        queries = log.queries
        model = QueryCategoryClassifier(queries.vocab_size,
                                        taxonomy.max_sc_id() + 1, config)
        rng = np.random.default_rng(0)
        tokens = np.ascontiguousarray(queries.tokens, dtype=np.int64)
        lengths = np.ascontiguousarray(queries.lengths, dtype=np.int64)
        rows = rng.permutation(queries.num_queries)
        F.reset_packed_scan_counters()
        for batch_rows in _epoch_batches(rows, lengths, config, rng):
            batch_lengths = lengths[batch_rows]
            batch_tokens = tokens[batch_rows][:, :int(batch_lengths.max())]
            model(batch_tokens, batch_lengths)
        counters = dict(F.packed_scan_counters)
        F.reset_packed_scan_counters()
        # Ragged batches exist in the synthetic log, so the packed scan ran;
        # bucketed batches are contiguous slices of the length-sorted rows —
        # non-decreasing by construction — so the argsort lane stays cold.
        assert counters["calls"] > 0
        assert counters["presorted"] == counters["calls"]
        assert counters["argsort"] == 0


class TestTraining:
    def test_beats_chance_quickly(self, log, taxonomy, config):
        """Even 2 epochs on 600 queries should beat 1/68 chance by a wide
        margin thanks to category-specific tokens."""
        queries = log.queries
        model = QueryCategoryClassifier(queries.vocab_size,
                                        taxonomy.max_sc_id() + 1, config)
        result = train_classifier(model, queries, taxonomy)
        assert result.sc_accuracy > 3.0 / 68
        assert result.tc_accuracy >= result.sc_accuracy
        assert len(result.history) == config.epochs

    def test_loss_decreases(self, log, taxonomy, config):
        queries = log.queries
        model = QueryCategoryClassifier(queries.vocab_size,
                                        taxonomy.max_sc_id() + 1, config)
        result = train_classifier(model, queries, taxonomy)
        assert result.history[-1] < result.history[0]
