"""Tests for NDCG / NDCG@k."""

import numpy as np
import pytest

from repro.metrics import dcg, ndcg, session_ndcg


class TestDCG:
    def test_single_relevant_at_top(self):
        assert dcg(np.array([1.0, 0.0, 0.0])) == pytest.approx(1.0)

    def test_position_discount(self):
        assert dcg(np.array([0.0, 1.0])) == pytest.approx(1.0 / np.log2(3))

    def test_cutoff(self):
        assert dcg(np.array([0.0, 0.0, 1.0]), k=2) == 0.0

    def test_empty(self):
        assert dcg(np.array([])) == 0.0

    def test_graded_gains(self):
        assert dcg(np.array([2.0])) == pytest.approx(3.0)  # 2^2 - 1


class TestNDCG:
    def test_perfect_ranking_is_one(self):
        assert ndcg(np.array([0.9, 0.5, 0.1]), np.array([1, 0, 0])) == pytest.approx(1.0)

    def test_worst_ranking(self):
        value = ndcg(np.array([0.1, 0.5, 0.9]), np.array([1, 0, 0]))
        assert value == pytest.approx(1.0 / np.log2(4))

    def test_no_relevant_returns_none(self):
        assert ndcg(np.array([0.5, 0.1]), np.array([0, 0])) is None

    def test_at_k_ignores_tail(self):
        scores = np.array([0.9, 0.8, 0.1])
        labels = np.array([0, 0, 1])
        assert ndcg(scores, labels, k=2) == 0.0
        assert ndcg(scores, labels) > 0.0

    def test_bounded_in_unit_interval(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            scores = rng.normal(size=8)
            labels = rng.integers(0, 2, size=8)
            if labels.sum() == 0:
                continue
            value = ndcg(scores, labels)
            assert 0.0 <= value <= 1.0


class TestSessionNDCG:
    def test_averages(self):
        scores = np.array([0.9, 0.1, 0.1, 0.9])
        labels = np.array([1, 0, 1, 0])
        sessions = np.array([0, 0, 1, 1])
        expected = (1.0 + 1.0 / np.log2(3)) / 2
        assert session_ndcg(scores, labels, sessions) == pytest.approx(expected)

    def test_skips_sessions_without_purchase(self):
        scores = np.array([0.9, 0.1, 0.5])
        labels = np.array([1, 0, 0])
        sessions = np.array([0, 0, 1])
        assert session_ndcg(scores, labels, sessions) == 1.0

    def test_raises_without_any_purchase(self):
        with pytest.raises(ValueError):
            session_ndcg(np.array([0.5]), np.array([0]), np.array([0]))

    def test_ndcg_at_10_le_ndcg_on_log(self, log):
        """With binary labels and one positive, NDCG@10 <= NDCG (cutting the
        list can only drop the positive)."""
        rng = np.random.default_rng(1)
        scores = rng.normal(size=log.num_examples)
        full = session_ndcg(scores, log.labels, log.session_ids)
        at10 = session_ndcg(scores, log.labels, log.session_ids, k=10)
        assert at10 <= full + 1e-12
