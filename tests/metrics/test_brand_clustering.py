"""Tests for brand concentration (Fig. 3) and cluster quality metrics."""

import numpy as np
import pytest

from repro.metrics import (brand_concentration, concentration_by_category,
                           intra_inter_ratio, pairwise_distances, silhouette_score)


class TestBrandConcentration:
    def test_fully_concentrated(self):
        sales = {0: 100.0, 1: 1.0, 2: 1.0, 3: 1.0}
        result = brand_concentration(sales, share=0.8)
        assert result.brands_for_top_share == 1
        assert result.proportion == 0.25

    def test_uniform_market(self):
        sales = {i: 1.0 for i in range(10)}
        result = brand_concentration(sales, share=0.8)
        assert result.brands_for_top_share == 8

    def test_share_validation(self):
        with pytest.raises(ValueError):
            brand_concentration({0: 1.0}, share=1.5)

    def test_empty_map(self):
        with pytest.raises(ValueError):
            brand_concentration({})

    def test_zero_volume(self):
        with pytest.raises(ValueError):
            brand_concentration({0: 0.0})

    def test_by_category(self):
        sales = {0: {0: 100.0, 1: 1.0}, 1: {2: 1.0, 3: 1.0}}
        result = concentration_by_category(sales)
        assert result[0].proportion < result[1].proportion

    def test_planted_ordering_on_world(self, world, taxonomy):
        """Electronics market more concentrated than Sports (Fig. 3a)."""
        by_name = {tc.name: tc.tc_id for tc in taxonomy.top_categories}
        sales = world.brand_sales_by_tc()
        result = concentration_by_category(sales,
                                           total_brands=world.config.brands_per_tc)
        assert (result[by_name["Electronics"]].proportion
                < result[by_name["Sports"]].proportion)

    def test_total_brands_denominator(self):
        sales = {0: 10.0, 1: 1.0}
        default = brand_concentration(sales)
        widened = brand_concentration(sales, total_brands=10)
        assert widened.proportion < default.proportion
        with pytest.raises(ValueError):
            brand_concentration(sales, total_brands=1)


class TestPairwiseDistances:
    def test_symmetric_zero_diagonal(self):
        points = np.random.default_rng(0).normal(size=(10, 3))
        distances = pairwise_distances(points)
        np.testing.assert_allclose(distances, distances.T, atol=1e-12)
        np.testing.assert_allclose(np.diag(distances), 0.0, atol=1e-9)

    def test_matches_norm(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        distances = pairwise_distances(points)
        assert distances[0, 1] == pytest.approx(5.0)


class TestSilhouette:
    def test_well_separated_clusters_near_one(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 0.05, size=(20, 2))
        b = rng.normal(10, 0.05, size=(20, 2)) + np.array([10.0, 0.0])
        points = np.vstack([a, b])
        labels = np.r_[np.zeros(20), np.ones(20)]
        assert silhouette_score(points, labels) > 0.9

    def test_random_labels_near_zero(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(60, 2))
        labels = rng.integers(0, 2, size=60)
        assert abs(silhouette_score(points, labels)) < 0.2

    def test_requires_two_clusters(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((5, 2)), np.zeros(5))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((5, 2)), np.zeros(4))

    def test_singleton_cluster_contributes_zero(self):
        points = np.array([[0.0, 0.0], [10.0, 0.0], [10.1, 0.0]])
        labels = np.array([0, 1, 1])
        value = silhouette_score(points, labels)
        assert np.isfinite(value)


class TestIntraInter:
    def test_tight_clusters_low_ratio(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 0.01, size=(10, 2))
        b = rng.normal(5, 0.01, size=(10, 2))
        ratio = intra_inter_ratio(np.vstack([a, b]), np.r_[np.zeros(10), np.ones(10)])
        assert ratio < 0.1

    def test_identical_points_rejected(self):
        with pytest.raises(ValueError):
            intra_inter_ratio(np.zeros((4, 2)), np.array([0, 0, 1, 1]))

    def test_single_cluster_rejected(self):
        points = np.random.default_rng(0).normal(size=(4, 2))
        with pytest.raises(ValueError):
            intra_inter_ratio(points, np.zeros(4))
