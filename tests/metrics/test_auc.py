"""Tests for session AUC (paper §5.1.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import global_auc, iter_sessions, pairwise_auc, session_auc


class TestPairwiseAUC:
    def test_perfect_ranking(self):
        assert pairwise_auc(np.array([0.9, 0.1, 0.2]), np.array([1, 0, 0])) == 1.0

    def test_inverted_ranking(self):
        assert pairwise_auc(np.array([0.1, 0.9]), np.array([1, 0])) == 0.0

    def test_ties_count_half(self):
        assert pairwise_auc(np.array([0.5, 0.5]), np.array([1, 0])) == 0.5

    def test_single_class_returns_none(self):
        assert pairwise_auc(np.array([0.1, 0.2]), np.array([0, 0])) is None
        assert pairwise_auc(np.array([0.1, 0.2]), np.array([1, 1])) is None

    def test_matches_naive_pair_counting(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=30)
        labels = rng.integers(0, 2, size=30)
        positives = scores[labels == 1]
        negatives = scores[labels == 0]
        wins = (positives[:, None] > negatives[None, :]).sum()
        ties = (positives[:, None] == negatives[None, :]).sum()
        naive = (wins + 0.5 * ties) / (positives.size * negatives.size)
        assert pairwise_auc(scores, labels) == pytest.approx(naive)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_monotone_transform_invariant(self, seed):
        """AUC depends only on the score ordering."""
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=20)
        labels = np.r_[np.ones(5), np.zeros(15)].astype(int)
        rng.shuffle(labels)
        if labels.sum() in (0, 20):
            return
        a = pairwise_auc(scores, labels)
        b = pairwise_auc(np.exp(scores * 2), labels)
        assert a == pytest.approx(b)


class TestIterSessions:
    def test_groups_complete(self):
        sessions = np.array([2, 0, 1, 0, 2, 2])
        values = np.arange(6.0)
        seen = {}
        for sid, chunk in iter_sessions(sessions, values):
            seen[sid] = chunk
        assert set(seen) == {0, 1, 2}
        np.testing.assert_array_equal(np.sort(seen[2]), [0.0, 4.0, 5.0])

    def test_multiple_arrays_stay_aligned(self):
        sessions = np.array([1, 0, 1])
        a = np.array([10.0, 20.0, 30.0])
        b = np.array([1, 2, 3])
        for _, chunk_a, chunk_b in iter_sessions(sessions, a, b):
            np.testing.assert_array_equal(chunk_a / 10, chunk_b)


class TestSessionAUC:
    def test_averages_over_sessions(self):
        scores = np.array([0.9, 0.1, 0.1, 0.9])
        labels = np.array([1, 0, 1, 0])
        sessions = np.array([0, 0, 1, 1])
        assert session_auc(scores, labels, sessions) == pytest.approx(0.5)

    def test_skips_single_class_sessions(self):
        scores = np.array([0.9, 0.1, 0.5, 0.6])
        labels = np.array([1, 0, 0, 0])
        sessions = np.array([0, 0, 1, 1])
        assert session_auc(scores, labels, sessions) == 1.0

    def test_no_valid_session_raises(self):
        with pytest.raises(ValueError):
            session_auc(np.array([0.5]), np.array([0]), np.array([0]))

    def test_oracle_scores_on_real_log(self, log):
        auc = session_auc(log.true_utility, log.labels, log.session_ids)
        assert auc > 0.75

    def test_random_scores_near_half(self, log):
        rng = np.random.default_rng(0)
        auc = session_auc(rng.normal(size=log.num_examples), log.labels, log.session_ids)
        assert abs(auc - 0.5) < 0.05


class TestGlobalAUC:
    def test_value(self):
        assert global_auc(np.array([0.9, 0.8, 0.1]), np.array([1, 0, 0])) == 1.0

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            global_auc(np.array([0.5]), np.array([1]))
