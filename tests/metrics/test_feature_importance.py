"""Tests for FI(f) (paper eq. 1) and the Fig. 2 analysis helpers."""

import numpy as np
import pytest

from repro.metrics import (feature_importance, feature_importance_by_category,
                           importance_dispersion)


class TestFeatureImportance:
    def test_perfectly_predictive_feature(self):
        values = np.array([5.0, 1.0, 2.0, 9.0, 3.0, 4.0])
        labels = np.array([1, 0, 0, 1, 0, 0])
        sessions = np.array([0, 0, 0, 1, 1, 1])
        assert feature_importance(values, labels, sessions) == 1.0

    def test_anti_predictive_feature(self):
        values = np.array([1.0, 5.0])
        labels = np.array([1, 0])
        sessions = np.array([0, 0])
        assert feature_importance(values, labels, sessions) == 0.0

    def test_ties_are_not_wins(self):
        """Eq. 1 counts strict f_a > f_b only."""
        values = np.array([2.0, 2.0])
        labels = np.array([1, 0])
        sessions = np.array([0, 0])
        assert feature_importance(values, labels, sessions) == 0.0

    def test_skips_single_class_sessions(self):
        values = np.array([9.0, 1.0, 3.0, 4.0])
        labels = np.array([1, 0, 0, 0])
        sessions = np.array([0, 0, 1, 1])
        assert feature_importance(values, labels, sessions) == 1.0

    def test_raises_when_no_usable_session(self):
        with pytest.raises(ValueError):
            feature_importance(np.array([1.0]), np.array([0]), np.array([0]))

    def test_planted_weights_visible_in_fi(self, dataset, world, taxonomy):
        """In a comment-driven category, comments' FI should exceed what it
        gets in a sales-driven category (the Fig. 2 phenomenon end to end)."""
        by_name = {tc.name: tc.tc_id for tc in taxonomy.top_categories}
        table = feature_importance_by_category(
            dataset, level="tc",
            category_ids=[by_name["Clothing"], by_name["Electronics"]],
            min_sessions=3)
        if len(table) < 2:
            pytest.skip("tiny fixture log lacks sessions in a named category")
        clothing = table[by_name["Clothing"]]
        electronics = table[by_name["Electronics"]]
        assert (clothing["good_comments_ratio"] - electronics["good_comments_ratio"]
                > electronics["log_sales"] - clothing["log_sales"] - 1.0)


class TestByCategory:
    def test_returns_all_features(self, dataset):
        table = feature_importance_by_category(dataset, level="tc", min_sessions=3)
        assert table
        for per_feature in table.values():
            assert set(per_feature) <= set(dataset.spec.numeric_names)

    def test_sc_level(self, dataset):
        table = feature_importance_by_category(dataset, level="sc", min_sessions=3)
        assert table

    def test_invalid_level(self, dataset):
        with pytest.raises(ValueError):
            feature_importance_by_category(dataset, level="bogus")

    def test_min_sessions_filters(self, dataset):
        strict = feature_importance_by_category(dataset, level="sc", min_sessions=10_000)
        assert strict == {}


class TestDispersion:
    def test_std_computed_per_feature(self):
        table = {0: {"a": 0.5, "b": 0.9}, 1: {"a": 0.7, "b": 0.9}}
        dispersion = importance_dispersion(table)
        assert dispersion["a"] == pytest.approx(0.1)
        assert dispersion["b"] == pytest.approx(0.0)

    def test_singleton_features_dropped(self):
        table = {0: {"a": 0.5}}
        assert importance_dispersion(table) == {}
