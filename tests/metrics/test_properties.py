"""Property-based tests (hypothesis) on the metric invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (ndcg, pairwise_auc, session_auc, session_ndcg,
                           silhouette_score)


def random_session_data(seed, sessions=8, size=6):
    rng = np.random.default_rng(seed)
    session_ids = np.repeat(np.arange(sessions), size)
    scores = rng.normal(size=sessions * size)
    labels = np.zeros(sessions * size, dtype=np.int64)
    # one positive per session (like the simulator)
    for s in range(sessions):
        labels[s * size + rng.integers(size)] = 1
    return scores, labels, session_ids


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_auc_complement_symmetry(seed):
    """AUC(scores) + AUC(-scores) == 1 when there are no score ties."""
    rng = np.random.default_rng(seed)
    scores = rng.normal(size=30)
    labels = np.r_[np.ones(7), np.zeros(23)].astype(int)
    rng.shuffle(labels)
    forward = pairwise_auc(scores, labels)
    backward = pairwise_auc(-scores, labels)
    assert forward + backward == pytest.approx(1.0)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_session_metrics_bounded(seed):
    scores, labels, sessions = random_session_data(seed)
    auc = session_auc(scores, labels, sessions)
    ndcg_value = session_ndcg(scores, labels, sessions)
    assert 0.0 <= auc <= 1.0
    assert 0.0 <= ndcg_value <= 1.0


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_oracle_scores_maximize_both_metrics(seed):
    """Scoring by the labels themselves gives AUC = NDCG = 1."""
    _, labels, sessions = random_session_data(seed)
    scores = labels.astype(float)
    assert session_auc(scores, labels, sessions) == pytest.approx(1.0)
    assert session_ndcg(scores, labels, sessions) == pytest.approx(1.0)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_ndcg_monotone_in_positive_position(seed):
    """Moving the positive item up the ranking never decreases NDCG."""
    rng = np.random.default_rng(seed)
    n = 8
    labels = np.zeros(n, dtype=int)
    labels[0] = 1
    base = np.sort(rng.normal(size=n))[::-1].copy()
    values = []
    for position in range(n):
        scores = base.copy()
        order = np.argsort(-scores, kind="stable")
        item_scores = np.empty(n)
        # place the positive at `position` in the ranking
        permuted = np.roll(np.arange(n), 0)
        scores_for_items = np.empty(n)
        scores_for_items[0] = base[position]
        rest = np.delete(base, position)
        scores_for_items[1:] = rest
        values.append(ndcg(scores_for_items, labels))
    assert values == sorted(values, reverse=True)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.floats(0.5, 20.0))
def test_silhouette_improves_with_separation(seed, gap):
    """Pushing two blobs apart never hurts the silhouette much."""
    rng = np.random.default_rng(seed)
    a = rng.normal(0, 0.5, size=(12, 3))
    b = rng.normal(0, 0.5, size=(12, 3))
    labels = np.r_[np.zeros(12), np.ones(12)]
    close = silhouette_score(np.vstack([a, b + 0.1]), labels)
    far = silhouette_score(np.vstack([a, b + gap + 0.1]), labels)
    assert far >= close - 0.05


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_auc_label_flip_complement(seed):
    """Swapping labels (1 <-> 0) maps AUC to 1 - AUC (no ties)."""
    rng = np.random.default_rng(seed)
    scores = rng.normal(size=20)
    labels = np.r_[np.ones(6), np.zeros(14)].astype(int)
    rng.shuffle(labels)
    assert (pairwise_auc(scores, labels)
            + pairwise_auc(scores, 1 - labels)) == pytest.approx(1.0)
