"""Tests for SGD / Adam / AdamW and gradient clipping."""

import numpy as np
import pytest

from repro import nn
from repro.nn.optim import SGD, Adam, AdamW, clip_grad_norm
from repro.nn.tensor import Parameter, Tensor


def quadratic_step(optimizer_factory, steps=200):
    """Minimize ||x - 3||^2; return final parameter values."""
    param = Parameter(np.array([0.0, 0.0]))
    optimizer = optimizer_factory([param])
    target = np.array([3.0, 3.0])
    for _ in range(steps):
        optimizer.zero_grad()
        loss = ((param - Tensor(target)) ** 2).sum()
        loss.backward()
        optimizer.step()
    return param.data


class TestSGD:
    def test_converges_on_quadratic(self):
        final = quadratic_step(lambda p: SGD(p, lr=0.1))
        np.testing.assert_allclose(final, [3.0, 3.0], atol=1e-4)

    def test_momentum_converges(self):
        final = quadratic_step(lambda p: SGD(p, lr=0.05, momentum=0.9))
        np.testing.assert_allclose(final, [3.0, 3.0], atol=1e-4)

    def test_weight_decay_shrinks(self):
        param = Parameter(np.array([10.0]))
        optimizer = SGD([param], lr=0.1, weight_decay=1.0)
        param.grad = np.zeros(1)
        optimizer.step()
        assert param.data[0] < 10.0

    def test_skips_params_without_grad(self):
        param = Parameter(np.array([1.0]))
        SGD([param], lr=0.1).step()
        np.testing.assert_allclose(param.data, [1.0])

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        final = quadratic_step(lambda p: Adam(p, lr=0.1))
        np.testing.assert_allclose(final, [3.0, 3.0], atol=1e-3)

    def test_bias_correction_first_step(self):
        """First Adam step should be ≈ lr in the gradient direction."""
        param = Parameter(np.array([0.0]))
        optimizer = Adam([param], lr=0.1)
        param.grad = np.array([1.0])
        optimizer.step()
        np.testing.assert_allclose(param.data, [-0.1], atol=1e-6)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], betas=(1.0, 0.999))


class TestAdamW:
    def test_converges_on_quadratic(self):
        final = quadratic_step(lambda p: AdamW(p, lr=0.1, weight_decay=0.0))
        np.testing.assert_allclose(final, [3.0, 3.0], atol=1e-3)

    def test_decay_is_decoupled(self):
        """With zero gradient AdamW still decays weights toward zero —
        and the decay must be exactly lr * wd * w (not scaled by Adam's
        denominator), which distinguishes AdamW from Adam+L2."""
        param = Parameter(np.array([2.0]))
        optimizer = AdamW([param], lr=0.1, weight_decay=0.5)
        param.grad = np.zeros(1)
        optimizer.step()
        np.testing.assert_allclose(param.data, [2.0 - 0.1 * 0.5 * 2.0])

    def test_differs_from_coupled_adam(self):
        a = Parameter(np.array([2.0]))
        b = Parameter(np.array([2.0]))
        adamw = AdamW([a], lr=0.1, weight_decay=0.5)
        adam = Adam([b], lr=0.1, weight_decay=0.5)
        for optimizer, param in ((adamw, a), (adam, b)):
            param.grad = np.array([1.0])
            optimizer.step()
        assert not np.allclose(a.data, b.data)


class TestOptimizerBase:
    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.0)

    def test_zero_grad(self):
        param = Parameter(np.ones(1))
        param.grad = np.ones(1)
        SGD([param], lr=0.1).zero_grad()
        assert param.grad is None


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 10.0)
        returned = clip_grad_norm([param], max_norm=1.0)
        assert returned == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_no_clip_when_under(self):
        param = Parameter(np.zeros(2))
        param.grad = np.array([0.3, 0.4])
        clip_grad_norm([param], max_norm=1.0)
        np.testing.assert_allclose(param.grad, [0.3, 0.4])

    def test_handles_missing_grads(self):
        assert clip_grad_norm([Parameter(np.ones(2))], max_norm=1.0) == 0.0


class TestInPlaceUpdates:
    def test_adam_weight_decay_enabled_after_init(self):
        """Scratch buffers for coupled decay are allocated lazily, so turning
        decay on after construction must not crash."""
        param = Parameter(np.array([2.0]))
        optimizer = Adam([param], lr=0.1, weight_decay=0.0)
        optimizer.weight_decay = 0.01
        param.grad = np.array([1.0])
        optimizer.step()
        assert np.isfinite(param.data).all()

    def test_step_does_not_rebind_param_arrays(self):
        """In-place updates must mutate the existing data array (models keep
        references to it)."""
        param = Parameter(np.array([1.0, 2.0]))
        data_before = param.data
        optimizer = AdamW([param], lr=0.1, weight_decay=0.1)
        param.grad = np.array([0.5, -0.5])
        optimizer.step()
        assert param.data is data_before

    def test_float32_params_get_float32_state(self):
        param = Parameter(np.zeros(3), dtype=np.float32)
        optimizer = Adam([param], lr=0.1)
        assert optimizer._m[0].dtype == np.float32
        assert optimizer._buf[0].dtype == np.float32
        param.grad = np.ones(3, dtype=np.float32)
        optimizer.step()
        assert param.data.dtype == np.float32
