"""Tests for the graph-free inference engine (``repro.nn.infer``)."""

import numpy as np
import pytest

from repro import nn
from repro.nn import infer


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestCompiledMLP:
    def test_matches_tensor_forward_f64(self, rng):
        tower = nn.MLP(12, [16, 8], 1, rng=rng)
        x = rng.normal(size=(32, 12))
        with nn.no_grad():
            reference = tower(nn.Tensor(x)).data
        np.testing.assert_allclose(tower.compiled()(x), reference, atol=1e-12)

    def test_matches_tensor_forward_f32(self, rng):
        tower = nn.MLP(12, [16, 8], 1, rng=rng).astype(np.float32)
        x = rng.normal(size=(32, 12)).astype(np.float32)
        with nn.no_grad():
            reference = tower(nn.Tensor(x)).data
        out = tower.compiled()(x)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, reference, atol=1e-6)

    def test_dropout_is_identity_in_inference(self, rng):
        tower = nn.MLP(6, [8], 1, dropout=0.5, rng=rng)
        tower.eval()
        x = rng.normal(size=(16, 6))
        with nn.no_grad():
            reference = tower(nn.Tensor(x)).data
        np.testing.assert_allclose(tower.compiled()(x), reference, atol=1e-12)

    def test_float64_input_cast_to_plan_dtype(self, rng):
        tower = nn.MLP(6, [8], 1, rng=rng).astype(np.float32)
        out = tower.compiled()(rng.normal(size=(4, 6)))  # f64 feed
        assert out.dtype == np.float32

    def test_tensor_input_accepted(self, rng):
        tower = nn.MLP(6, [8], 1, rng=rng)
        x = rng.normal(size=(4, 6))
        np.testing.assert_array_equal(tower.compiled()(nn.Tensor(x)),
                                      tower.compiled()(x))

    def test_no_graph_is_built(self, rng):
        tower = nn.MLP(6, [8], 1, rng=rng)
        out = tower.compiled()(rng.normal(size=(4, 6)))
        assert isinstance(out, np.ndarray)

    def test_buffers_reused_across_calls(self, rng):
        tower = nn.MLP(6, [8], 1, rng=rng)
        plan = tower.compiled()
        x = rng.normal(size=(4, 6))
        first = plan(x)
        buffers_after_first = len(plan.pool)
        second = plan(x)
        assert len(plan.pool) == buffers_after_first
        assert second is first  # same output buffer, overwritten in place

    def test_new_batch_size_allocates_new_buffers(self, rng):
        tower = nn.MLP(6, [8], 1, rng=rng)
        plan = tower.compiled()
        plan(rng.normal(size=(4, 6)))
        count = len(plan.pool)
        plan(rng.normal(size=(9, 6)))
        assert len(plan.pool) > count

    def test_parameter_updates_picked_up_without_recompile(self, rng):
        tower = nn.MLP(6, [8], 1, rng=rng)
        plan = tower.compiled()
        x = rng.normal(size=(4, 6))
        before = plan(x).copy()
        for param in tower.parameters():
            param.data = param.data + 0.1
        after = plan(x)
        assert not np.allclose(before, after)
        with nn.no_grad():
            reference = tower(nn.Tensor(x)).data
        np.testing.assert_allclose(after, reference, atol=1e-12)


class TestCompiledLayers:
    def test_linear(self, rng):
        layer = nn.Linear(5, 3, rng=rng)
        x = rng.normal(size=(7, 5))
        with nn.no_grad():
            reference = layer(nn.Tensor(x)).data
        np.testing.assert_allclose(layer.compiled()(x), reference, atol=1e-12)

    def test_linear_no_bias(self, rng):
        layer = nn.Linear(5, 3, bias=False, rng=rng)
        x = rng.normal(size=(7, 5))
        with nn.no_grad():
            reference = layer(nn.Tensor(x)).data
        np.testing.assert_allclose(layer.compiled()(x), reference, atol=1e-12)

    def test_sequential_with_activations(self, rng):
        model = nn.Sequential(nn.Linear(5, 4, rng=rng), nn.Tanh(),
                              nn.Linear(4, 2, rng=rng), nn.Sigmoid())
        x = rng.normal(size=(6, 5))
        with nn.no_grad():
            reference = model(nn.Tensor(x)).data
        np.testing.assert_allclose(model.compiled()(x), reference, atol=1e-12)

    def test_embedding(self, rng):
        table = nn.Embedding(20, 4, rng=rng)
        ids = rng.integers(0, 20, size=11)
        with nn.no_grad():
            reference = table(ids).data
        np.testing.assert_array_equal(table.compiled()(ids), reference)

    def test_embedding_out_of_range_raises(self, rng):
        table = nn.Embedding(10, 4, rng=rng)
        with pytest.raises(IndexError):
            table.compiled()(np.array([3, 10]))

    def test_embedding_negative_id_raises(self, rng):
        """np.take would wrap -1 to the last row; the plan must not."""
        table = nn.Embedding(10, 4, rng=rng)
        with pytest.raises(IndexError):
            table.compiled()(np.array([3, -1]))

    def test_buffer_pool_is_lru_bounded(self, rng):
        pool = infer.BufferPool(max_buffers=3)
        step = pool.reserve()
        for rows in (1, 2, 3, 4, 5):
            pool.get(step, (rows, 2), np.float64)
        assert len(pool) == 3
        # Most recent sizes survive; re-getting one is still a cache hit.
        survivor = pool.get(step, (5, 2), np.float64)
        assert pool.get(step, (5, 2), np.float64) is survivor

    def test_generic_fallback_for_custom_module(self, rng):
        class Scale2(nn.Module):
            def forward(self, x):
                return nn.as_tensor(x) * 2.0

        module = Scale2()
        x = rng.normal(size=(3, 2))
        np.testing.assert_allclose(module.compiled()(x), 2.0 * x)


class TestCompiledRecurrent:
    @pytest.mark.parametrize("lengths", [None, "ragged"])
    @pytest.mark.parametrize("reverse", [False, True])
    def test_gru_final_state_matches(self, rng, lengths, reverse):
        gru = nn.GRU(5, 7, rng=rng, reverse=reverse)
        x = rng.normal(size=(6, 9, 5))
        lens = rng.integers(1, 10, size=6) if lengths else None
        with nn.no_grad():
            _, final = gru(nn.Tensor(x), lengths=lens)
        np.testing.assert_allclose(gru.compiled()(x, lengths=lens),
                                   final.data, atol=1e-12)

    def test_bigru_matches(self, rng):
        gru = nn.BiGRU(5, 7, rng=rng)
        x = rng.normal(size=(6, 9, 5))
        lens = rng.integers(1, 10, size=6)
        with nn.no_grad():
            reference = gru(nn.Tensor(x), lengths=lens).data
        np.testing.assert_allclose(gru.compiled()(x, lengths=lens),
                                   reference, atol=1e-12)

    def test_bigru_f32(self, rng):
        gru = nn.BiGRU(5, 7, rng=rng).astype(np.float32)
        x = rng.normal(size=(6, 9, 5)).astype(np.float32)
        lens = rng.integers(1, 10, size=6)
        with nn.no_grad():
            reference = gru(nn.Tensor(x), lengths=lens).data
        out = gru.compiled()(x, lengths=lens)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, reference, atol=1e-6)

    def test_gru_cell_step(self, rng):
        cell = nn.GRUCell(4, 6, rng=rng)
        x = rng.normal(size=(3, 4))
        h = rng.normal(size=(3, 6))
        with nn.no_grad():
            reference = cell(nn.Tensor(x), nn.Tensor(h)).data
        np.testing.assert_allclose(cell.compiled()(x, h), reference, atol=1e-12)


class TestArrayHelpers:
    def test_softmax_array_matches_functional(self, rng):
        from repro.nn import functional as F
        x = rng.normal(size=(5, 7))
        np.testing.assert_allclose(infer.softmax_array(x, axis=1),
                                   F.softmax(nn.Tensor(x), axis=1).data,
                                   atol=1e-15)

    def test_masked_softmax_array_matches_functional(self, rng):
        from repro.nn import functional as F
        x = rng.normal(size=(5, 7))
        mask = rng.random((5, 7)) > 0.4
        mask[:, 0] = True  # no all-masked rows
        np.testing.assert_allclose(
            infer.masked_softmax_array(x, mask, axis=1),
            F.masked_softmax(nn.Tensor(x), mask, axis=1).data, atol=1e-15)

    def test_sigmoid_array_is_stable(self):
        out = infer.sigmoid_array(np.array([-1000.0, 0.0, 1000.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])

    def test_plan_repr_and_dtype(self, rng):
        tower = nn.MLP(6, [8], 1, rng=rng)
        plan = tower.compiled()
        assert plan.dtype == np.float64
        assert "CompiledPlan" in repr(plan)
