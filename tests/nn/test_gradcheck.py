"""Tests for the repro.nn.gradcheck subsystem itself, plus the exhaustive
per-op sweep: every op exported by repro.nn.functional must either appear in
the gradcheck case table below or be explicitly listed as non-differentiable.
New functional exports therefore cannot land unchecked — this module fails
collection-time (`test_every_functional_export_is_covered`) until a case is
added.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.gradcheck import (GradcheckError, check_grad, gradcheck,
                                gradcheck_module, numeric_grad)
from repro.nn.tensor import Tensor

RNG = np.random.default_rng


def _dropout_fixed(t):
    # A freshly seeded rng per call makes the stochastic mask deterministic,
    # which finite differences require.
    return F.dropout(t, 0.3, training=True, rng=RNG(7))


_LINRELU_W = Tensor(RNG(1).normal(size=(4, 3)))
_LINRELU_B = Tensor(RNG(2).normal(size=3))
_MASK = np.array([[True, True, False, True], [True, False, True, True],
                  [False, True, True, True]])
_GATHER_IDX = np.array([[0, 2], [1, 1], [3, 0]])
_CLASS_TARGETS = np.array([0, 2, 1])
_BCE_TARGETS = np.array([[0.0, 1.0, 0.5, 1.0], [1.0, 0.0, 0.25, 0.0],
                         [0.5, 0.5, 1.0, 0.0]])
# GRU kernel fixtures: hidden size 3, input size 2, batch 4, 3 timesteps.
# The mask / ragged lengths exercise the in-kernel masked state update.
_GRU_WHH = Tensor(RNG(3).normal(size=(3, 9)) * 0.5)
_GRU_BHH = Tensor(RNG(4).normal(size=9) * 0.1)
_GRU_H0 = Tensor(RNG(5).normal(size=(4, 3)))
_GRU_WIH = Tensor(RNG(6).normal(size=(2, 9)) * 0.5)
_GRU_BIH = Tensor(RNG(7).normal(size=9) * 0.1)
_GRU_MASK = np.array([[1.0], [1.0], [0.0], [1.0]])
_SEQ_LENGTHS = np.array([3, 1, 2, 3])

# name -> (fn, input) pairs; inputs avoid non-differentiable points (e.g.
# relu kinks at 0) so central differences are well-defined.
GRADCHECK_CASES = {
    "relu": (lambda t: F.relu(t), RNG(0).normal(size=(3, 4)) + 0.05),
    "sigmoid": (lambda t: F.sigmoid(t), RNG(0).normal(size=(3, 4))),
    "tanh": (lambda t: F.tanh(t), RNG(0).normal(size=(3, 4))),
    "softmax": (lambda t: F.softmax(t, axis=1) * Tensor(RNG(1).normal(size=(3, 4))),
                RNG(0).normal(size=(3, 4))),
    "log_softmax": (lambda t: F.log_softmax(t, axis=1)[:, :2],
                    RNG(0).normal(size=(3, 4))),
    "masked_softmax": (lambda t: F.masked_softmax(t, _MASK, axis=1) ** 2,
                       RNG(0).normal(size=(3, 4))),
    "dropout": (_dropout_fixed, RNG(0).normal(size=(3, 4))),
    "take_along_axis": (lambda t: F.take_along_axis(t, _GATHER_IDX, axis=1) ** 2,
                        RNG(0).normal(size=(3, 4))),
    "linear_relu": (lambda t: F.linear_relu(t, _LINRELU_W, _LINRELU_B),
                    RNG(0).normal(size=(3, 4))),
    "softmax_cross_entropy": (lambda t: F.softmax_cross_entropy(t, _CLASS_TARGETS,
                                                                reduction="sum"),
                              RNG(0).normal(size=(3, 4))),
    "bce_with_logits_fused": (lambda t: F.bce_with_logits_fused(t, _BCE_TARGETS,
                                                                reduction="sum"),
                              RNG(0).normal(size=(3, 4))),
    "gru_cell_fused": (lambda t: F.gru_cell_fused(t, _GRU_H0, _GRU_WHH,
                                                  _GRU_BHH, mask=_GRU_MASK),
                       RNG(0).normal(size=(4, 9))),
    "gru_sequence": (lambda t: F.gru_sequence(t, _GRU_WIH, _GRU_WHH, _GRU_BIH,
                                              _GRU_BHH, lengths=_SEQ_LENGTHS,
                                              reverse=True)[1],
                     RNG(0).normal(size=(4, 3, 2))),
    # Unsorted ragged lengths force the packed scan's argsort + unsort lane.
    "gru_sequence_packed": (lambda t: F.gru_sequence_packed(
                                t, _GRU_WIH, _GRU_WHH, _GRU_BIH, _GRU_BHH,
                                lengths=_SEQ_LENGTHS, reverse=True)[1],
                            RNG(0).normal(size=(4, 3, 2))),
}

# Exports that intentionally have no gradient path: plain-numpy helpers for
# routing masks and labels.
NON_DIFFERENTIABLE = {"scatter_topk_mask", "one_hot"}


def test_every_functional_export_is_covered():
    """The sweep is exhaustive: a new export must be classified here."""
    covered = set(GRADCHECK_CASES) | NON_DIFFERENTIABLE
    assert set(F.__all__) == covered, (
        "repro.nn.functional exports changed; add a gradcheck case (or list "
        f"the op as non-differentiable): {set(F.__all__) ^ covered}")


@pytest.mark.parametrize("name", sorted(GRADCHECK_CASES))
def test_op_matches_finite_differences(name):
    fn, x = GRADCHECK_CASES[name]
    check_grad(fn, x)


class TestGRUKernelGradients:
    """The sweep checks the fused GRU kernels wrt their first argument;
    these cover every other differentiable input (hidden state, recurrent
    weights, biases, and the hoisted input projection)."""

    _XG = Tensor(RNG(8).normal(size=(4, 9)))
    _XSEQ = RNG(9).normal(size=(4, 3, 2))

    def test_cell_hidden_state(self):
        check_grad(lambda t: F.gru_cell_fused(self._XG, t, _GRU_WHH, _GRU_BHH,
                                              mask=_GRU_MASK), _GRU_H0.data)

    def test_cell_weight_hh(self):
        check_grad(lambda t: F.gru_cell_fused(self._XG, _GRU_H0, t, _GRU_BHH),
                   _GRU_WHH.data)

    def test_cell_bias_hh(self):
        check_grad(lambda t: F.gru_cell_fused(self._XG, _GRU_H0, _GRU_WHH, t,
                                              mask=_GRU_MASK), _GRU_BHH.data)

    def test_sequence_weight_ih(self):
        check_grad(lambda t: F.gru_sequence(self._XSEQ, t, _GRU_WHH, _GRU_BIH,
                                            _GRU_BHH, lengths=_SEQ_LENGTHS)[1],
                   _GRU_WIH.data)

    def test_sequence_weight_hh(self):
        check_grad(lambda t: F.gru_sequence(self._XSEQ, _GRU_WIH, t, _GRU_BIH,
                                            _GRU_BHH, lengths=_SEQ_LENGTHS)[1],
                   _GRU_WHH.data)

    def test_sequence_biases(self):
        check_grad(lambda t: F.gru_sequence(self._XSEQ, _GRU_WIH, _GRU_WHH, t,
                                            _GRU_BHH)[1], _GRU_BIH.data)
        check_grad(lambda t: F.gru_sequence(self._XSEQ, _GRU_WIH, _GRU_WHH,
                                            _GRU_BIH, t)[1], _GRU_BHH.data)

    def test_packed_sequence_weights(self):
        """The packed scan's shared-buffer weight accumulation (prefix steps
        write partial-batch gradients) must match finite differences."""
        check_grad(lambda t: F.gru_sequence_packed(
            self._XSEQ, t, _GRU_WHH, _GRU_BIH, _GRU_BHH,
            lengths=_SEQ_LENGTHS)[1], _GRU_WIH.data)
        check_grad(lambda t: F.gru_sequence_packed(
            self._XSEQ, _GRU_WIH, t, _GRU_BIH, _GRU_BHH,
            lengths=_SEQ_LENGTHS)[1], _GRU_WHH.data)

    def test_packed_sequence_all_step_outputs(self):
        """Gradients through every unsorted per-step output — each
        _permute_rows/_row_slice backward must land in the right rows."""
        def through_all_steps(t):
            outputs, _ = F.gru_sequence_packed(t, _GRU_WIH, _GRU_WHH,
                                               _GRU_BIH, _GRU_BHH,
                                               lengths=_SEQ_LENGTHS,
                                               reverse=True)
            total = outputs[0]
            for step in outputs[1:]:
                total = total + step
            return total
        check_grad(through_all_steps, self._XSEQ)

    def test_sequence_all_step_outputs(self):
        """Gradients through intermediate step outputs (not just the final
        state) — every per-step time_slice backward must land correctly."""
        def through_all_steps(t):
            outputs, _ = F.gru_sequence(t, _GRU_WIH, _GRU_WHH, _GRU_BIH,
                                        _GRU_BHH, lengths=_SEQ_LENGTHS)
            total = outputs[0]
            for step in outputs[1:]:
                total = total + step
            return total
        check_grad(through_all_steps, self._XSEQ)


class TestCheckGrad:
    def test_passes_on_correct_gradient(self):
        check_grad(lambda t: t * 3.0, RNG(0).normal(size=(2, 3)))

    def test_catches_wrong_gradient(self):
        def broken(t):
            # Forward is x^2 but the registered backward claims d/dx = x.
            out = t._make_child(t.data ** 2, (t,), "broken")
            if out.requires_grad:
                out._backward = lambda: t._accumulate(out.grad * t.data)
            return out

        with pytest.raises(GradcheckError):
            check_grad(broken, RNG(0).normal(size=(2, 2)))

    def test_catches_missing_gradient(self):
        with pytest.raises(GradcheckError):
            check_grad(lambda t: Tensor(t.data * 2.0, requires_grad=True),
                       np.ones(3))

    def test_runs_in_float64_even_in_float32_mode(self):
        with nn.default_dtype(np.float32):
            # 1e-6 finite-difference steps vanish in f32; passing proves the
            # checker forced f64 internally.
            check_grad(lambda t: t.exp(), RNG(0).normal(size=(2, 3)))

    def test_configurable_eps(self):
        check_grad(lambda t: t ** 3, RNG(0).normal(size=4), eps=1e-5, tol=1e-6)


class TestNumericGrad:
    def test_linear_function_exact(self):
        c = np.array([1.0, -2.0, 3.0])
        grad = numeric_grad(lambda t: t * Tensor(c), np.zeros(3))
        np.testing.assert_allclose(grad, c, atol=1e-9)

    def test_matches_analytic_for_quadratic(self):
        x = RNG(0).normal(size=(2, 2))
        np.testing.assert_allclose(numeric_grad(lambda t: t ** 2, x), 2 * x,
                                   atol=1e-6)


class TestGradcheckBoolean:
    def test_true_on_correct(self):
        assert gradcheck(lambda t: t.tanh(), RNG(0).normal(size=3))

    def test_false_on_wrong(self):
        def broken(t):
            out = t._make_child(np.sin(t.data), (t,), "broken")
            if out.requires_grad:
                out._backward = lambda: t._accumulate(out.grad)
            return out

        assert not gradcheck(broken, RNG(0).normal(size=3))


class TestGradcheckModule:
    def test_linear_layer(self):
        layer = nn.Linear(4, 3, rng=RNG(0))
        gradcheck_module(layer, Tensor(RNG(1).normal(size=(5, 4))))

    def test_mlp_tower(self):
        tower = nn.MLP(4, [6], 1, rng=RNG(0))
        gradcheck_module(tower, Tensor(RNG(1).normal(size=(3, 4))))

    def test_mlp_with_custom_loss(self):
        tower = nn.MLP(3, [4], 2, rng=RNG(0))
        gradcheck_module(tower, Tensor(RNG(1).normal(size=(2, 3))),
                         loss_fn=lambda out: (out ** 2).mean())

    def test_embedding(self):
        table = nn.Embedding(6, 3, rng=RNG(0))
        gradcheck_module(table, np.array([0, 2, 2, 5]))

    def test_catches_corrupted_parameter_gradient(self):
        layer = nn.Linear(3, 2, rng=RNG(0))
        x = Tensor(RNG(1).normal(size=(4, 3)))

        class Broken(nn.Module):
            def __init__(self):
                super().__init__()
                self.inner = layer

            def forward(self, t):
                out = self.inner(t)
                # Detach half the weight's contribution from the graph: the
                # analytic grad is now wrong for inner.weight.
                return out + Tensor(0.5 * (t.data @ self.inner.weight.data))

        with pytest.raises(GradcheckError):
            gradcheck_module(Broken(), x)

    def test_restores_parameter_dtype(self):
        """A float32 model gradchecks in float64 but comes back float32."""
        tower = nn.MLP(3, [4], 1, rng=RNG(0)).astype(np.float32)
        gradcheck_module(tower, Tensor(RNG(1).normal(size=(2, 3))))
        assert all(p.dtype == np.float32 for p in tower.parameters())

    def test_skips_frozen_parameters(self):
        """Frozen params (e.g. freeze_embedder in the transfer workflow)
        affect the forward pass but must not be flagged as wrong gradients."""
        layer = nn.Linear(3, 2, rng=RNG(0))
        layer.weight.requires_grad = False
        gradcheck_module(layer, Tensor(RNG(1).normal(size=(4, 3))))

    def test_clears_gradients_on_exit(self):
        """The check's own sum-loss gradients must not leak into a later
        optimizer.step()."""
        tower = nn.MLP(3, [4], 1, rng=RNG(0))
        gradcheck_module(tower, Tensor(RNG(1).normal(size=(2, 3))))
        assert all(p.grad is None for p in tower.parameters())

    def test_restores_training_mode(self):
        tower = nn.MLP(3, [4], 1, dropout=0.4, rng=RNG(0))
        tower.train()
        gradcheck_module(tower, Tensor(RNG(1).normal(size=(2, 3))))
        assert tower.training

    def test_sampled_entries(self):
        tower = nn.MLP(5, [8], 1, rng=RNG(0))
        gradcheck_module(tower, Tensor(RNG(1).normal(size=(3, 5))),
                         max_entries_per_param=4, rng=RNG(2))

    @pytest.mark.parametrize("fused", [True, False])
    def test_gru_cell(self, fused):
        """GRUCell.forward takes (x, h); adapt through a closure module.
        Both the fused kernel and the per-op reference path must pass."""
        cell = nn.GRUCell(3, 4, rng=RNG(0), fused=fused)
        x = Tensor(RNG(1).normal(size=(2, 3)))
        h = Tensor(RNG(2).normal(size=(2, 4)))

        class Wrapped(nn.Module):
            def __init__(self):
                super().__init__()
                self.cell = cell

            def forward(self, inp):
                return self.cell(inp, h)

        gradcheck_module(Wrapped(), x)


class TestInputHygiene:
    def test_non_contiguous_input(self):
        """Transposed (non-contiguous) inputs must gradcheck correctly."""
        x = (np.arange(12.0).reshape(3, 4).T + 0.1)
        assert not x.flags["C_CONTIGUOUS"]
        check_grad(lambda t: t.exp(), x)

    def test_caller_array_never_mutated(self):
        x = RNG(0).normal(size=(2, 3))
        original = x.copy()
        check_grad(lambda t: t * 2.0, x)
        np.testing.assert_array_equal(x, original)
