"""Tests for GRUCell / GRU / BiGRU."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


@pytest.fixture()
def cell():
    return nn.GRUCell(3, 4, rng=np.random.default_rng(0))


class TestGRUCell:
    def test_output_shape(self, cell):
        h = cell(Tensor(np.ones((2, 3))), cell.initial_state(2))
        assert h.shape == (2, 4)

    def test_initial_state_zero(self, cell):
        np.testing.assert_allclose(cell.initial_state(3).data, np.zeros((3, 4)))

    def test_state_bounded_by_tanh(self, cell):
        h = cell.initial_state(2)
        for _ in range(50):
            h = cell(Tensor(np.random.default_rng(1).normal(size=(2, 3)) * 5), h)
        assert np.all(np.abs(h.data) <= 1.0 + 1e-9)

    def test_gradients_reach_all_weights(self, cell):
        h = cell(Tensor(np.ones((2, 3))), cell.initial_state(2))
        h.sum().backward()
        for name, param in cell.named_parameters():
            assert param.grad is not None, name

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            nn.GRUCell(0, 4)

    def test_gradient_matches_finite_difference(self):
        """Full finite-difference check through one GRU step."""
        rng = np.random.default_rng(0)
        cell = nn.GRUCell(2, 3, rng=rng)
        x = rng.normal(size=(2, 2))
        h0 = rng.normal(size=(2, 3))

        def forward():
            return cell(Tensor(x), Tensor(h0)).data.sum()

        xt = Tensor(x, requires_grad=True)
        cell(xt, Tensor(h0)).sum().backward()
        analytic = xt.grad.copy()

        eps = 1e-6
        numeric = np.zeros_like(x)
        for i in range(x.size):
            orig = x.reshape(-1)[i]
            x.reshape(-1)[i] = orig + eps
            plus = forward()
            x.reshape(-1)[i] = orig - eps
            minus = forward()
            x.reshape(-1)[i] = orig
            numeric.reshape(-1)[i] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-7)


class TestGRU:
    def test_output_structure(self):
        gru = nn.GRU(3, 4, rng=np.random.default_rng(0))
        outputs, final = gru(Tensor(np.random.default_rng(1).normal(size=(2, 5, 3))))
        assert len(outputs) == 5
        assert final.shape == (2, 4)
        np.testing.assert_allclose(outputs[-1].data, final.data)

    def test_requires_3d_input(self):
        gru = nn.GRU(3, 4, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            gru(Tensor(np.ones((2, 3))))

    def test_length_masking_freezes_state(self):
        """Padded steps must not change an example's hidden state."""
        gru = nn.GRU(3, 4, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(1, 6, 3))
        # Run with length 3 vs truncated input of length 3: same final state.
        _, final_masked = gru(Tensor(x), lengths=np.array([3]))
        _, final_truncated = gru(Tensor(x[:, :3, :]))
        np.testing.assert_allclose(final_masked.data, final_truncated.data, atol=1e-12)

    def test_reverse_direction(self):
        gru_f = nn.GRU(3, 4, rng=np.random.default_rng(0))
        gru_r = nn.GRU(3, 4, rng=np.random.default_rng(0), reverse=True)
        x = np.random.default_rng(1).normal(size=(1, 4, 3))
        _, forward_final = gru_f(Tensor(x))
        _, reverse_final = gru_r(Tensor(x[:, ::-1, :].copy()))
        np.testing.assert_allclose(forward_final.data, reverse_final.data, atol=1e-12)


class TestBiGRU:
    def test_output_width(self):
        bigru = nn.BiGRU(3, 4, rng=np.random.default_rng(0))
        out = bigru(Tensor(np.random.default_rng(1).normal(size=(2, 5, 3))))
        assert out.shape == (2, 8)
        assert bigru.output_size == 8

    def test_gradients_flow_both_directions(self):
        bigru = nn.BiGRU(3, 4, rng=np.random.default_rng(0))
        out = bigru(Tensor(np.random.default_rng(1).normal(size=(2, 5, 3))))
        out.sum().backward()
        for name, param in bigru.named_parameters():
            assert param.grad is not None, name

    def test_variable_lengths_ignore_padding(self):
        bigru = nn.BiGRU(3, 4, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 5, 3))
        padded = x.copy()
        padded[:, 3:, :] = 99.0  # garbage in padding region
        out_clean = bigru(Tensor(x), lengths=np.array([3]))
        out_padded = bigru(Tensor(padded), lengths=np.array([3]))
        np.testing.assert_allclose(out_clean.data, out_padded.data, atol=1e-12)

    def test_direction_asymmetry(self):
        """Reversing the sequence changes the representation."""
        bigru = nn.BiGRU(3, 4, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(1, 4, 3))
        a = bigru(Tensor(x)).data
        b = bigru(Tensor(x[:, ::-1, :].copy())).data
        assert not np.allclose(a, b)


def _paired_bigrus(dtype, seed=0):
    """A fused and a per-op BiGRU with identical weights at ``dtype``."""
    fused = nn.BiGRU(3, 4, rng=np.random.default_rng(seed), fused=True)
    slow = nn.BiGRU(3, 4, rng=np.random.default_rng(seed), fused=False)
    if dtype != np.float64:
        fused.astype(dtype)
        slow.astype(dtype)
    return fused, slow


class TestFusedMatchesPerOp:
    """The fused kernels must be numerically interchangeable with the
    per-op reference graph — forward values and every parameter/input
    gradient — across direction, ragged lengths, and both dtypes."""

    LENGTHS = np.array([5, 2, 4, 1])

    @pytest.mark.parametrize("dtype,tol", [(np.float64, 1e-12), (np.float32, 1e-5)])
    @pytest.mark.parametrize("lengths", [None, "ragged"])
    def test_bigru_forward_and_gradients(self, dtype, tol, lengths):
        lens = self.LENGTHS if lengths == "ragged" else None
        fused, slow = _paired_bigrus(dtype)
        x = np.random.default_rng(1).normal(size=(4, 5, 3)).astype(dtype)
        xf, xs = Tensor(x, requires_grad=True), Tensor(x, requires_grad=True)
        out_fused, out_slow = fused(xf, lengths=lens), slow(xs, lengths=lens)
        np.testing.assert_allclose(out_fused.data, out_slow.data, atol=tol)
        assert out_fused.dtype == dtype
        out_fused.sum().backward()
        out_slow.sum().backward()
        np.testing.assert_allclose(xf.grad, xs.grad, atol=tol)
        for (name, pf), (_, ps) in zip(fused.named_parameters(),
                                       slow.named_parameters()):
            np.testing.assert_allclose(pf.grad, ps.grad, atol=tol,
                                       err_msg=name)

    @pytest.mark.parametrize("reverse", [False, True])
    def test_gru_reverse_direction(self, reverse):
        gru_fused = nn.GRU(3, 4, rng=np.random.default_rng(0), reverse=reverse,
                           fused=True)
        gru_slow = nn.GRU(3, 4, rng=np.random.default_rng(0), reverse=reverse,
                          fused=False)
        x = np.random.default_rng(2).normal(size=(3, 6, 3))
        outs_fused, final_fused = gru_fused(Tensor(x), lengths=self.LENGTHS[:3])
        outs_slow, final_slow = gru_slow(Tensor(x), lengths=self.LENGTHS[:3])
        np.testing.assert_allclose(final_fused.data, final_slow.data, atol=1e-12)
        for step_fused, step_slow in zip(outs_fused, outs_slow):
            np.testing.assert_allclose(step_fused.data, step_slow.data, atol=1e-12)

    def test_gru_cell_single_step(self):
        cell_fused = nn.GRUCell(3, 4, rng=np.random.default_rng(0), fused=True)
        cell_slow = nn.GRUCell(3, 4, rng=np.random.default_rng(0), fused=False)
        rng = np.random.default_rng(3)
        x, h = Tensor(rng.normal(size=(2, 3))), Tensor(rng.normal(size=(2, 4)))
        np.testing.assert_allclose(cell_fused(x, h).data, cell_slow(x, h).data,
                                   atol=1e-12)


def _paired_packed_bigrus(dtype, seed=0):
    """A packed and a masked (packed=False) BiGRU with identical weights."""
    packed = nn.BiGRU(3, 4, rng=np.random.default_rng(seed), packed=True)
    masked = nn.BiGRU(3, 4, rng=np.random.default_rng(seed), packed=False)
    if dtype != np.float64:
        packed.astype(dtype)
        masked.astype(dtype)
    return packed, masked


class TestPackedMatchesMasked:
    """The packed ragged scan must be numerically interchangeable with the
    masked fused scan — forward values and every parameter/input gradient —
    across direction, length mixes, and both dtypes (mirroring
    TestFusedMatchesPerOp, which pins the masked scan itself against the
    per-op reference)."""

    # Unsorted ragged lengths: forces the argsort lane, includes a length-1
    # example (active only at t=0) and a full-length one.
    LENGTHS = np.array([5, 2, 4, 1])

    @pytest.mark.parametrize("dtype,tol", [(np.float64, 1e-12), (np.float32, 1e-5)])
    @pytest.mark.parametrize("lengths", [
        np.array([5, 2, 4, 1]),         # unsorted ragged (argsort lane)
        np.array([1, 2, 4, 5]),         # ascending (bucketed-loader shape)
        np.array([4, 3, 2, 1]),         # descending (identity fast path)
        np.array([3, 3, 3, 3]),         # uniform short: every step partial
    ], ids=["unsorted", "ascending", "descending", "uniform-short"])
    def test_bigru_forward_and_gradients(self, dtype, tol, lengths):
        packed, masked = _paired_packed_bigrus(dtype)
        x = np.random.default_rng(1).normal(size=(4, 5, 3)).astype(dtype)
        xp, xm = Tensor(x, requires_grad=True), Tensor(x, requires_grad=True)
        out_packed = packed(xp, lengths=lengths)
        out_masked = masked(xm, lengths=lengths)
        np.testing.assert_allclose(out_packed.data, out_masked.data, atol=tol)
        assert out_packed.dtype == dtype
        out_packed.sum().backward()
        out_masked.sum().backward()
        np.testing.assert_allclose(xp.grad, xm.grad, atol=tol)
        for (name, pp), (_, pm) in zip(packed.named_parameters(),
                                       masked.named_parameters()):
            np.testing.assert_allclose(pp.grad, pm.grad, atol=tol,
                                       err_msg=name)

    @pytest.mark.parametrize("reverse", [False, True])
    def test_gru_reverse_direction(self, reverse):
        gru_packed = nn.GRU(3, 4, rng=np.random.default_rng(0),
                            reverse=reverse, packed=True)
        gru_masked = nn.GRU(3, 4, rng=np.random.default_rng(0),
                            reverse=reverse, packed=False)
        x = np.random.default_rng(2).normal(size=(3, 6, 3))
        outs_p, final_p = gru_packed(Tensor(x), lengths=self.LENGTHS[:3])
        outs_m, final_m = gru_masked(Tensor(x), lengths=self.LENGTHS[:3])
        np.testing.assert_allclose(final_p.data, final_m.data, atol=1e-12)
        for step_p, step_m in zip(outs_p, outs_m):
            np.testing.assert_allclose(step_p.data, step_m.data, atol=1e-12)

    def test_reverse_all_short_lengths(self):
        """Reverse scan where every length < time: the leading reverse steps
        have zero active rows and must emit the untouched initial state."""
        import repro.nn.functional as F
        x = np.random.default_rng(3).normal(size=(3, 6, 4))
        lens = np.array([2, 3, 1])
        gru_packed = nn.GRU(4, 3, rng=np.random.default_rng(0), reverse=True,
                            packed=True)
        gru_masked = nn.GRU(4, 3, rng=np.random.default_rng(0), reverse=True,
                            packed=False)
        outs_p, final_p = gru_packed(Tensor(x), lengths=lens)
        outs_m, final_m = gru_masked(Tensor(x), lengths=lens)
        np.testing.assert_allclose(final_p.data, final_m.data, atol=1e-12)
        for step_p, step_m in zip(outs_p, outs_m):
            np.testing.assert_allclose(step_p.data, step_m.data, atol=1e-12)

    def test_uniform_full_lengths_take_masked_path(self):
        """With nothing to skip, GRU.forward must not pay the packing
        overhead: the packed kernel is never entered."""
        import repro.nn.functional as F
        F.reset_packed_scan_counters()
        gru = nn.GRU(3, 4, rng=np.random.default_rng(0), packed=True)
        x = Tensor(np.random.default_rng(1).normal(size=(4, 5, 3)))
        gru(x, lengths=np.array([5, 5, 5, 5]))
        assert F.packed_scan_counters["calls"] == 0

    def test_zero_length_example(self):
        """A zero-length example keeps its initial (zero) state end to end."""
        gru = nn.GRU(3, 4, rng=np.random.default_rng(0), packed=True)
        x = Tensor(np.random.default_rng(1).normal(size=(3, 5, 3)))
        _, final = gru(x, lengths=np.array([0, 5, 2]))
        np.testing.assert_allclose(final.data[0], np.zeros(4))


class TestPackedFastPathCounters:
    """bucket_by_length loaders produce (near-)sorted batches; the packed
    scan's argsort must early-exit on them (satellite: sorted-input
    early-exit + regression that bucketed training hits it)."""

    def setup_method(self):
        import repro.nn.functional as F
        F.reset_packed_scan_counters()

    def test_ascending_batch_skips_argsort(self):
        import repro.nn.functional as F
        gru = nn.GRU(3, 4, rng=np.random.default_rng(0), packed=True)
        x = Tensor(np.random.default_rng(1).normal(size=(4, 6, 3)))
        gru(x, lengths=np.array([1, 2, 2, 5]))
        assert F.packed_scan_counters["calls"] == 1
        assert F.packed_scan_counters["presorted"] == 1
        assert F.packed_scan_counters["argsort"] == 0

    def test_descending_batch_skips_argsort(self):
        import repro.nn.functional as F
        gru = nn.GRU(3, 4, rng=np.random.default_rng(0), packed=True)
        x = Tensor(np.random.default_rng(1).normal(size=(4, 6, 3)))
        gru(x, lengths=np.array([5, 3, 3, 1]))
        assert F.packed_scan_counters["presorted"] == 1
        assert F.packed_scan_counters["argsort"] == 0

    def test_unsorted_batch_pays_argsort_once(self):
        import repro.nn.functional as F
        gru = nn.GRU(3, 4, rng=np.random.default_rng(0), packed=True)
        x = Tensor(np.random.default_rng(1).normal(size=(4, 6, 3)))
        gru(x, lengths=np.array([3, 5, 1, 4]))
        assert F.packed_scan_counters["argsort"] == 1


class TestRecurrentDtype:
    """The recurrent path must follow the module/default dtype end to end —
    no silent float64 upcasts from initial states or length masks."""

    def test_initial_state_follows_parameter_dtype(self):
        cell = nn.GRUCell(3, 4, rng=np.random.default_rng(0)).astype(np.float32)
        assert cell.initial_state(2).dtype == np.float32
        assert cell.dtype == np.float32

    def test_initial_state_follows_default_dtype(self):
        with nn.default_dtype(np.float32):
            cell = nn.GRUCell(3, 4, rng=np.random.default_rng(0))
            assert cell.initial_state(2).dtype == np.float32

    @pytest.mark.parametrize("fused", [True, False])
    def test_masked_gru_stays_float32(self, fused):
        """The length mask must not upcast a float32 graph (this was a live
        bug: masks were hardcoded float64)."""
        with nn.default_dtype(np.float32):
            gru = nn.GRU(3, 4, rng=np.random.default_rng(0), fused=fused)
            x = Tensor(np.random.default_rng(1).normal(size=(2, 5, 3)),
                       dtype=np.float32)
            outputs, final = gru(x, lengths=np.array([3, 5]))
            assert final.dtype == np.float32
            assert all(step.dtype == np.float32 for step in outputs)
            final.sum().backward()
            assert all(p.grad.dtype == np.float32 for p in gru.parameters())

    def test_bigru_float32_output(self):
        bigru = nn.BiGRU(3, 4, rng=np.random.default_rng(0)).astype(np.float32)
        x = Tensor(np.ones((2, 4, 3), dtype=np.float32))
        assert bigru(x, lengths=np.array([2, 4])).dtype == np.float32
