"""Tests for GRUCell / GRU / BiGRU."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


@pytest.fixture()
def cell():
    return nn.GRUCell(3, 4, rng=np.random.default_rng(0))


class TestGRUCell:
    def test_output_shape(self, cell):
        h = cell(Tensor(np.ones((2, 3))), cell.initial_state(2))
        assert h.shape == (2, 4)

    def test_initial_state_zero(self, cell):
        np.testing.assert_allclose(cell.initial_state(3).data, np.zeros((3, 4)))

    def test_state_bounded_by_tanh(self, cell):
        h = cell.initial_state(2)
        for _ in range(50):
            h = cell(Tensor(np.random.default_rng(1).normal(size=(2, 3)) * 5), h)
        assert np.all(np.abs(h.data) <= 1.0 + 1e-9)

    def test_gradients_reach_all_weights(self, cell):
        h = cell(Tensor(np.ones((2, 3))), cell.initial_state(2))
        h.sum().backward()
        for name, param in cell.named_parameters():
            assert param.grad is not None, name

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            nn.GRUCell(0, 4)

    def test_gradient_matches_finite_difference(self):
        """Full finite-difference check through one GRU step."""
        rng = np.random.default_rng(0)
        cell = nn.GRUCell(2, 3, rng=rng)
        x = rng.normal(size=(2, 2))
        h0 = rng.normal(size=(2, 3))

        def forward():
            return cell(Tensor(x), Tensor(h0)).data.sum()

        xt = Tensor(x, requires_grad=True)
        cell(xt, Tensor(h0)).sum().backward()
        analytic = xt.grad.copy()

        eps = 1e-6
        numeric = np.zeros_like(x)
        for i in range(x.size):
            orig = x.reshape(-1)[i]
            x.reshape(-1)[i] = orig + eps
            plus = forward()
            x.reshape(-1)[i] = orig - eps
            minus = forward()
            x.reshape(-1)[i] = orig
            numeric.reshape(-1)[i] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-7)


class TestGRU:
    def test_output_structure(self):
        gru = nn.GRU(3, 4, rng=np.random.default_rng(0))
        outputs, final = gru(Tensor(np.random.default_rng(1).normal(size=(2, 5, 3))))
        assert len(outputs) == 5
        assert final.shape == (2, 4)
        np.testing.assert_allclose(outputs[-1].data, final.data)

    def test_requires_3d_input(self):
        gru = nn.GRU(3, 4, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            gru(Tensor(np.ones((2, 3))))

    def test_length_masking_freezes_state(self):
        """Padded steps must not change an example's hidden state."""
        gru = nn.GRU(3, 4, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(1, 6, 3))
        # Run with length 3 vs truncated input of length 3: same final state.
        _, final_masked = gru(Tensor(x), lengths=np.array([3]))
        _, final_truncated = gru(Tensor(x[:, :3, :]))
        np.testing.assert_allclose(final_masked.data, final_truncated.data, atol=1e-12)

    def test_reverse_direction(self):
        gru_f = nn.GRU(3, 4, rng=np.random.default_rng(0))
        gru_r = nn.GRU(3, 4, rng=np.random.default_rng(0), reverse=True)
        x = np.random.default_rng(1).normal(size=(1, 4, 3))
        _, forward_final = gru_f(Tensor(x))
        _, reverse_final = gru_r(Tensor(x[:, ::-1, :].copy()))
        np.testing.assert_allclose(forward_final.data, reverse_final.data, atol=1e-12)


class TestBiGRU:
    def test_output_width(self):
        bigru = nn.BiGRU(3, 4, rng=np.random.default_rng(0))
        out = bigru(Tensor(np.random.default_rng(1).normal(size=(2, 5, 3))))
        assert out.shape == (2, 8)
        assert bigru.output_size == 8

    def test_gradients_flow_both_directions(self):
        bigru = nn.BiGRU(3, 4, rng=np.random.default_rng(0))
        out = bigru(Tensor(np.random.default_rng(1).normal(size=(2, 5, 3))))
        out.sum().backward()
        for name, param in bigru.named_parameters():
            assert param.grad is not None, name

    def test_variable_lengths_ignore_padding(self):
        bigru = nn.BiGRU(3, 4, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 5, 3))
        padded = x.copy()
        padded[:, 3:, :] = 99.0  # garbage in padding region
        out_clean = bigru(Tensor(x), lengths=np.array([3]))
        out_padded = bigru(Tensor(padded), lengths=np.array([3]))
        np.testing.assert_allclose(out_clean.data, out_padded.data, atol=1e-12)

    def test_direction_asymmetry(self):
        """Reversing the sequence changes the representation."""
        bigru = nn.BiGRU(3, 4, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(1, 4, 3))
        a = bigru(Tensor(x)).data
        b = bigru(Tensor(x[:, ::-1, :].copy())).data
        assert not np.allclose(a, b)
