"""Tests for loss functions."""

import numpy as np
import pytest

from repro import nn
from repro.nn.gradcheck import check_grad
from repro.nn.losses import bce_with_logits, binary_cross_entropy, cross_entropy, mse_loss
from repro.nn.tensor import Tensor


class TestBCEWithLogits:
    def test_matches_reference(self):
        logits = np.array([-2.0, 0.0, 3.0])
        targets = np.array([0.0, 1.0, 1.0])
        expected = -(targets * np.log(1 / (1 + np.exp(-logits)))
                     + (1 - targets) * np.log(1 - 1 / (1 + np.exp(-logits))))
        loss = bce_with_logits(Tensor(logits), targets, reduction="none")
        np.testing.assert_allclose(loss.data, expected, atol=1e-10)

    def test_stable_for_extreme_logits(self):
        loss = bce_with_logits(Tensor([-500.0, 500.0]), np.array([1.0, 0.0]), reduction="none")
        assert np.all(np.isfinite(loss.data))
        np.testing.assert_allclose(loss.data, [500.0, 500.0])

    def test_gradient(self):
        targets = np.array([0.0, 1.0, 0.5])
        check_grad(lambda t: bce_with_logits(t, targets, reduction="sum"),
                   np.random.default_rng(0).normal(size=3))

    def test_mean_reduction(self):
        logits = np.zeros(4)
        loss = bce_with_logits(Tensor(logits), np.zeros(4))
        np.testing.assert_allclose(loss.item(), np.log(2.0))

    def test_perfect_prediction_near_zero(self):
        loss = bce_with_logits(Tensor([20.0]), np.array([1.0]))
        assert loss.item() < 1e-8


class TestBinaryCrossEntropy:
    def test_on_probabilities(self):
        loss = binary_cross_entropy(Tensor([0.9]), np.array([1.0]))
        np.testing.assert_allclose(loss.item(), -np.log(0.9), atol=1e-10)

    def test_clamps_extremes(self):
        loss = binary_cross_entropy(Tensor([0.0, 1.0]), np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())

    def test_gradient(self):
        targets = np.array([1.0, 0.0])
        check_grad(lambda t: binary_cross_entropy(t, targets, reduction="sum"),
                   np.array([0.3, 0.7]))


class TestCrossEntropy:
    def test_uniform_logits(self):
        loss = cross_entropy(Tensor(np.zeros((2, 5))), np.array([0, 3]))
        np.testing.assert_allclose(loss.item(), np.log(5.0))

    def test_gradient(self):
        targets = np.array([0, 2, 1])
        check_grad(lambda t: cross_entropy(t, targets, reduction="sum"),
                   np.random.default_rng(0).normal(size=(3, 4)))

    def test_correct_class_decreases_loss(self):
        logits = np.zeros((1, 3))
        logits[0, 1] = 5.0
        low = cross_entropy(Tensor(logits), np.array([1])).item()
        high = cross_entropy(Tensor(logits), np.array([0])).item()
        assert low < high

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros(3)), np.array([0]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))

    def test_none_reduction_keeps_column_shape(self):
        """The unreduced loss is (n, 1) so per-example weights broadcast."""
        loss = cross_entropy(Tensor(np.zeros((4, 3))), np.array([0, 1, 2, 0]),
                             reduction="none")
        assert loss.shape == (4, 1)
        weighted = (loss * Tensor(np.ones((4, 1)))).mean()
        np.testing.assert_allclose(weighted.item(), np.log(3.0))


class TestMSE:
    def test_value(self):
        loss = mse_loss(Tensor([1.0, 2.0]), np.array([0.0, 0.0]))
        np.testing.assert_allclose(loss.item(), 2.5)

    def test_gradient(self):
        target = np.array([1.0, -1.0])
        check_grad(lambda t: mse_loss(t, target, reduction="sum"), np.array([0.5, 0.5]))


def test_unknown_reduction():
    with pytest.raises(ValueError):
        mse_loss(Tensor([1.0]), np.array([1.0]), reduction="bogus")
