"""Tests for learning-rate schedulers and early stopping."""

import numpy as np
import pytest

from repro import nn
from repro.nn.optim import SGD, CosineAnnealingLR, StepLR
from repro.nn.tensor import Parameter


@pytest.fixture()
def optimizer():
    return SGD([Parameter(np.ones(2))], lr=1.0)


class TestStepLR:
    def test_decays_at_boundaries(self, optimizer):
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        rates = [scheduler.step() for _ in range(5)]
        np.testing.assert_allclose(rates, [1.0, 0.1, 0.1, 0.01, 0.01])

    def test_applies_to_optimizer(self, optimizer):
        scheduler = StepLR(optimizer, step_size=1, gamma=0.5)
        scheduler.step()
        assert optimizer.lr == 0.5

    def test_validation(self, optimizer):
        with pytest.raises(ValueError):
            StepLR(optimizer, step_size=0)


class TestCosineLR:
    def test_endpoints(self, optimizer):
        scheduler = CosineAnnealingLR(optimizer, total_epochs=10, min_lr=0.1)
        rates = [scheduler.step() for _ in range(10)]
        assert rates[0] < 1.0
        np.testing.assert_allclose(rates[-1], 0.1, atol=1e-12)
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_clamps_past_horizon(self, optimizer):
        scheduler = CosineAnnealingLR(optimizer, total_epochs=2, min_lr=0.0)
        for _ in range(5):
            rate = scheduler.step()
        assert rate == pytest.approx(0.0)

    def test_validation(self, optimizer):
        with pytest.raises(ValueError):
            CosineAnnealingLR(optimizer, total_epochs=0)


class TestTrainerIntegration:
    def test_early_stopping_restores_best(self, train_dataset, test_dataset,
                                          tiny_model_config):
        from repro.models import DNNRanker
        from repro.training import TrainConfig, Trainer, evaluate
        model = DNNRanker(train_dataset.spec, tiny_model_config)
        config = TrainConfig(epochs=6, batch_size=512, learning_rate=3e-3,
                             early_stop_patience=2)
        result = Trainer(model, config).fit(train_dataset, eval_dataset=test_dataset)
        # Final metrics come from the best epoch, and the restored weights
        # actually evaluate to that AUC.
        best = max(r.eval_auc for r in result.history)
        assert result.final_auc == pytest.approx(best)
        assert evaluate(model, test_dataset)["auc"] == pytest.approx(best, abs=1e-9)

    def test_lr_schedule_option(self, train_dataset, tiny_model_config):
        from repro.models import DNNRanker
        from repro.training import TrainConfig, Trainer
        model = DNNRanker(train_dataset.spec, tiny_model_config)
        config = TrainConfig(epochs=2, batch_size=1024, learning_rate=1e-2,
                             lr_schedule="cosine")
        trainer = Trainer(model, config)
        trainer.fit(train_dataset)
        assert trainer.optimizer.lr < 1e-2

    def test_invalid_schedule_rejected(self):
        from repro.training import TrainConfig
        with pytest.raises(ValueError):
            TrainConfig(lr_schedule="linear")
        with pytest.raises(ValueError):
            TrainConfig(early_stop_patience=0)
