"""Autograd engine tests: op semantics + finite-difference gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import nn
from repro.nn.gradcheck import check_grad
from repro.nn.tensor import Tensor, _unbroadcast, as_tensor, concatenate, stack


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_scalar(self):
        assert as_tensor(2.5).data == 2.5

    def test_item(self):
        assert Tensor([3.0]).item() == 3.0

    def test_detach_breaks_graph(self):
        t = Tensor([1.0], requires_grad=True)
        d = (t * 2).detach()
        assert not d.requires_grad

    def test_backward_requires_grad_flag(self):
        t = Tensor([1.0])
        with pytest.raises(RuntimeError):
            t.backward()

    def test_backward_shape_mismatch(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            t.backward(np.ones(3))

    def test_grad_accumulates(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        (t * 2).sum().backward()
        (t * 3).sum().backward()
        np.testing.assert_allclose(t.grad, [5.0, 5.0])

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_no_grad_disables_graph(self):
        t = Tensor([1.0], requires_grad=True)
        with nn.no_grad():
            out = t * 2
        assert not out.requires_grad

    def test_no_grad_restores(self):
        assert nn.is_grad_enabled()
        with nn.no_grad():
            assert not nn.is_grad_enabled()
        assert nn.is_grad_enabled()

    def test_parameter_requires_grad_inside_no_grad(self):
        with nn.no_grad():
            p = nn.Parameter(np.ones(3))
        assert p.requires_grad

    def test_repr(self):
        assert "requires_grad=True" in repr(Tensor([1.0], requires_grad=True))
        assert "Parameter(shape=(2,))" == repr(nn.Parameter(np.ones(2)))


class TestUnbroadcast:
    def test_no_op_when_shapes_match(self):
        g = np.ones((2, 3))
        assert _unbroadcast(g, (2, 3)) is g

    def test_sums_prepended_axis(self):
        g = np.ones((4, 2, 3))
        np.testing.assert_allclose(_unbroadcast(g, (2, 3)), np.full((2, 3), 4.0))

    def test_sums_stretched_axis(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(_unbroadcast(g, (2, 1)), np.full((2, 1), 3.0))

    def test_scalar_target(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(_unbroadcast(g, ()), 6.0)

    def test_scalar_to_matrix_roundtrip(self):
        """scalar (op) matrix: the scalar's gradient is the full sum."""
        s = Tensor(2.0, requires_grad=True)
        (s * Tensor(np.arange(6.0).reshape(2, 3))).sum().backward()
        np.testing.assert_allclose(s.grad, 15.0)
        assert s.grad.shape == ()

    def test_middle_size1_axis(self):
        g = np.ones((2, 4, 3))
        out = _unbroadcast(g, (2, 1, 3))
        assert out.shape == (2, 1, 3)
        np.testing.assert_allclose(out, np.full((2, 1, 3), 4.0))

    def test_multiple_size1_axes(self):
        g = np.arange(24.0).reshape(2, 3, 4)
        out = _unbroadcast(g, (1, 3, 1))
        assert out.shape == (1, 3, 1)
        np.testing.assert_allclose(out, g.sum(axis=(0, 2), keepdims=True))

    def test_prepended_and_stretched_combined(self):
        g = np.ones((5, 2, 3))
        out = _unbroadcast(g, (1, 3))
        assert out.shape == (1, 3)
        np.testing.assert_allclose(out, np.full((1, 3), 10.0))

    def test_prepended_size1_dim_not_stretched(self):
        """A (1, 3) target whose size-1 axis was never stretched stays intact."""
        g = np.ones((1, 3))
        np.testing.assert_allclose(_unbroadcast(g, (1, 3)), np.ones((1, 3)))

    def test_column_vs_row_broadcast_gradients(self):
        a = Tensor(np.ones((3, 1)), requires_grad=True)
        b = Tensor(np.ones((1, 4)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((3, 1), 4.0))
        np.testing.assert_allclose(b.grad, np.full((1, 4), 3.0))

    def test_gradcheck_scalar_broadcast(self):
        check_grad(lambda t: t * Tensor(np.random.default_rng(3).normal(size=(2, 3))),
                   np.array(1.5))


class TestDtype:
    def test_default_is_float64(self):
        assert nn.get_default_dtype() == np.float64
        assert Tensor([1, 2]).dtype == np.float64

    def test_set_default_dtype_rejects_non_float(self):
        with pytest.raises(ValueError):
            nn.set_default_dtype(np.int64)

    def test_default_dtype_context(self):
        with nn.default_dtype(np.float32):
            assert nn.get_default_dtype() == np.float32
            assert Tensor([1.0]).dtype == np.float32
            assert nn.Parameter(np.zeros(2)).dtype == np.float32
        assert nn.get_default_dtype() == np.float64

    def test_float_arrays_keep_their_dtype(self):
        assert Tensor(np.zeros(2, dtype=np.float32)).dtype == np.float32
        assert Tensor(np.zeros(2, dtype=np.float64)).dtype == np.float64

    def test_explicit_dtype_wins(self):
        assert Tensor(np.zeros(2), dtype=np.float32).dtype == np.float32
        assert as_tensor([1.0], dtype=np.float32).dtype == np.float32

    def test_scalar_operand_does_not_promote_float32(self):
        t = Tensor(np.ones(3, dtype=np.float32))
        assert (t * 2.0).dtype == np.float32
        assert (1.0 + t).dtype == np.float32
        assert (t / 3.0).dtype == np.float32
        assert (5.0 - t).dtype == np.float32

    def test_tensor_tensor_promotes_to_float64(self):
        a = Tensor(np.ones(3, dtype=np.float32))
        b = Tensor(np.ones(3, dtype=np.float64))
        assert (a + b).dtype == np.float64
        assert (a @ b).dtype == np.float64

    def test_float32_graph_stays_float32(self):
        t = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        out = (t * 2.0).relu().exp().sum()
        assert out.dtype == np.float32
        out.backward()
        assert t.grad.dtype == np.float32

    def test_astype_is_differentiable(self):
        t = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        cast = t.astype(np.float64)
        assert cast.dtype == np.float64
        (cast * 2.0).sum().backward()
        assert t.grad.dtype == np.float32
        np.testing.assert_allclose(t.grad, [2.0, 2.0, 2.0])

    def test_astype_noop_returns_self(self):
        t = Tensor(np.ones(3))
        assert t.astype(np.float64) is t

    def test_module_astype_roundtrip(self):
        tower = nn.MLP(4, [8], 1, rng=np.random.default_rng(0))
        tower.astype(np.float32)
        assert all(p.dtype == np.float32 for p in tower.parameters())
        out = tower(Tensor(np.ones((2, 4), dtype=np.float32)))
        assert out.dtype == np.float32
        tower.astype(np.float64)
        assert all(p.dtype == np.float64 for p in tower.parameters())

    def test_backward_seed_grad_cast_to_tensor_dtype(self):
        t = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        (t * 1.0).backward(np.ones(2, dtype=np.float64))
        assert t.grad.dtype == np.float32


class TestArithmeticGradients:
    def test_add(self):
        check_grad(lambda t: t + 3.0, np.random.default_rng(0).normal(size=(3, 4)))

    def test_add_broadcast(self):
        b = Tensor(np.random.default_rng(1).normal(size=(4,)))
        check_grad(lambda t: (t + b) ** 2, np.random.default_rng(0).normal(size=(3, 4)))

    def test_sub(self):
        check_grad(lambda t: (5.0 - t) * t, np.random.default_rng(0).normal(size=(2, 3)))

    def test_mul(self):
        c = Tensor(np.random.default_rng(1).normal(size=(2, 3)))
        check_grad(lambda t: t * c * t, np.random.default_rng(0).normal(size=(2, 3)))

    def test_div(self):
        denominator = Tensor(np.random.default_rng(1).normal(size=(2, 3)) + 3.0)
        check_grad(lambda t: t / denominator, np.random.default_rng(0).normal(size=(2, 3)))

    def test_rdiv(self):
        check_grad(lambda t: 2.0 / t, np.abs(np.random.default_rng(0).normal(size=(2, 3))) + 1.0)

    def test_neg(self):
        check_grad(lambda t: -t * 2.0, np.random.default_rng(0).normal(size=(3,)))

    def test_pow(self):
        check_grad(lambda t: t ** 3, np.random.default_rng(0).normal(size=(2, 2)))

    def test_pow_non_scalar_raises(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_both_sides_get_grads(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (a * b).backward()
        assert a.grad[0] == 3.0 and b.grad[0] == 2.0


class TestMatmulGradients:
    def test_2d_2d(self):
        w = Tensor(np.random.default_rng(1).normal(size=(4, 5)))
        check_grad(lambda t: t @ w, np.random.default_rng(0).normal(size=(3, 4)))

    def test_weight_side(self):
        x = np.random.default_rng(0).normal(size=(3, 4))
        check_grad(lambda w: Tensor(x) @ w, np.random.default_rng(1).normal(size=(4, 5)))

    def test_1d_2d(self):
        w = Tensor(np.random.default_rng(1).normal(size=(4, 5)))
        check_grad(lambda t: t @ w, np.random.default_rng(0).normal(size=(4,)))

    def test_2d_1d(self):
        v = Tensor(np.random.default_rng(1).normal(size=(4,)))
        check_grad(lambda t: t @ v, np.random.default_rng(0).normal(size=(3, 4)))

    def test_matmul_value(self):
        a = np.random.default_rng(0).normal(size=(2, 3))
        b = np.random.default_rng(1).normal(size=(3, 2))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)


class TestElementwiseGradients:
    def test_exp(self):
        check_grad(lambda t: t.exp(), np.random.default_rng(0).normal(size=(2, 3)))

    def test_log(self):
        check_grad(lambda t: t.log(), np.abs(np.random.default_rng(0).normal(size=(2, 3))) + 0.5)

    def test_sqrt(self):
        check_grad(lambda t: t.sqrt(), np.abs(np.random.default_rng(0).normal(size=(5,))) + 1.0)

    def test_tanh(self):
        check_grad(lambda t: t.tanh(), np.random.default_rng(0).normal(size=(2, 3)))

    def test_sigmoid(self):
        check_grad(lambda t: t.sigmoid(), np.random.default_rng(0).normal(size=(2, 3)))

    def test_sigmoid_extreme_values_stable(self):
        out = Tensor([-800.0, 800.0]).sigmoid()
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)
        assert np.all(np.isfinite(out.data))

    def test_relu(self):
        check_grad(lambda t: t.relu(), np.random.default_rng(0).normal(size=(3, 3)) + 0.05)

    def test_relu_zero_gradient_in_negative_region(self):
        t = Tensor([-1.0, 2.0], requires_grad=True)
        t.relu().sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0])

    def test_abs(self):
        check_grad(lambda t: t.abs(), np.random.default_rng(0).normal(size=(4,)) + 0.1)

    def test_clip_values(self):
        t = Tensor([-2.0, 0.5, 3.0])
        np.testing.assert_allclose(t.clip(0.0, 1.0).data, [0.0, 0.5, 1.0])

    def test_clip_gradient_masked(self):
        t = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        t.clip(0.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_all(self):
        check_grad(lambda t: t.sum() * 2.0, np.random.default_rng(0).normal(size=(2, 3)))

    def test_sum_axis(self):
        check_grad(lambda t: t.sum(axis=1) ** 2, np.random.default_rng(0).normal(size=(2, 3)))

    def test_sum_axis_keepdims(self):
        check_grad(lambda t: t.sum(axis=0, keepdims=True) * t,
                   np.random.default_rng(0).normal(size=(2, 3)))

    def test_sum_tuple_axis(self):
        check_grad(lambda t: t.sum(axis=(1, 2)), np.random.default_rng(0).normal(size=(2, 3, 4)))

    def test_mean(self):
        x = np.random.default_rng(0).normal(size=(4, 5))
        assert np.isclose(Tensor(x).mean().item(), x.mean())
        check_grad(lambda t: t.mean(axis=1), x)

    def test_max_all(self):
        check_grad(lambda t: t.max(), np.array([[1.0, 5.0], [2.0, 3.0]]))

    def test_max_axis(self):
        check_grad(lambda t: t.max(axis=1), np.array([[1.0, 5.0], [7.0, 3.0]]))

    def test_max_splits_grad_among_ties(self):
        t = Tensor([2.0, 2.0, 1.0], requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.5, 0.5, 0.0])

    def test_min(self):
        x = np.array([[1.0, 5.0], [7.0, 3.0]])
        np.testing.assert_allclose(Tensor(x).min(axis=1).data, [1.0, 3.0])


class TestShapeOps:
    def test_reshape(self):
        check_grad(lambda t: t.reshape(6) * Tensor(np.arange(6.0)),
                   np.random.default_rng(0).normal(size=(2, 3)))

    def test_reshape_tuple_arg(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.reshape((3, 2)).shape == (3, 2)

    def test_flatten(self):
        assert Tensor(np.zeros((2, 3))).flatten().shape == (6,)

    def test_transpose(self):
        check_grad(lambda t: t.T @ Tensor(np.random.default_rng(1).normal(size=(2, 2))),
                   np.random.default_rng(0).normal(size=(2, 3)))

    def test_transpose_axes(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 4))
        check_grad(lambda t: t.transpose((2, 0, 1)).sum(axis=0), x)

    def test_getitem_slice(self):
        check_grad(lambda t: t[:, 1:3] ** 2, np.random.default_rng(0).normal(size=(3, 4)))

    def test_getitem_int_row(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        t[0].sum().backward()
        np.testing.assert_allclose(t.grad, [[1, 1, 1], [0, 0, 0]])

    def test_take_rows_gather(self):
        t = Tensor(np.arange(8.0).reshape(4, 2), requires_grad=True)
        out = t.take_rows(np.array([1, 1, 3]))
        assert out.shape == (3, 2)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [[0, 0], [2, 2], [0, 0], [1, 1]])

    def test_concatenate(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.full((2, 3), 2.0), requires_grad=True)
        out = concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * Tensor(np.arange(10.0).reshape(2, 5))).sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1], [5, 6]])
        np.testing.assert_allclose(b.grad, [[2, 3, 4], [7, 8, 9]])

    def test_stack(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))


class TestComparisons:
    def test_gt_returns_numpy(self):
        result = Tensor([1.0, 3.0]) > 2.0
        assert isinstance(result, np.ndarray)
        np.testing.assert_array_equal(result, [False, True])

    def test_comparison_with_tensor(self):
        np.testing.assert_array_equal(Tensor([1.0]) <= Tensor([1.0]), [True])


class TestDeepGraph:
    def test_long_chain_does_not_recurse(self):
        t = Tensor([1.0], requires_grad=True)
        out = t
        for _ in range(3000):
            out = out * 1.0001
        out.backward()
        assert t.grad is not None and np.isfinite(t.grad).all()

    def test_diamond_graph_accumulates_once_per_path(self):
        t = Tensor([2.0], requires_grad=True)
        a = t * 3.0
        b = t * 4.0
        (a + b).backward()
        np.testing.assert_allclose(t.grad, [7.0])


@settings(max_examples=25, deadline=None)
@given(hnp.arrays(np.float64, hnp.array_shapes(min_dims=1, max_dims=3, max_side=5),
                  elements=st.floats(-3, 3)))
def test_property_sigmoid_tanh_identity(x):
    """sigmoid(2x) == (tanh(x) + 1) / 2 for all finite inputs."""
    left = Tensor(x * 2).sigmoid().data
    right = (np.tanh(x) + 1.0) / 2.0
    np.testing.assert_allclose(left, right, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(hnp.arrays(np.float64, (4, 3), elements=st.floats(-5, 5)))
def test_property_sum_gradient_is_ones(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(x))


@settings(max_examples=20, deadline=None)
@given(hnp.arrays(np.float64, (3, 4), elements=st.floats(-2, 2, allow_nan=False)),
       hnp.arrays(np.float64, (4, 2), elements=st.floats(-2, 2, allow_nan=False)))
def test_property_matmul_grad_matches_numeric(a, b):
    bt = Tensor(b)
    check_grad(lambda t: t @ bt, a, tol=1e-6)
