"""Tests for repro.nn.quantize — the int8 per-channel weight kernel family.

Covers the quantization math (round-trip error bound, the f32-accumulation
identity the blocked kernel relies on), eligibility scoping (only Linear
weights inside MLP towers), hydration semantics (NaN-poisoned placeholders,
inference-only models), and the compiled-plan quantized lane's parity with
a dequantized full-precision plan.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn.quantize import (QMAX, QuantizedWeight, hydrate_quantized,
                               is_quantized_serving, quantizable_weights,
                               quantize_module, quantize_weight)

RNG = np.random.default_rng


class TestQuantizeWeight:
    def test_round_trip_error_bounded_by_half_step(self):
        w = RNG(0).normal(size=(64, 32)).astype(np.float32)
        qw = quantize_weight(w)
        # Symmetric rounding: |W - dequant(W)| <= scale/2 per channel.
        err = np.abs(qw.dequantize() - w)
        assert np.all(err <= qw.scales[None, :] / 2 + 1e-7)

    def test_layout_is_transposed_contiguous_int8(self):
        qw = quantize_weight(RNG(0).normal(size=(48, 16)).astype(np.float32))
        assert qw.q.shape == (16, 48)           # (out, in)
        assert qw.q.dtype == np.int8
        assert qw.q.flags["C_CONTIGUOUS"]
        assert qw.shape == (48, 16)             # logical (in, out)
        assert qw.scales.dtype == np.float32
        assert np.abs(qw.q).max() <= QMAX

    def test_zero_channel_round_trips_exactly(self):
        w = RNG(0).normal(size=(8, 4)).astype(np.float32)
        w[:, 2] = 0.0
        qw = quantize_weight(w)
        assert qw.scales[2] == 1.0              # no divide-by-zero
        np.testing.assert_array_equal(qw.dequantize()[:, 2], 0.0)

    def test_matmul_into_matches_dequantized_matmul(self):
        """The blocked int8 kernel computes (x @ q.T) * s — identical to
        x @ dequant(W) up to f32 summation order."""
        w = RNG(0).normal(size=(200, 70)).astype(np.float32)
        qw = quantize_weight(w)
        x = RNG(1).normal(size=(5, 200)).astype(np.float32)
        out = np.empty((5, 70), dtype=np.float32)
        scratch = np.empty(qw.scratch_shape(), dtype=np.float32)
        qw.matmul_into(x, out, scratch)
        np.testing.assert_allclose(out, x @ qw.dequantize(), rtol=1e-5,
                                   atol=1e-5)

    def test_blocked_kernel_spans_multiple_blocks(self):
        """Force block_rows < out_features so the block loop iterates."""
        w = RNG(0).normal(size=(16, 40)).astype(np.float32)
        qw = quantize_weight(w)
        qw.block_rows = 16                      # 3 blocks over 40 channels
        x = RNG(1).normal(size=(3, 16)).astype(np.float32)
        out = np.empty((3, 40), dtype=np.float32)
        scratch = np.empty(qw.scratch_shape(), dtype=np.float32)
        qw.matmul_into(x, out, scratch)
        np.testing.assert_allclose(out, x @ qw.dequantize(), rtol=1e-5,
                                   atol=1e-5)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            quantize_weight(np.zeros(4, dtype=np.float32))
        with pytest.raises(ValueError):
            QuantizedWeight(np.zeros((2, 3), dtype=np.float32),
                            np.ones(2, dtype=np.float32))
        with pytest.raises(ValueError):
            QuantizedWeight(np.zeros((2, 3), dtype=np.int8),
                            np.ones(3, dtype=np.float32))


class TestEligibility:
    def test_bare_mlp_linears_eligible(self):
        tower = nn.MLP(6, [8, 4], 1, rng=RNG(0)).astype(np.float32)
        assert set(quantizable_weights(tower)) \
            == {"0.weight", "2.weight", "4.weight"}

    def test_gates_embeddings_and_grus_excluded(self):
        """Only MLP-resident Linears quantize; everything whose scorer
        reads weight.data directly stays f32."""

        class Model(nn.Module):
            def __init__(self):
                super().__init__()
                self.tower = nn.MLP(6, [8], 1, rng=RNG(0))
                self.gate = nn.Linear(6, 4, rng=RNG(1))      # bare Linear
                self.table = nn.Embedding(10, 4, rng=RNG(2))
                self.encoder = nn.BiGRU(4, 3, rng=RNG(3))

        eligible = quantizable_weights(Model())
        assert set(eligible) == {"tower.0.weight", "tower.2.weight"}

    def test_quantize_module_requires_float32(self):
        tower = nn.MLP(4, [6], 1, rng=RNG(0))   # float64 default
        with pytest.raises(ValueError, match="float32"):
            quantize_module(tower)


class TestHydration:
    def _tower(self):
        return nn.MLP(5, [8], 2, rng=RNG(0)).astype(np.float32)

    def _split(self, model):
        quantized = quantize_module(model)
        state = {name: param.data.copy()
                 for name, param in model.named_parameters()
                 if name not in quantized}
        return state, quantized

    def test_hydrated_model_is_inference_only(self):
        source = self._tower()
        state, quantized = self._split(source)
        target = self._tower()
        hydrate_quantized(target, state, quantized)
        assert is_quantized_serving(target)
        assert not target.training
        # Replaced weights are zero-memory NaN broadcasts: any bypass path
        # poisons its output instead of serving garbage.
        for name in quantized:
            module = quantizable_weights(target)[name]
            assert np.isnan(module.weight.data).all()
            assert module.weight.data.base is not None
        # Passthrough params (biases) carried over exactly.
        assert all(not np.isnan(p.data).any()
                   for n, p in target.named_parameters() if n not in quantized)

    def test_compiled_plan_matches_dequantized_reference(self):
        """The quantized compiled plan must match a full-precision plan
        over the *dequantized* weights to f32 summation tolerance."""
        source = self._tower()
        state, quantized = self._split(source)
        target = self._tower()
        hydrate_quantized(target, state, quantized)
        # Build the dequantized reference in the source architecture.
        reference = self._tower()
        ref_state = dict(state)
        for name, qw in quantized.items():
            ref_state[name] = qw.dequantize()
        reference.load_state_dict(ref_state)
        x = RNG(5).normal(size=(7, 5)).astype(np.float32)
        got = target.compiled()(x)
        want = reference.compiled()(x)
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-6)

    def test_mismatched_quantized_names_rejected(self):
        source = self._tower()
        state, quantized = self._split(source)
        quantized["nope.weight"] = quantized.pop(next(iter(quantized)))
        with pytest.raises(KeyError, match="architecture"):
            hydrate_quantized(self._tower(), state, quantized)

    def test_missing_passthrough_rejected(self):
        source = self._tower()
        state, quantized = self._split(source)
        state.pop(next(iter(state)))
        with pytest.raises(KeyError, match="missing"):
            hydrate_quantized(self._tower(), state, quantized)

    def test_shape_mismatch_rejected(self):
        source = self._tower()
        state, quantized = self._split(source)
        wrong = nn.MLP(5, [16], 2, rng=RNG(1)).astype(np.float32)
        with pytest.raises((ValueError, KeyError)):
            hydrate_quantized(wrong, state, quantized)

    def test_split_plan_guard(self):
        """SplitMLP snapshots the full-precision first layer — it must
        refuse a quantized tower instead of snapshotting NaNs."""
        from repro.nn.infer import SplitMLP
        source = self._tower()
        state, quantized = self._split(source)
        target = self._tower()
        hydrate_quantized(target, state, quantized)
        with pytest.raises(ValueError, match="quantized"):
            SplitMLP(target, static_columns=np.arange(3),
                     dynamic_columns=np.arange(3, 5))
