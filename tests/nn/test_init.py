"""Tests for weight initializers."""

import numpy as np
import pytest

from repro.nn import init


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestFanComputation:
    def test_2d(self):
        assert init._fan((10, 20)) == (10, 20)

    def test_1d(self):
        assert init._fan((7,)) == (7, 7)

    def test_scalar_rejected(self):
        with pytest.raises(ValueError):
            init._fan(())


class TestDistributions:
    def test_xavier_uniform_bounds(self, rng):
        w = init.xavier_uniform((100, 100), rng)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= limit

    def test_xavier_normal_std(self, rng):
        w = init.xavier_normal((500, 500), rng)
        assert abs(w.std() - np.sqrt(2.0 / 1000)) < 1e-3

    def test_he_normal_std(self, rng):
        w = init.he_normal((1000, 10), rng)
        assert abs(w.std() - np.sqrt(2.0 / 1000)) < 2e-3

    def test_he_uniform_bounds(self, rng):
        w = init.he_uniform((100, 5), rng)
        assert np.abs(w).max() <= np.sqrt(6.0 / 100)

    def test_normal_std_param(self, rng):
        w = init.normal((10000,), rng, std=0.5)
        assert abs(w.std() - 0.5) < 0.02

    def test_uniform_range(self, rng):
        w = init.uniform((1000,), rng, low=-1.0, high=2.0)
        assert w.min() >= -1.0 and w.max() <= 2.0

    def test_zeros_and_ones(self):
        np.testing.assert_allclose(init.zeros((2, 3)), 0.0)
        np.testing.assert_allclose(init.ones((2, 3)), 1.0)

    def test_deterministic_given_seed(self):
        a = init.he_normal((5, 5), np.random.default_rng(42))
        b = init.he_normal((5, 5), np.random.default_rng(42))
        np.testing.assert_allclose(a, b)
