"""Tests for repro.nn.functional: softmax variants, dropout, gathers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import nn
from repro.nn import functional as F
from repro.nn.gradcheck import check_grad
from repro.nn.tensor import Tensor


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = np.random.default_rng(0).normal(size=(5, 7))
        probs = F.softmax(Tensor(x), axis=1).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5))

    def test_invariant_to_shift(self):
        x = np.random.default_rng(0).normal(size=(2, 4))
        a = F.softmax(Tensor(x), axis=1).data
        b = F.softmax(Tensor(x + 100.0), axis=1).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_gradient(self):
        c = Tensor(np.random.default_rng(1).normal(size=(3, 4)))
        check_grad(lambda t: F.softmax(t, axis=1) * c,
                   np.random.default_rng(0).normal(size=(3, 4)))

    def test_neg_inf_gets_zero_probability(self):
        x = np.array([[0.0, -np.inf, 1.0]])
        probs = F.softmax(Tensor(x), axis=1).data
        assert probs[0, 1] == 0.0
        np.testing.assert_allclose(probs.sum(), 1.0)

    def test_huge_logits_stable(self):
        probs = F.softmax(Tensor([[1000.0, 999.0]]), axis=1).data
        assert np.all(np.isfinite(probs))

    def test_axis_zero(self):
        x = np.random.default_rng(0).normal(size=(3, 2))
        probs = F.softmax(Tensor(x), axis=0).data
        np.testing.assert_allclose(probs.sum(axis=0), np.ones(2))


class TestLogSoftmax:
    def test_matches_log_of_softmax(self):
        x = np.random.default_rng(0).normal(size=(3, 5))
        np.testing.assert_allclose(F.log_softmax(Tensor(x), axis=1).data,
                                   np.log(F.softmax(Tensor(x), axis=1).data),
                                   atol=1e-12)

    def test_gradient(self):
        check_grad(lambda t: F.log_softmax(t, axis=1)[:, :2],
                   np.random.default_rng(0).normal(size=(3, 4)))

    def test_stable_for_large_inputs(self):
        out = F.log_softmax(Tensor([[1000.0, 0.0]]), axis=1).data
        assert np.all(np.isfinite(out))


class TestMaskedSoftmax:
    def test_masked_entries_zero(self):
        x = np.random.default_rng(0).normal(size=(2, 4))
        mask = np.array([[True, False, True, False], [False, True, True, False]])
        probs = F.masked_softmax(Tensor(x), mask, axis=1).data
        assert np.all(probs[~mask] == 0.0)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(2))

    def test_gradient_only_through_unmasked(self):
        x = np.random.default_rng(0).normal(size=(2, 4))
        mask = np.array([[True, True, False, False], [True, False, True, False]])
        check_grad(lambda t: F.masked_softmax(t, mask, axis=1) ** 2, x)

    def test_masked_positions_get_zero_gradient(self):
        x = Tensor(np.random.default_rng(0).normal(size=(1, 4)), requires_grad=True)
        mask = np.array([[True, True, False, False]])
        (F.masked_softmax(x, mask, axis=1) ** 2).sum().backward()
        np.testing.assert_allclose(x.grad[0, 2:], [0.0, 0.0])


class TestScatterTopkMask:
    def test_basic(self):
        logits = np.array([[1.0, 3.0, 2.0], [5.0, 0.0, -1.0]])
        mask = F.scatter_topk_mask(logits, 2)
        np.testing.assert_array_equal(mask, [[False, True, True], [True, True, False]])

    def test_k_equals_n(self):
        mask = F.scatter_topk_mask(np.zeros((2, 3)), 3)
        assert mask.all()

    def test_exactly_k_per_row(self):
        logits = np.random.default_rng(0).normal(size=(10, 8))
        for k in (1, 3, 8):
            assert (F.scatter_topk_mask(logits, k).sum(axis=1) == k).all()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            F.scatter_topk_mask(np.zeros((2, 3)), 0)
        with pytest.raises(ValueError):
            F.scatter_topk_mask(np.zeros((2, 3)), 4)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            F.scatter_topk_mask(np.zeros(3), 1)

    @settings(max_examples=30, deadline=None)
    @given(hnp.arrays(np.float64, (5, 6), elements=st.floats(-10, 10)),
           st.integers(1, 6))
    def test_property_mask_selects_largest(self, logits, k):
        mask = F.scatter_topk_mask(logits, k)
        for row, row_mask in zip(logits, mask):
            selected_min = row[row_mask].min()
            unselected = row[~row_mask]
            if unselected.size:
                assert selected_min >= unselected.max() - 1e-12


class TestTakeAlongAxis:
    def test_forward_matches_numpy(self):
        x = np.random.default_rng(0).normal(size=(3, 5))
        idx = np.array([[0, 2], [1, 1], [4, 0]])
        out = F.take_along_axis(Tensor(x), idx, axis=1)
        np.testing.assert_allclose(out.data, np.take_along_axis(x, idx, axis=1))

    def test_gradient_scatter_adds_duplicates(self):
        x = Tensor(np.zeros((1, 3)), requires_grad=True)
        idx = np.array([[1, 1]])
        F.take_along_axis(x, idx, axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 2.0, 0.0]])

    def test_gradient_numeric(self):
        idx = np.array([[0, 2], [1, 1]])
        check_grad(lambda t: F.take_along_axis(t, idx, axis=1) ** 2,
                   np.random.default_rng(0).normal(size=(2, 3)))

    def test_3d_axis1(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 4))
        idx = np.zeros((2, 1, 4), dtype=np.int64)
        out = F.take_along_axis(Tensor(x), idx, axis=1)
        np.testing.assert_allclose(out.data, x[:, :1, :])


class TestDropout:
    def test_eval_mode_identity(self):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.5, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_zero_p_identity(self):
        x = Tensor(np.ones((4, 4)))
        assert F.dropout(x, 0.0, training=True) is x

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)


class TestOneHot:
    def test_basic(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)

    def test_preserves_leading_shape(self):
        out = F.one_hot(np.zeros((2, 3), dtype=int), 4)
        assert out.shape == (2, 3, 4)


class TestLinearRelu:
    def test_matches_unfused(self):
        rng = np.random.default_rng(0)
        x, w, b = rng.normal(size=(6, 4)), rng.normal(size=(4, 3)), rng.normal(size=3)
        fused = F.linear_relu(Tensor(x), Tensor(w), Tensor(b)).data
        unfused = np.maximum(x @ w + b, 0.0)
        np.testing.assert_allclose(fused, unfused, atol=0)

    def test_no_bias(self):
        rng = np.random.default_rng(0)
        x, w = rng.normal(size=(2, 4)), rng.normal(size=(4, 3))
        np.testing.assert_allclose(F.linear_relu(Tensor(x), Tensor(w)).data,
                                   np.maximum(x @ w, 0.0))

    def test_all_three_gradients(self):
        rng = np.random.default_rng(0)
        x, w, b = rng.normal(size=(5, 4)), rng.normal(size=(4, 3)), rng.normal(size=3)
        wt, bt = Tensor(w), Tensor(b)
        check_grad(lambda t: F.linear_relu(t, wt, bt), x)
        check_grad(lambda t: F.linear_relu(Tensor(x), t, bt), w)
        check_grad(lambda t: F.linear_relu(Tensor(x), wt, t), b)

    def test_single_graph_node(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        out = F.linear_relu(x, Tensor(np.ones((3, 2))), Tensor(np.zeros(2)))
        assert out._op == "linear_relu"
        assert x in out._prev

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            F.linear_relu(Tensor(np.ones(3)), Tensor(np.ones((3, 2))))
        with pytest.raises(ValueError):
            F.linear_relu(Tensor(np.ones((2, 3))), Tensor(np.ones((4, 2))))

    def test_float32_stays_float32(self):
        out = F.linear_relu(Tensor(np.ones((2, 3), dtype=np.float32)),
                            Tensor(np.ones((3, 2), dtype=np.float32)),
                            Tensor(np.zeros(2, dtype=np.float32)))
        assert out.dtype == np.float32


class TestSoftmaxCrossEntropy:
    def test_matches_unfused_composition(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(5, 7))
        targets = rng.integers(0, 7, size=5)
        fused = F.softmax_cross_entropy(Tensor(logits), targets, reduction="none").data
        log_probs = F.log_softmax(Tensor(logits), axis=1).data
        expected = -log_probs[np.arange(5), targets]
        np.testing.assert_allclose(fused, expected, atol=1e-12)

    def test_gradient_all_reductions(self):
        targets = np.array([0, 2, 1])
        for reduction in ("mean", "sum", "none"):
            check_grad(lambda t, r=reduction: F.softmax_cross_entropy(t, targets, reduction=r),
                       np.random.default_rng(0).normal(size=(3, 4)))

    def test_stable_for_huge_logits(self):
        loss = F.softmax_cross_entropy(Tensor([[1000.0, 0.0]]), np.array([0]))
        assert np.isfinite(loss.item()) and loss.item() < 1e-10

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            F.softmax_cross_entropy(Tensor(np.zeros(3)), np.array([0]))
        with pytest.raises(ValueError):
            F.softmax_cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))

    def test_unknown_reduction(self):
        with pytest.raises(ValueError):
            F.softmax_cross_entropy(Tensor(np.zeros((1, 2))), np.array([0]), reduction="bogus")


class TestBCEWithLogitsFused:
    def test_matches_reference_formula(self):
        logits = np.array([-2.0, 0.0, 3.0])
        targets = np.array([0.0, 1.0, 1.0])
        sigma = 1 / (1 + np.exp(-logits))
        expected = -(targets * np.log(sigma) + (1 - targets) * np.log(1 - sigma))
        loss = F.bce_with_logits_fused(Tensor(logits), targets, reduction="none")
        np.testing.assert_allclose(loss.data, expected, atol=1e-10)

    def test_stable_for_extreme_logits(self):
        loss = F.bce_with_logits_fused(Tensor([-500.0, 500.0]), np.array([1.0, 0.0]),
                                       reduction="none")
        np.testing.assert_allclose(loss.data, [500.0, 500.0])

    def test_gradient_all_reductions(self):
        targets = np.array([0.0, 1.0, 0.5])
        for reduction in ("mean", "sum", "none"):
            check_grad(lambda t, r=reduction: F.bce_with_logits_fused(t, targets, reduction=r),
                       np.random.default_rng(0).normal(size=3))

    def test_target_gradient(self):
        logits = Tensor(np.array([0.3, -0.2, 1.0]))
        check_grad(lambda t: F.bce_with_logits_fused(logits, t, reduction="sum"),
                   np.array([0.0, 1.0, 0.5]))

    def test_broadcast_scalar_target(self):
        check_grad(lambda t: F.bce_with_logits_fused(t, 0.5, reduction="sum"),
                   np.random.default_rng(0).normal(size=(2, 3)))


    def test_empty_batch_mean_is_nan_not_crash(self):
        """Size-0 batches degrade to nan (like the unfused path), not a
        ZeroDivisionError at graph-construction time."""
        logits = Tensor(np.empty((0, 1)), requires_grad=True)
        with np.errstate(invalid="ignore"):
            with pytest.warns(RuntimeWarning):
                loss = F.bce_with_logits_fused(logits, np.empty((0, 1)))
        assert np.isnan(loss.data)


    def test_tensor_targets_cast_to_logits_dtype(self):
        """A float64 Tensor target must not upcast a float32 fused loss."""
        loss = F.bce_with_logits_fused(Tensor(np.zeros(3, dtype=np.float32)),
                                       Tensor(np.ones(3, dtype=np.float64)))
        assert loss.dtype == np.float32
