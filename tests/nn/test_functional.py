"""Tests for repro.nn.functional: softmax variants, dropout, gathers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor

from .test_tensor import check_grad


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = np.random.default_rng(0).normal(size=(5, 7))
        probs = F.softmax(Tensor(x), axis=1).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5))

    def test_invariant_to_shift(self):
        x = np.random.default_rng(0).normal(size=(2, 4))
        a = F.softmax(Tensor(x), axis=1).data
        b = F.softmax(Tensor(x + 100.0), axis=1).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_gradient(self):
        c = Tensor(np.random.default_rng(1).normal(size=(3, 4)))
        check_grad(lambda t: F.softmax(t, axis=1) * c,
                   np.random.default_rng(0).normal(size=(3, 4)))

    def test_neg_inf_gets_zero_probability(self):
        x = np.array([[0.0, -np.inf, 1.0]])
        probs = F.softmax(Tensor(x), axis=1).data
        assert probs[0, 1] == 0.0
        np.testing.assert_allclose(probs.sum(), 1.0)

    def test_huge_logits_stable(self):
        probs = F.softmax(Tensor([[1000.0, 999.0]]), axis=1).data
        assert np.all(np.isfinite(probs))

    def test_axis_zero(self):
        x = np.random.default_rng(0).normal(size=(3, 2))
        probs = F.softmax(Tensor(x), axis=0).data
        np.testing.assert_allclose(probs.sum(axis=0), np.ones(2))


class TestLogSoftmax:
    def test_matches_log_of_softmax(self):
        x = np.random.default_rng(0).normal(size=(3, 5))
        np.testing.assert_allclose(F.log_softmax(Tensor(x), axis=1).data,
                                   np.log(F.softmax(Tensor(x), axis=1).data),
                                   atol=1e-12)

    def test_gradient(self):
        check_grad(lambda t: F.log_softmax(t, axis=1)[:, :2],
                   np.random.default_rng(0).normal(size=(3, 4)))

    def test_stable_for_large_inputs(self):
        out = F.log_softmax(Tensor([[1000.0, 0.0]]), axis=1).data
        assert np.all(np.isfinite(out))


class TestMaskedSoftmax:
    def test_masked_entries_zero(self):
        x = np.random.default_rng(0).normal(size=(2, 4))
        mask = np.array([[True, False, True, False], [False, True, True, False]])
        probs = F.masked_softmax(Tensor(x), mask, axis=1).data
        assert np.all(probs[~mask] == 0.0)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(2))

    def test_gradient_only_through_unmasked(self):
        x = np.random.default_rng(0).normal(size=(2, 4))
        mask = np.array([[True, True, False, False], [True, False, True, False]])
        check_grad(lambda t: F.masked_softmax(t, mask, axis=1) ** 2, x)

    def test_masked_positions_get_zero_gradient(self):
        x = Tensor(np.random.default_rng(0).normal(size=(1, 4)), requires_grad=True)
        mask = np.array([[True, True, False, False]])
        (F.masked_softmax(x, mask, axis=1) ** 2).sum().backward()
        np.testing.assert_allclose(x.grad[0, 2:], [0.0, 0.0])


class TestScatterTopkMask:
    def test_basic(self):
        logits = np.array([[1.0, 3.0, 2.0], [5.0, 0.0, -1.0]])
        mask = F.scatter_topk_mask(logits, 2)
        np.testing.assert_array_equal(mask, [[False, True, True], [True, True, False]])

    def test_k_equals_n(self):
        mask = F.scatter_topk_mask(np.zeros((2, 3)), 3)
        assert mask.all()

    def test_exactly_k_per_row(self):
        logits = np.random.default_rng(0).normal(size=(10, 8))
        for k in (1, 3, 8):
            assert (F.scatter_topk_mask(logits, k).sum(axis=1) == k).all()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            F.scatter_topk_mask(np.zeros((2, 3)), 0)
        with pytest.raises(ValueError):
            F.scatter_topk_mask(np.zeros((2, 3)), 4)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            F.scatter_topk_mask(np.zeros(3), 1)

    @settings(max_examples=30, deadline=None)
    @given(hnp.arrays(np.float64, (5, 6), elements=st.floats(-10, 10)),
           st.integers(1, 6))
    def test_property_mask_selects_largest(self, logits, k):
        mask = F.scatter_topk_mask(logits, k)
        for row, row_mask in zip(logits, mask):
            selected_min = row[row_mask].min()
            unselected = row[~row_mask]
            if unselected.size:
                assert selected_min >= unselected.max() - 1e-12


class TestTakeAlongAxis:
    def test_forward_matches_numpy(self):
        x = np.random.default_rng(0).normal(size=(3, 5))
        idx = np.array([[0, 2], [1, 1], [4, 0]])
        out = F.take_along_axis(Tensor(x), idx, axis=1)
        np.testing.assert_allclose(out.data, np.take_along_axis(x, idx, axis=1))

    def test_gradient_scatter_adds_duplicates(self):
        x = Tensor(np.zeros((1, 3)), requires_grad=True)
        idx = np.array([[1, 1]])
        F.take_along_axis(x, idx, axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 2.0, 0.0]])

    def test_gradient_numeric(self):
        idx = np.array([[0, 2], [1, 1]])
        check_grad(lambda t: F.take_along_axis(t, idx, axis=1) ** 2,
                   np.random.default_rng(0).normal(size=(2, 3)))

    def test_3d_axis1(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 4))
        idx = np.zeros((2, 1, 4), dtype=np.int64)
        out = F.take_along_axis(Tensor(x), idx, axis=1)
        np.testing.assert_allclose(out.data, x[:, :1, :])


class TestDropout:
    def test_eval_mode_identity(self):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.5, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_zero_p_identity(self):
        x = Tensor(np.ones((4, 4)))
        assert F.dropout(x, 0.0, training=True) is x

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)


class TestOneHot:
    def test_basic(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)

    def test_preserves_leading_shape(self):
        out = F.one_hot(np.zeros((2, 3), dtype=int), 4)
        assert out.shape == (2, 3, 4)
