"""Tests for Linear, Embedding, Dropout, MLP."""

import numpy as np
import pytest

from repro import nn


class TestLinear:
    def test_shapes(self):
        layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
        out = layer(nn.Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        layer = nn.Linear(4, 3, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        x = np.ones((2, 4))
        np.testing.assert_allclose(layer(nn.Tensor(x)).data, x @ layer.weight.data)

    def test_wrong_input_width(self):
        layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            layer(nn.Tensor(np.ones((2, 5))))

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 3)

    def test_gradients_flow(self):
        layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
        layer(nn.Tensor(np.ones((2, 4)))).sum().backward()
        assert layer.weight.grad is not None and layer.bias.grad is not None

    def test_repr(self):
        assert "Linear(in=4, out=3" in repr(nn.Linear(4, 3, rng=np.random.default_rng(0)))


class TestEmbedding:
    def test_lookup(self):
        emb = nn.Embedding(10, 4, rng=np.random.default_rng(0))
        out = emb(np.array([1, 5, 1]))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data[0], out.data[2])

    def test_out_of_range(self):
        emb = nn.Embedding(10, 4, rng=np.random.default_rng(0))
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_sparse_gradient_accumulates(self):
        emb = nn.Embedding(5, 2, rng=np.random.default_rng(0))
        emb(np.array([2, 2, 4])).sum().backward()
        np.testing.assert_allclose(emb.weight.grad[2], [2.0, 2.0])
        np.testing.assert_allclose(emb.weight.grad[4], [1.0, 1.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            nn.Embedding(0, 4)


class TestDropout:
    def test_training_vs_eval(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = nn.Tensor(np.ones((100, 10)))
        train_out = layer(x)
        assert (train_out.data == 0).any()
        layer.eval()
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)


class TestMLP:
    def test_paper_tower_shape(self):
        """512 x 256 x 1 expert tower (paper §5.1.4)."""
        tower = nn.MLP(64, [512, 256], 1, rng=np.random.default_rng(0))
        out = tower(nn.Tensor(np.ones((3, 64))))
        assert out.shape == (3, 1)

    def test_layer_count(self):
        tower = nn.MLP(8, [16, 8], 1, rng=np.random.default_rng(0))
        linears = [m for m in tower.modules() if isinstance(m, nn.Linear)]
        assert len(linears) == 3

    def test_output_is_linear_logit(self):
        """No activation on the output layer (logits for BCE)."""
        tower = nn.MLP(4, [8], 1, rng=np.random.default_rng(0))
        outputs = tower(nn.Tensor(np.random.default_rng(1).normal(size=(100, 4)))).data
        assert outputs.min() < 0 < outputs.max()

    def test_no_hidden_layers(self):
        tower = nn.MLP(4, [], 2, rng=np.random.default_rng(0))
        assert tower(nn.Tensor(np.ones((2, 4)))).shape == (2, 2)

    def test_dropout_inserted(self):
        tower = nn.MLP(4, [8, 8], 1, dropout=0.3, rng=np.random.default_rng(0))
        dropouts = [m for m in tower.modules() if isinstance(m, nn.Dropout)]
        assert len(dropouts) == 2

    def test_trains_to_fit_xor(self):
        """MLP can learn a nonlinear function (XOR)."""
        rng = np.random.default_rng(0)
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.float64)
        y = np.array([[0], [1], [1], [0]], dtype=np.float64)
        tower = nn.MLP(2, [16], 1, rng=rng)
        optimizer = nn.optim.Adam(tower.parameters(), lr=5e-2)
        for _ in range(400):
            optimizer.zero_grad()
            loss = nn.losses.bce_with_logits(tower(nn.Tensor(x)), y)
            loss.backward()
            optimizer.step()
        predictions = tower(nn.Tensor(x)).sigmoid().data
        np.testing.assert_allclose(predictions, y, atol=0.2)

    def test_repr(self):
        assert "8 -> 16 -> 1" in repr(nn.MLP(8, [16], 1, rng=np.random.default_rng(0)))
