"""Tests for the Module system: registration, traversal, state dicts."""

import numpy as np
import pytest

from repro import nn


class Toy(nn.Module):
    def __init__(self):
        super().__init__()
        self.linear = nn.Linear(3, 2, rng=np.random.default_rng(0))
        self.scale = nn.Parameter(np.ones(1))

    def forward(self, x):
        return self.linear(x) * self.scale


class TestRegistration:
    def test_parameters_found_recursively(self):
        toy = Toy()
        names = {name for name, _ in toy.named_parameters()}
        assert names == {"linear.weight", "linear.bias", "scale"}

    def test_num_parameters(self):
        toy = Toy()
        assert toy.num_parameters() == 3 * 2 + 2 + 1

    def test_modules_iterates_tree(self):
        toy = Toy()
        kinds = [type(m).__name__ for m in toy.modules()]
        assert kinds[0] == "Toy" and "Linear" in kinds

    def test_add_module_explicit(self):
        root = nn.Module()
        child = nn.Linear(2, 2, rng=np.random.default_rng(0))
        root.add_module("child", child)
        assert root.child is child
        assert any(n.startswith("child.") for n, _ in root.named_parameters())


class TestModes:
    def test_train_eval_propagate(self):
        toy = Toy()
        toy.eval()
        assert not toy.training and not toy.linear.training
        toy.train()
        assert toy.training and toy.linear.training

    def test_zero_grad_clears_all(self):
        toy = Toy()
        out = toy(nn.Tensor(np.ones((2, 3))))
        out.sum().backward()
        assert all(p.grad is not None for p in toy.parameters())
        toy.zero_grad()
        assert all(p.grad is None for p in toy.parameters())


class TestStateDict:
    def test_roundtrip(self):
        a, b = Toy(), Toy()
        b.linear.weight.data += 1.0
        state = a.state_dict()
        b.load_state_dict(state)
        np.testing.assert_allclose(b.linear.weight.data, a.linear.weight.data)

    def test_state_dict_copies(self):
        toy = Toy()
        state = toy.state_dict()
        state["scale"][:] = 99.0
        assert toy.scale.data[0] == 1.0

    def test_missing_key_raises(self):
        toy = Toy()
        state = toy.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            toy.load_state_dict(state)

    def test_unexpected_key_raises(self):
        toy = Toy()
        state = toy.state_dict()
        state["bogus"] = np.ones(1)
        with pytest.raises(KeyError):
            toy.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        toy = Toy()
        state = toy.state_dict()
        state["scale"] = np.ones(5)
        with pytest.raises(ValueError):
            toy.load_state_dict(state)


class TestContainers:
    def test_module_list(self):
        layers = nn.ModuleList([nn.Linear(2, 2, rng=np.random.default_rng(i)) for i in range(3)])
        assert len(layers) == 3
        assert layers[1] is list(layers)[1]
        assert sum(1 for _ in layers) == 3
        # All sublayers registered.
        assert len(list(nn.Module.named_parameters(layers))) == 6

    def test_module_list_append(self):
        layers = nn.ModuleList()
        layers.append(nn.Linear(2, 2, rng=np.random.default_rng(0)))
        assert len(layers) == 1

    def test_sequential_forward(self):
        rng = np.random.default_rng(0)
        seq = nn.Sequential(nn.Linear(3, 4, rng=rng), nn.ReLU(), nn.Linear(4, 1, rng=rng))
        out = seq(nn.Tensor(np.ones((2, 3))))
        assert out.shape == (2, 1)
        assert len(seq) == 3
        assert isinstance(seq[1], nn.ReLU)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(1)
