"""Tests for the split compiled plan (:class:`SplitMLP` / :class:`PrefixMemo`).

The split plan factors an MLP's first layer across a column partition so
the query-independent (item-side) contribution can be memoized per item.
The contract under test: split scores match the unsplit compiled plan to
float rounding (the summation order changes, so bit-identity is *not*
promised — that is the result cache's job), the first layer's weights
are snapshotted at construction, and the memo returns the same rows
whether they were computed or recalled.
"""

import numpy as np
import pytest

from repro import nn
from repro.models import build_model
from repro.nn.infer import PrefixMemo, SplitMLP


@pytest.fixture()
def mlp(rng):
    return nn.MLP(10, [8, 4], 1, rng=rng)


def _partition(width, rng):
    """An arbitrary unordered partition of ``width`` columns."""
    columns = rng.permutation(width)
    return columns[: width // 2], columns[width // 2:]


class TestSplitMLP:
    def test_matches_compiled_plan(self, mlp, rng):
        static, dynamic = _partition(10, rng)
        split = SplitMLP(mlp, static, dynamic)
        x = rng.standard_normal((6, 10))
        expected = mlp.compiled()(x)
        prefix = split.prefix(x[:, static])
        result = split(prefix, x[:, dynamic])
        np.testing.assert_allclose(result, expected, atol=1e-10)

    def test_no_hidden_layers(self, rng):
        # A pure Linear "MLP" has no fused relu on its first (only) layer.
        linear_only = nn.MLP(6, [], 1, rng=rng)
        static, dynamic = np.arange(3), np.arange(3, 6)
        split = SplitMLP(linear_only, static, dynamic)
        x = rng.standard_normal((4, 6))
        np.testing.assert_allclose(
            split(split.prefix(x[:, static]), x[:, dynamic]),
            linear_only.compiled()(x), atol=1e-10)

    def test_prefix_width_and_dtype(self, mlp, rng):
        static, dynamic = _partition(10, rng)
        split = SplitMLP(mlp, static, dynamic)
        assert split.prefix_width == 8          # first hidden layer
        assert split.dtype == np.float64
        assert split.prefix(rng.standard_normal((3, len(static)))).shape \
            == (3, 8)

    def test_partition_must_be_exact(self, mlp):
        with pytest.raises(ValueError):         # column 0 claimed twice
            SplitMLP(mlp, np.arange(5), np.arange(5, 10).tolist() + [0])
        with pytest.raises(ValueError):         # column 9 unclaimed
            SplitMLP(mlp, np.arange(5), np.arange(5, 9))

    def test_weights_snapshotted_at_construction(self, mlp, rng):
        static, dynamic = _partition(10, rng)
        split = SplitMLP(mlp, static, dynamic)
        x = rng.standard_normal((5, 10))
        before = np.array(split(split.prefix(x[:, static]), x[:, dynamic]))
        first = mlp._plan[0][1]
        first.weight.data += 1.0                # "training" after the split
        after = split(split.prefix(x[:, static]), x[:, dynamic])
        # The split plan pins the first layer (memoized prefixes are only
        # valid against it); the live compiled plan sees the new weights.
        np.testing.assert_array_equal(after, before)
        assert not np.allclose(mlp.compiled()(x), before)

    def test_batch_reuse_owned_buffers(self, mlp, rng):
        static, dynamic = _partition(10, rng)
        split = SplitMLP(mlp, static, dynamic)
        x1 = rng.standard_normal((4, 10))
        x2 = rng.standard_normal((4, 10))
        out1 = np.array(split(split.prefix(x1[:, static]), x1[:, dynamic]))
        out2 = split(split.prefix(x2[:, static]), x2[:, dynamic])
        np.testing.assert_allclose(out1, mlp.compiled()(x1), atol=1e-10)
        np.testing.assert_allclose(out2, mlp.compiled()(x2), atol=1e-10)


class TestPrefixMemo:
    def test_computes_misses_then_hits(self):
        memo = PrefixMemo(max_items=8)
        calls = []

        def compute(positions):
            calls.append(np.array(positions))
            return np.asarray([[float(p), float(p) + 0.5]
                               for p in positions])

        first = memo.lookup([b"a", b"b"], compute)
        np.testing.assert_array_equal(first, [[0.0, 0.5], [1.0, 1.5]])
        second = memo.lookup([b"b", b"a"], compute)
        np.testing.assert_array_equal(second, [[1.0, 1.5], [0.0, 0.5]])
        assert len(calls) == 1                  # second lookup: all hits
        snap = memo.snapshot()
        assert snap["hits"] == 2 and snap["misses"] == 2

    def test_partial_hit_computes_only_missing(self):
        memo = PrefixMemo(max_items=8)
        memo.lookup([b"a"], lambda p: np.zeros((len(p), 2)))

        def compute(positions):
            np.testing.assert_array_equal(positions, [1])
            return np.ones((1, 2))

        rows = memo.lookup([b"a", b"new"], compute)
        np.testing.assert_array_equal(rows, [[0.0, 0.0], [1.0, 1.0]])

    def test_lru_eviction(self):
        memo = PrefixMemo(max_items=2)
        compute = lambda p: np.zeros((len(p), 1))  # noqa: E731
        memo.lookup([b"a", b"b"], compute)
        memo.lookup([b"a"], compute)            # a is most recent
        memo.lookup([b"c"], compute)            # evicts b
        assert len(memo) == 2
        assert memo.snapshot()["evictions"] == 1
        memo.lookup([b"b"], compute)            # b must be recomputed
        assert memo.snapshot()["misses"] == 4

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PrefixMemo(max_items=0)


# ----------------------------------------------------------------------
# Model-level split scorers
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def split_batch(dataset):
    return dataset.batch(np.arange(24))


@pytest.mark.parametrize("arch", ["dnn", "adv-hsc-moe"])
class TestModelSplitScorers:
    @pytest.fixture()
    def ranker(self, arch, dataset, taxonomy, tiny_model_config):
        return build_model(arch, dataset.spec, taxonomy, tiny_model_config,
                           train_dataset=dataset)

    def test_split_scorer_matches_score(self, ranker, split_batch):
        score = ranker.make_split_scorer()
        assert score is not None
        np.testing.assert_allclose(score(split_batch),
                                   ranker.score(split_batch), atol=1e-10)

    def test_memo_reused_across_requests(self, ranker, split_batch):
        memo = PrefixMemo()
        score = ranker.make_split_scorer(prefix_memo=memo)
        first = np.array(score(split_batch))
        misses = memo.snapshot()["misses"]
        assert misses > 0
        second = score(split_batch)
        snap = memo.snapshot()
        # Same items again: every row recalled, nothing recomputed.
        assert snap["misses"] == misses
        assert snap["hits"] >= len(split_batch)
        np.testing.assert_allclose(second, first, atol=1e-12)

    def test_memo_shared_across_scorer_instances(self, ranker, split_batch):
        # The service hands every pool worker its own split plan but one
        # shared memo; a second worker must ride the first's prefixes.
        memo = PrefixMemo()
        first = ranker.make_split_scorer(prefix_memo=memo)
        second = ranker.make_split_scorer(prefix_memo=memo)
        expected = np.array(first(split_batch))
        misses = memo.snapshot()["misses"]
        np.testing.assert_allclose(second(split_batch), expected, atol=1e-12)
        assert memo.snapshot()["misses"] == misses
