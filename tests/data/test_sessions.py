"""Tests for the search-session simulator."""

import numpy as np
import pytest

from repro.data import LogConfig, simulate_log
from repro.data.sessions import _normalize_columns, _segment_argmax
from repro.metrics import session_auc


class TestLogStructure:
    def test_example_arrays_aligned(self, log):
        n = log.num_examples
        assert log.session_ids.shape == (n,)
        assert log.labels.shape == (n,)
        assert log.numeric.shape == (n, 6)
        for values in log.sparse.values():
            assert values.shape == (n,)

    def test_session_sizes_in_range(self, log):
        _, counts = np.unique(log.session_ids, return_counts=True)
        assert counts.min() >= 6 and counts.max() <= 14

    def test_at_most_one_purchase_per_session(self, log):
        _, inverse = np.unique(log.session_ids, return_inverse=True)
        per_session = np.bincount(inverse, weights=log.labels.astype(float))
        assert per_session.max() <= 1.0

    def test_conversion_rate_close_to_config(self, log):
        _, inverse = np.unique(log.session_ids, return_inverse=True)
        per_session = np.bincount(inverse, weights=log.labels.astype(float))
        assert abs((per_session > 0).mean() - 0.85) < 0.05

    def test_query_tc_consistent_with_sc(self, log):
        parents = log.world.taxonomy.parents_of(log.sparse["query_sc"])
        np.testing.assert_array_equal(parents, log.sparse["query_tc"])

    def test_session_shares_query_category(self, log):
        """All items in a session share the query's SC/TC ids (query-side)."""
        sessions = log.session_ids
        for name in ("query_sc", "query_tc", "user_segment", "query_bucket"):
            values = log.sparse[name]
            order = np.argsort(sessions, kind="stable")
            boundaries = np.flatnonzero(np.diff(sessions[order])) + 1
            for chunk in np.split(values[order], boundaries):
                assert np.unique(chunk).size == 1

    def test_purchase_prefers_high_utility(self, log):
        oracle = session_auc(log.true_utility, log.labels, log.session_ids)
        assert oracle > 0.75

    def test_observed_features_noisy_but_informative(self, log):
        """Observation noise keeps feature AUC between chance and oracle."""
        relevance_auc = session_auc(log.numeric[:, 5], log.labels, log.session_ids)
        assert 0.55 < relevance_auc < 0.9

    def test_deterministic_given_seed(self, world):
        a = simulate_log(world, LogConfig(seed=5, num_queries=100))
        b = simulate_log(world, LogConfig(seed=5, num_queries=100))
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_allclose(a.numeric, b.numeric)

    def test_majority_of_candidates_in_category(self, log):
        same = (log.world.product_sc[log.item_rows] == log.sparse["query_sc"])
        assert same.mean() > 0.6


class TestQueryTable:
    def test_tokens_padded_with_zero(self, log):
        queries = log.queries
        for i in range(min(50, queries.num_queries)):
            length = queries.lengths[i]
            assert np.all(queries.tokens[i, :length] > 0)
            assert np.all(queries.tokens[i, length:] == 0)

    def test_tokens_within_vocab(self, log):
        assert log.queries.tokens.max() < log.queries.vocab_size

    def test_category_specific_tokens_dominate(self, log):
        """~70% of tokens come from the query SC's private block."""
        from repro.data.sessions import GENERIC_TOKENS, TOKENS_PER_SC
        queries = log.queries
        hits, total = 0, 0
        for i in range(queries.num_queries):
            offset = 1 + GENERIC_TOKENS + queries.sc_ids[i] * TOKENS_PER_SC
            tokens = queries.tokens[i, :queries.lengths[i]]
            hits += ((tokens >= offset) & (tokens < offset + TOKENS_PER_SC)).sum()
            total += tokens.size
        assert 0.6 < hits / total < 0.8


class TestHelpers:
    def test_segment_argmax(self):
        scores = np.array([1.0, 5.0, 2.0, 7.0, 3.0])
        segments = np.array([0, 0, 1, 1, 1])
        winners = _segment_argmax(scores, segments, 2)
        np.testing.assert_array_equal(winners, [1, 3])

    def test_segment_argmax_single_item_segments(self):
        winners = _segment_argmax(np.array([1.0, 2.0]), np.array([0, 1]), 2)
        np.testing.assert_array_equal(winners, [0, 1])

    def test_segment_argmax_missing_segment_raises(self):
        with pytest.raises(ValueError):
            _segment_argmax(np.array([1.0]), np.array([0]), 2)

    def test_normalize_columns(self):
        x = np.random.default_rng(0).normal(5.0, 3.0, size=(100, 4))
        normalized = _normalize_columns(x)
        np.testing.assert_allclose(normalized.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(normalized.std(axis=0), 1.0, atol=1e-9)

    def test_normalize_constant_column_safe(self):
        x = np.ones((10, 2))
        normalized = _normalize_columns(x)
        assert np.all(np.isfinite(normalized))


class TestLogConfigValidation:
    def test_candidate_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            LogConfig(candidate_mix=(0.5, 0.2, 0.2))

    def test_positive_queries(self):
        with pytest.raises(ValueError):
            LogConfig(num_queries=0)

    def test_items_per_session_bounds(self):
        with pytest.raises(ValueError):
            LogConfig(items_per_session=(1, 5))
