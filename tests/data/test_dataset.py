"""Tests for LTRDataset: subsetting, splitting, batching."""

import numpy as np
import pytest

from repro.data import LTRDataset, train_test_split


class TestBasics:
    def test_length_and_rates(self, dataset):
        assert len(dataset) == dataset.labels.shape[0]
        assert 0.0 < dataset.positive_rate < 0.5

    def test_length_mismatch_rejected(self, dataset):
        with pytest.raises(ValueError):
            LTRDataset(numeric=dataset.numeric[:-1], sparse=dataset.sparse,
                       labels=dataset.labels, session_ids=dataset.session_ids,
                       query_ids=dataset.query_ids, spec=dataset.spec,
                       taxonomy=dataset.taxonomy)

    def test_sparse_mismatch_rejected(self, dataset):
        bad_sparse = dict(dataset.sparse)
        bad_sparse["brand"] = bad_sparse["brand"][:-1]
        with pytest.raises(ValueError):
            LTRDataset(numeric=dataset.numeric, sparse=bad_sparse,
                       labels=dataset.labels, session_ids=dataset.session_ids,
                       query_ids=dataset.query_ids, spec=dataset.spec,
                       taxonomy=dataset.taxonomy)

    def test_query_accessors(self, dataset):
        np.testing.assert_array_equal(dataset.query_sc, dataset.sparse["query_sc"])
        np.testing.assert_array_equal(dataset.query_tc, dataset.sparse["query_tc"])


class TestSubset:
    def test_subset_rows(self, dataset):
        indices = np.arange(0, 50)
        subset = dataset.subset(indices, name="slice")
        assert len(subset) == 50
        assert subset.name == "slice"
        np.testing.assert_array_equal(subset.labels, dataset.labels[:50])

    def test_filter_by_tc_keeps_only_tc(self, dataset):
        tc = int(dataset.query_tc[0])
        filtered = dataset.filter_by_tc(tc)
        assert np.all(filtered.query_tc == tc)
        assert len(filtered) > 0

    def test_filter_by_tc_multiple(self, dataset):
        tcs = np.unique(dataset.query_tc)[:2]
        filtered = dataset.filter_by_tc(tcs)
        assert set(np.unique(filtered.query_tc)) <= set(tcs.tolist())

    def test_filter_by_sc(self, dataset):
        sc = int(dataset.query_sc[0])
        filtered = dataset.filter_by_sc(sc)
        assert np.all(filtered.query_sc == sc)

    def test_filter_keeps_whole_sessions(self, dataset):
        """query TC is constant within a session, so no session is split."""
        tc = int(dataset.query_tc[0])
        filtered = dataset.filter_by_tc(tc)
        kept = set(np.unique(filtered.session_ids).tolist())
        for session in kept:
            original = (dataset.session_ids == session).sum()
            assert (filtered.session_ids == session).sum() == original

    def test_concat(self, dataset):
        tcs = np.unique(dataset.query_tc)
        a = dataset.filter_by_tc(tcs[0])
        b = dataset.filter_by_tc(tcs[1])
        joined = a.concat(b)
        assert len(joined) == len(a) + len(b)


class TestSplit:
    def test_no_query_leak(self, dataset):
        train, test = train_test_split(dataset, test_fraction=0.3, seed=0)
        assert not set(np.unique(train.query_ids)) & set(np.unique(test.query_ids))

    def test_fraction_respected(self, dataset):
        train, test = train_test_split(dataset, test_fraction=0.3, seed=0)
        queries = len(np.unique(dataset.query_ids))
        assert abs(len(np.unique(test.query_ids)) / queries - 0.3) < 0.02

    def test_invalid_fraction(self, dataset):
        with pytest.raises(ValueError):
            train_test_split(dataset, test_fraction=0.0)

    def test_deterministic(self, dataset):
        a = train_test_split(dataset, seed=5)[1]
        b = train_test_split(dataset, seed=5)[1]
        np.testing.assert_array_equal(a.labels, b.labels)


class TestBatching:
    def test_iter_batches_covers_everything(self, dataset, rng):
        total = sum(len(b) for b in dataset.iter_batches(128, rng=rng))
        assert total == len(dataset)

    def test_batch_size_respected(self, dataset, rng):
        sizes = [len(b) for b in dataset.iter_batches(100, rng=rng)]
        assert all(s == 100 for s in sizes[:-1])
        assert sizes[-1] <= 100

    def test_no_shuffle_is_ordered(self, dataset):
        batch = next(dataset.iter_batches(10, shuffle=False))
        np.testing.assert_array_equal(batch.labels, dataset.labels[:10])

    def test_invalid_batch_size(self, dataset):
        with pytest.raises(ValueError):
            next(dataset.iter_batches(0))

    def test_full_batch(self, dataset):
        batch = dataset.full_batch()
        assert len(batch) == len(dataset)


class TestSessionUtilities:
    def test_sessions_with_label_mix(self, dataset):
        mixed = dataset.sessions_with_label_mix()
        assert mixed.size > 0
        for session in mixed[:20]:
            labels = dataset.labels[dataset.session_ids == session]
            assert 0 < labels.sum() < labels.size

    def test_num_sessions_and_queries(self, dataset):
        assert dataset.num_sessions == np.unique(dataset.session_ids).size
        assert dataset.num_queries == np.unique(dataset.query_ids).size
