"""Tests for dataset statistics (Table 1 machinery)."""

from repro.data import compute_statistics, format_table1


class TestComputeStatistics:
    def test_counts_match_dataset(self, dataset):
        stats = compute_statistics(dataset)
        assert stats.num_examples == len(dataset)
        assert stats.num_queries == dataset.num_queries
        assert stats.num_sessions == dataset.num_sessions
        assert 0 < stats.positive_rate < 1

    def test_category_counts(self, dataset, taxonomy):
        stats = compute_statistics(dataset)
        assert stats.num_top_categories <= taxonomy.num_top_categories
        assert stats.num_sub_categories <= taxonomy.num_sub_categories
        assert stats.num_top_categories > 1

    def test_pairs_at_most_examples(self, dataset):
        stats = compute_statistics(dataset)
        assert 0 < stats.num_query_item_pairs <= stats.num_examples

    def test_slice_smaller_than_whole(self, dataset):
        tc = int(dataset.query_tc[0])
        whole = compute_statistics(dataset)
        part = compute_statistics(dataset.filter_by_tc(tc))
        assert part.num_examples < whole.num_examples

    def test_custom_name(self, dataset):
        assert compute_statistics(dataset, "custom").name == "custom"


class TestFormatTable1:
    def test_renders_rows(self, dataset):
        stats = compute_statistics(dataset)
        text = format_table1([("Complete", stats, stats)])
        assert "Table 1" in text
        assert "Complete" in text
        assert "# of queries" in text

    def test_empty_rows(self):
        text = format_table1([])
        assert "Table 1" in text
