"""Tests for dataset NPZ/CSV export."""

import csv

import numpy as np
import pytest

from repro.data import export_csv, load_dataset_npz, save_dataset_npz


class TestNpzRoundtrip:
    def test_exact_roundtrip(self, dataset, tmp_path):
        path = save_dataset_npz(dataset, tmp_path / "log")
        restored = load_dataset_npz(path, dataset.spec, dataset.taxonomy)
        np.testing.assert_array_equal(restored.labels, dataset.labels)
        np.testing.assert_allclose(restored.numeric, dataset.numeric)
        np.testing.assert_array_equal(restored.session_ids, dataset.session_ids)
        for name in dataset.sparse:
            np.testing.assert_array_equal(restored.sparse[name], dataset.sparse[name])

    def test_restored_dataset_usable(self, dataset, tmp_path):
        path = save_dataset_npz(dataset, tmp_path / "log")
        restored = load_dataset_npz(path, dataset.spec, dataset.taxonomy)
        assert restored.num_sessions == dataset.num_sessions
        batch = next(restored.iter_batches(32, shuffle=False))
        assert len(batch) == 32

    def test_version_check(self, dataset, tmp_path):
        path = save_dataset_npz(dataset, tmp_path / "log")
        arrays = dict(np.load(path))
        arrays["format_version"] = np.array(99)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError):
            load_dataset_npz(path, dataset.spec, dataset.taxonomy)

    def test_missing_sparse_feature_detected(self, dataset, tmp_path):
        path = save_dataset_npz(dataset, tmp_path / "log")
        arrays = dict(np.load(path))
        del arrays["sparse__brand"]
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError):
            load_dataset_npz(path, dataset.spec, dataset.taxonomy)


class TestCsvExport:
    def test_header_and_rows(self, dataset, tmp_path):
        path = export_csv(dataset, tmp_path / "log", max_rows=50)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        header, data = rows[0], rows[1:]
        assert header[0] == "session_id" and header[-1] == "label"
        assert set(dataset.sparse) <= set(header)
        assert len(data) == 50

    def test_values_match(self, dataset, tmp_path):
        path = export_csv(dataset, tmp_path / "log", max_rows=5)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        for index, row in enumerate(rows):
            assert int(row["label"]) == dataset.labels[index]
            assert int(row["brand"]) == dataset.sparse["brand"][index]

    def test_full_export_row_count(self, dataset, tmp_path):
        path = export_csv(dataset.subset(np.arange(200)), tmp_path / "log")
        with open(path) as handle:
            assert sum(1 for _ in handle) == 201
