"""Tests for the feature schema."""

import pytest

from repro.data.schema import (NUMERIC_FEATURE_NAMES, FeatureSpec, NumericFeature,
                               Side, SparseFeature, build_feature_spec)


class TestSparseFeature:
    def test_cardinality_validation(self):
        with pytest.raises(ValueError):
            SparseFeature("x", 0, Side.ITEM)

    def test_side_validation(self):
        with pytest.raises(ValueError):
            SparseFeature("x", 5, "bogus")


class TestFeatureSpec:
    @pytest.fixture()
    def spec(self):
        return build_feature_spec(num_sub_categories=20, num_top_categories=5,
                                  num_brands=50, num_user_segments=4,
                                  num_query_buckets=32)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            FeatureSpec(sparse=[SparseFeature("a", 2, Side.ITEM)],
                        numeric=[NumericFeature("a", Side.ITEM)])

    def test_canonical_features_present(self, spec):
        assert set(spec.sparse_names) >= {"query_sc", "query_tc", "brand",
                                          "item_sc", "user_segment", "query_bucket"}
        assert tuple(spec.numeric_names) == NUMERIC_FEATURE_NAMES

    def test_cardinalities(self, spec):
        assert spec.cardinality("query_sc") == 20
        assert spec.cardinality("query_tc") == 5
        assert spec.cardinality("brand") == 50

    def test_sides(self, spec):
        assert "query_sc" in spec.sparse_on_side(Side.QUERY)
        assert "brand" in spec.sparse_on_side(Side.ITEM)
        assert "user_segment" not in spec.sparse_on_side(Side.QUERY, Side.ITEM)

    def test_input_width_formula(self, spec):
        """Eq. 2: n = k*q + m."""
        q = 16
        names = ["query_sc", "brand"]
        assert spec.input_width(q, names) == 2 * q + spec.num_numeric

    def test_input_width_default_all_sparse(self, spec):
        assert spec.input_width(8) == len(spec.sparse) * 8 + spec.num_numeric

    def test_sparse_feature_lookup(self, spec):
        feature = spec.sparse_feature("brand")
        assert feature.name == "brand" and feature.side == Side.ITEM
