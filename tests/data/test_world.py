"""Tests for the synthetic product world: planted §3 phenomena."""

import numpy as np
import pytest

from repro.data import WorldConfig, SyntheticWorld
from repro.data.world import INTERACTION_PAIRS, _COMMENTS, _SALES
from repro.hierarchy import default_taxonomy


class TestGeneration:
    def test_products_cover_every_sc(self, world, taxonomy):
        for sc in taxonomy.sub_categories:
            assert world.products_in_sc(sc.sc_id).size >= world.config.min_products_per_sc

    def test_product_arrays_aligned(self, world):
        n = world.num_products
        for array in (world.product_sc, world.product_tc, world.product_brand,
                      world.product_quality, world.product_price_z,
                      world.product_log_sales, world.product_comments,
                      world.product_brand_pop):
            assert array.shape[0] == n

    def test_product_tc_consistent_with_sc(self, world, taxonomy):
        np.testing.assert_array_equal(world.product_tc,
                                      taxonomy.parents_of(world.product_sc))

    def test_brands_partitioned_by_tc(self, world, taxonomy):
        """Brand id ranges must not overlap between different TCs."""
        per_tc = world.config.brands_per_tc
        expected_tc = world.product_brand // per_tc
        # brand blocks are laid out in TC order, so brand//per_tc indexes the TC list
        tc_order = [tc.tc_id for tc in taxonomy.top_categories]
        mapped = np.array(tc_order)[expected_tc]
        np.testing.assert_array_equal(mapped, world.product_tc)

    def test_comments_in_unit_interval(self, world):
        assert world.product_comments.min() > 0.0
        assert world.product_comments.max() < 1.0

    def test_traffic_distribution_normalized(self, world):
        assert world.sc_traffic.min() >= 0
        np.testing.assert_allclose(world.sc_traffic.sum(), 1.0)

    def test_deterministic_given_seed(self, taxonomy):
        a = SyntheticWorld.generate(taxonomy, WorldConfig(seed=7))
        b = SyntheticWorld.generate(taxonomy, WorldConfig(seed=7))
        np.testing.assert_array_equal(a.product_brand, b.product_brand)
        np.testing.assert_allclose(a.sc_utility, b.sc_utility)

    def test_different_seeds_differ(self, taxonomy):
        a = SyntheticWorld.generate(taxonomy, WorldConfig(seed=1))
        b = SyntheticWorld.generate(taxonomy, WorldConfig(seed=2))
        assert not np.allclose(a.sc_utility, b.sc_utility)


class TestPlantedPhenomena:
    def test_intra_tc_utility_homogeneity(self, world, taxonomy):
        """SC utility vectors cluster tightly around their TC's (Fig. 2)."""
        inter_spread = np.std([world.profiles[t.tc_id].utility_weights[_COMMENTS]
                               for t in taxonomy.top_categories])
        intra_spreads = []
        for tc in taxonomy.top_categories:
            children = taxonomy.children_of(tc.tc_id)
            intra_spreads.append(np.std(world.sc_utility[children, _COMMENTS]))
        assert np.mean(intra_spreads) < inter_spread

    def test_named_categories_follow_paper_narrative(self, world, taxonomy):
        """Clothing weighs comments more than sales; Electronics the reverse."""
        by_name = {tc.name: tc.tc_id for tc in taxonomy.top_categories}
        clothing = world.profiles[by_name["Clothing"]].utility_weights
        electronics = world.profiles[by_name["Electronics"]].utility_weights
        assert clothing[_COMMENTS] > clothing[_SALES]
        assert electronics[_SALES] > electronics[_COMMENTS]

    def test_brand_concentration_ordering(self, world, taxonomy):
        """Electronics-like brand markets more concentrated than Sports (Fig. 3)."""
        by_name = {tc.name: tc.tc_id for tc in taxonomy.top_categories}
        assert (world.profiles[by_name["Electronics"]].brand_zipf
                > world.profiles[by_name["Sports"]].brand_zipf)

    def test_category_sizes_skewed(self, world):
        """Zipf traffic ⇒ the largest SC dwarfs the smallest (Fig. 5 setup)."""
        ratio = world.sc_traffic.max() / world.sc_traffic.min()
        assert ratio > 5.0

    def test_interaction_weights_exist_per_sc(self, world, taxonomy):
        assert world.sc_interaction.shape == (taxonomy.max_sc_id() + 1,
                                              len(INTERACTION_PAIRS))
        assert np.abs(world.sc_interaction).max() > 0


class TestAccessors:
    def test_signal_matrix_shape(self, world):
        rows = np.arange(10)
        signals = world.product_signal_matrix(rows)
        assert signals.shape == (10, 6)
        # Two-sided columns are zero until the session simulator fills them.
        np.testing.assert_allclose(signals[:, 4:], 0.0)

    def test_brand_sales_by_tc_covers_all(self, world, taxonomy):
        sales = world.brand_sales_by_tc()
        assert set(sales) == {tc.tc_id for tc in taxonomy.top_categories}
        for volumes in sales.values():
            assert all(v > 0 for v in volumes.values())

    def test_brand_sales_by_sc(self, world, taxonomy):
        tc = taxonomy.top_categories[0]
        sales = world.brand_sales_by_sc(tc.tc_id)
        assert set(sales) == set(taxonomy.children_of(tc.tc_id))
