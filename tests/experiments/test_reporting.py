"""Tests for the markdown report generator."""

import pytest

from repro.experiments import CI
from repro.experiments.reporting import main as reporting_main
from repro.experiments.reporting import render_report, write_report


class TestRenderReport:
    def test_selected_experiments_only(self):
        text = render_report(CI, names=["table1", "fig3"])
        assert "Table 1 — dataset statistics" in text
        assert "Fig. 3 — brand concentration" in text
        assert "Table 2" not in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            render_report(CI, names=["table99"])

    def test_mentions_scale(self):
        text = render_report(CI, names=["table1"])
        assert "`ci`" in text


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = write_report(tmp_path / "out" / "report.md", CI, names=["table1"])
        assert path.exists()
        assert "Reproduction report" in path.read_text()

    def test_cli(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        assert reporting_main(["-o", str(out), "--scale", "ci",
                               "--only", "table1"]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out
