"""Tests for the experiment infrastructure (scales, configs, registry CLI)."""

import numpy as np
import pytest

from repro.experiments import CI, DEFAULT, PAPER, SCALES
from repro.experiments.common import (build_environment, model_config,
                                      train_and_eval, train_config)
from repro.experiments.registry import main as registry_main
from repro.experiments.registry import run_all
from repro.models.base import GATE_FEATURE_PRESETS


class TestScales:
    def test_paper_preset_matches_paper_settings(self):
        """§5.1.4: 512x256 towers, embedding 16, lr 1e-4, N=10/K=4/D=1."""
        assert PAPER.hidden_sizes == (512, 256)
        assert PAPER.embedding_dim == 16
        assert PAPER.learning_rate == 1e-4
        assert PAPER.num_experts == 10
        assert PAPER.top_k == 4
        assert PAPER.num_disagreeing == 1
        assert PAPER.lambda_hsc == PAPER.lambda_adv == 1e-3

    def test_with_updates(self):
        scale = CI.with_updates(epochs=9)
        assert scale.epochs == 9 and CI.epochs != 9

    def test_ci_smaller_than_default(self):
        assert CI.num_queries < DEFAULT.num_queries

    def test_float32_is_the_default_dtype(self):
        """ROADMAP open item (safe since PR 2): presets train in float32."""
        for scale in SCALES.values():
            assert scale.np_dtype == np.float32

    def test_dtype_override(self):
        assert CI.with_updates(dtype="float64").np_dtype == np.float64


class TestConfigHelpers:
    def test_model_config_from_scale(self):
        config = model_config(DEFAULT)
        assert config.embedding_dim == DEFAULT.embedding_dim
        assert config.hidden_sizes == DEFAULT.hidden_sizes
        assert config.num_experts == DEFAULT.num_experts

    def test_model_config_overrides(self):
        config = model_config(DEFAULT, num_experts=16, top_k=2,
                              gate_features=GATE_FEATURE_PRESETS["tc_sc"])
        assert config.num_experts == 16
        assert config.gate_features == ("query_tc", "query_sc")

    def test_train_config_from_scale(self):
        config = train_config(CI, seed=7)
        assert config.epochs == CI.epochs
        assert config.seed == 7


class TestTrainAndEval:
    def test_returns_metrics(self):
        env = build_environment(CI)
        metrics = train_and_eval("dnn", env, CI)
        assert {"auc", "ndcg", "ndcg@10"} <= set(metrics)

    def test_return_model(self):
        env = build_environment(CI)
        metrics, model = train_and_eval("dnn", env, CI, return_model=True)
        assert hasattr(model, "predict")
        assert 0.0 <= metrics["auc"] <= 1.0

    def test_models_train_at_scale_dtype(self):
        env = build_environment(CI)
        _, model = train_and_eval("dnn", env, CI, return_model=True)
        assert all(p.dtype == np.float32 for p in model.parameters())
        _, model64 = train_and_eval("dnn", env, CI.with_updates(dtype="float64"),
                                    return_model=True)
        assert all(p.dtype == np.float64 for p in model64.parameters())

    def test_custom_datasets(self):
        env = build_environment(CI)
        tc = int(env.train.query_tc[0])
        metrics = train_and_eval("dnn", env, CI,
                                 train_dataset=env.train.filter_by_tc(tc),
                                 test_dataset=env.test)
        assert np.isfinite(metrics["auc"])


class TestRunAllValidation:
    def test_unknown_names_rejected_before_any_run(self):
        """A typo must fail fast, not after earlier experiments executed."""
        with pytest.raises(KeyError, match="table99"):
            run_all(CI, names=["table1", "table99"])

    def test_known_names_accepted(self):
        results = run_all(CI, names=["table1"])
        assert set(results) == {"table1"}


class TestRegistryCLI:
    def test_runs_single_experiment(self, capsys):
        assert registry_main(["table1", "--scale", "ci"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "Table 1" in out

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            registry_main(["table1", "--scale", "huge"])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            registry_main(["table99"])
