"""Smoke + shape tests for every experiment at CI scale.

These verify that each table/figure regenerates and that the cheap-to-check
structural claims hold; the full reproduction claims are checked by the
benchmark harness at DEFAULT scale and recorded in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.experiments import (CI, DEFAULT, EXPERIMENTS, SCALES, build_environment,
                               run_experiment)
from repro.experiments import fig2, fig3, fig5, fig7, table1, table2, table5
from repro.models.factory import MODEL_NAMES


@pytest.fixture(scope="module")
def env():
    return build_environment(CI)


class TestCommon:
    def test_environment_cached(self):
        a = build_environment(CI)
        b = build_environment(CI)
        assert a is b

    def test_scales_registered(self):
        assert set(SCALES) == {"ci", "default", "paper"}

    def test_environment_splits_disjoint(self, env):
        train_queries = set(np.unique(env.train.query_ids))
        test_queries = set(np.unique(env.test.query_ids))
        assert not train_queries & test_queries

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("table99", CI)


class TestTable1:
    def test_structure(self):
        result = table1.run(CI)
        train_stats, test_stats = result.complete
        assert train_stats.num_examples > test_stats.num_examples
        assert set(result.slices) == set(table1.SLICE_CATEGORIES)
        text = result.format()
        assert "Table 1" in text and "Clothing" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        # Two cheap models keep the smoke test fast; the full 7-model table
        # is exercised by benchmarks/bench_table2.py.
        return table2.run(CI, models=("dnn", "adv-hsc-moe"))

    def test_metrics_present(self, result):
        assert set(result.metrics) == {"dnn", "adv-hsc-moe"}
        for metrics in result.metrics.values():
            assert {"auc", "ndcg", "ndcg@10"} <= set(metrics)
            assert all(0.0 <= v <= 1.0 for v in metrics.values())

    def test_models_beat_chance(self, result):
        for name, metrics in result.metrics.items():
            assert metrics["auc"] > 0.6, name

    def test_improvement_helper(self, result):
        gains = result.improvement_over_dnn()
        assert set(gains) == {"adv-hsc-moe"}

    def test_format(self, result):
        assert "Table 2" in result.format()


class TestTable3:
    def test_structure(self):
        result = run_experiment("table3", CI)
        assert len(result.categories) == 3
        assert set(result.dedicated) == set(result.categories)
        # Size ordering: first two are the biggest, last is small.
        sizes = [result.sizes[c] for c in result.categories]
        assert sizes[-1] == min(sizes)
        assert "Joint-Ours" in result.format()


class TestTable5:
    def test_rows(self):
        result = table5.run(CI, rows={"SC": ("sc", False),
                                      "all features": ("all", True)})
        assert set(result.auc) == {"SC", "all features"}
        assert result.best_row() in result.auc


class TestTable6:
    def test_grid_points(self):
        result = run_experiment("table6", CI.with_updates(epochs=1))
        assert len(result.auc) == 9
        best = result.best_point()
        assert best in result.auc


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2.run(CI)

    def test_tables_populated(self, result):
        assert result.inter and result.intra

    def test_dispersion_ratio_sane(self, result):
        """The paper's §3 claim (inter dispersion > intra) is enforced at
        DEFAULT scale by bench_fig2; at CI scale FI estimates carry large
        sampling error, so only a sanity band is checked here."""
        assert result.mean_dispersion_ratio() > 0.5

    def test_format(self, result):
        assert "Fig 2" in result.format()


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3.run(CI)

    def test_inter_variance_exceeds_intra(self, result):
        assert result.inter_std() > result.intra_std()

    def test_proportions_valid(self, result):
        for conc in list(result.inter.values()) + list(result.intra.values()):
            assert 0.0 < conc.proportion <= 1.0


class TestFig5:
    def test_bucket_structure(self):
        result = fig5.run(CI, num_buckets=3, models=("adv-hsc-moe",))
        assert len(result.bucket_sizes) == 3
        # Buckets are ordered by per-category size; mean category size must
        # be non-decreasing even if bucket totals are not (unequal chunking).
        means = [size / len(tcs) for size, tcs in
                 zip(result.bucket_sizes, result.bucket_tcs)]
        assert means == sorted(means)
        assert len(result.improvements["adv-hsc-moe"]) == 3
        small, large = result.small_vs_large_gain()
        assert np.isfinite(small) and np.isfinite(large)


class TestFig6:
    def test_panels(self):
        result = run_experiment("fig6", CI.with_updates(tsne_examples=40, tsne_iters=80))
        assert set(result.panels) == {"moe", "adv-moe", "adv-hsc-moe"}
        for analysis in result.panels.values():
            assert analysis.embedding.shape[1] == 2
        assert isinstance(result.ordering_holds(), bool)


class TestFig7:
    def test_small_grid(self):
        result = fig7.run(CI.with_updates(epochs=1),
                          grid={"num_experts": [6], "top_k": [2, 4],
                                "num_disagreeing": [1]})
        assert set(result.auc) == {(6, 2, 1), (6, 4, 1)}
        assert result.k_effect() == {(6, 1): result.auc[(6, 4, 1)] - result.auc[(6, 2, 1)]}


class TestFig8:
    def test_case_study(self):
        result = run_experiment("fig8", CI)
        assert len(result.baseline.items) == 3
        assert len(result.improved.items) == 3
        assert result.baseline.session_id == result.improved.session_id
        assert "Fig 8" in result.format()


class TestQuerycat:
    def test_runs(self):
        result = run_experiment("querycat", CI)
        assert 0.0 <= result.result.sc_accuracy <= 1.0
        assert result.result.tc_accuracy >= result.result.sc_accuracy - 1e-9


class TestTable2MultiSeed:
    def test_mean_and_spread_reported(self):
        result = table2.run(CI, models=("dnn",), seeds=(0, 1))
        assert result.num_seeds == 2
        assert "dnn" in result.spread
        assert result.spread["dnn"]["auc"] >= 0.0
        assert "mean of 2 seeds" in result.format()

    def test_single_seed_has_no_spread(self):
        result = table2.run(CI, models=("dnn",), seed=0)
        assert result.spread == {}
        assert result.num_seeds == 1
