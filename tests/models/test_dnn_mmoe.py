"""Tests for the DNN baseline and the MMoE baseline."""

import numpy as np
import pytest

from repro.models import DNNRanker, MMoERanker, ModelConfig, assign_category_buckets


@pytest.fixture()
def batch(train_dataset):
    return train_dataset.batch(np.arange(40))


class TestDNN:
    def test_forward_shapes(self, train_dataset, tiny_model_config, batch):
        model = DNNRanker(train_dataset.spec, tiny_model_config)
        out = model.forward(batch)
        assert out.logits.shape == (40,)
        assert out.expert_logits is None and out.gate_probs is None

    def test_loss_is_ce(self, train_dataset, tiny_model_config, batch):
        model = DNNRanker(train_dataset.spec, tiny_model_config)
        loss, info = model.loss(batch)
        assert loss.item() == pytest.approx(info["ce"])

    def test_same_structure_as_single_expert(self, train_dataset, tiny_model_config):
        """Paper §5.1.4: DNN == one expert tower."""
        from repro.models import MoERanker
        from repro.hierarchy import default_taxonomy
        dnn = DNNRanker(train_dataset.spec, tiny_model_config)
        moe = MoERanker(train_dataset.spec, default_taxonomy(), tiny_model_config)
        dnn_shapes = [p.shape for p in dnn.tower.parameters()]
        expert_shapes = [p.shape for p in moe.experts[0].parameters()]
        assert dnn_shapes == expert_shapes

    def test_deterministic_given_seed(self, train_dataset, tiny_model_config, batch):
        a = DNNRanker(train_dataset.spec, tiny_model_config)
        b = DNNRanker(train_dataset.spec, tiny_model_config)
        np.testing.assert_allclose(a.predict(batch), b.predict(batch))


class TestBucketAssignment:
    def test_all_categories_assigned(self):
        tc_ids = np.repeat(np.arange(7), [100, 90, 50, 30, 20, 10, 5])
        buckets = assign_category_buckets(tc_ids, 3)
        assert set(buckets) == set(range(7))
        assert set(buckets.values()) <= {0, 1, 2}

    def test_loads_roughly_balanced(self):
        counts = [1000, 900, 800, 100, 90, 80, 70, 60]
        tc_ids = np.repeat(np.arange(8), counts)
        buckets = assign_category_buckets(tc_ids, 4)
        loads = np.zeros(4)
        for tc, bucket in buckets.items():
            loads[bucket] += counts[tc]
        # LPT keeps the heaviest bucket within a small factor of the lightest
        # (here the three huge categories force a 1000-vs-440 spread at best).
        assert loads.max() / loads.min() < 3.0

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            assign_category_buckets(np.array([0, 1]), 0)

    def test_more_buckets_than_categories(self):
        buckets = assign_category_buckets(np.array([0, 0, 1]), 10)
        assert set(buckets) == {0, 1}


class TestMMoE:
    @pytest.fixture()
    def mmoe(self, train_dataset, tiny_model_config):
        config = tiny_model_config.with_updates(num_tasks=4, num_disagreeing=0)
        buckets = assign_category_buckets(train_dataset.query_tc, 4)
        return MMoERanker(train_dataset.spec, buckets, config)

    def test_forward_shapes(self, mmoe, batch, tiny_model_config):
        out = mmoe.forward(batch)
        assert out.logits.shape == (40,)
        assert out.gate_probs.shape == (40, tiny_model_config.num_experts)

    def test_dense_softmax_gate(self, mmoe, batch):
        """MMoE uses a dense softmax (no top-K zeros)."""
        out = mmoe.forward(batch)
        assert (out.gate_probs.data > 0).all()
        np.testing.assert_allclose(out.gate_probs.data.sum(axis=1), np.ones(40))

    def test_examples_routed_by_bucket(self, mmoe, batch):
        out = mmoe.forward(batch)
        buckets = out.extras["buckets"]
        expected = mmoe._bucket_of[np.clip(batch.sparse["query_tc"], 0,
                                           len(mmoe._bucket_of) - 1)]
        np.testing.assert_array_equal(buckets, expected)

    def test_same_bucket_same_gate_weights(self, mmoe, train_dataset):
        """Two examples in the same bucket with the same gate input get the
        same gate distribution."""
        mmoe.eval()
        sc = train_dataset.query_sc[0]
        rows = np.flatnonzero(train_dataset.query_sc == sc)[:4]
        out = mmoe.forward(train_dataset.batch(rows))
        assert np.abs(out.gate_probs.data - out.gate_probs.data[0]).max() < 1e-12

    def test_bucket_out_of_tasks_rejected(self, train_dataset, tiny_model_config):
        config = tiny_model_config.with_updates(num_tasks=2, num_disagreeing=0)
        with pytest.raises(ValueError):
            MMoERanker(train_dataset.spec, {0: 0, 1: 5}, config)

    def test_gradients_flow(self, mmoe, batch):
        loss, _ = mmoe.loss(batch)
        loss.backward()
        assert mmoe.gate_weight.grad is not None
        assert all(any(p.grad is not None for p in e.parameters())
                   for e in mmoe.experts)
