"""Compiled-vs-Tensor scoring parity for every buildable model config.

The serving fast lane (``model.score``) must be numerically interchangeable
with the autograd reference path (``model.predict``): ≤1e-12 in float64,
≤1e-6 in float32, for every factory model and the BiGRU query classifier.
"""

import threading

import numpy as np
import pytest

from repro import nn
from repro.models import build_model
from repro.models.factory import MODEL_NAMES
from repro.nn.infer import softmax_array
from repro.querycat import QueryCategoryClassifier, QueryClassifierConfig


@pytest.fixture(scope="module")
def batch(dataset):
    return dataset.batch(np.arange(96))


def _build(name, dataset, taxonomy, tiny_model_config, dtype):
    with nn.default_dtype(dtype):
        return build_model(name, dataset.spec, taxonomy, tiny_model_config,
                           train_dataset=dataset)


class TestFactorySweep:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_f64_parity(self, name, dataset, taxonomy, tiny_model_config, batch):
        model = _build(name, dataset, taxonomy, tiny_model_config, np.float64)
        reference = model.predict(batch)
        fast = model.score(batch)
        assert fast.shape == reference.shape
        np.testing.assert_allclose(fast, reference, atol=1e-12)

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_f32_parity(self, name, dataset, taxonomy, tiny_model_config, batch):
        model = _build(name, dataset, taxonomy, tiny_model_config, np.float32)
        ds32 = dataset.astype(np.float32)
        batch32 = ds32.batch(np.arange(96))
        reference = model.predict(batch32)
        fast = model.score(batch32)
        assert fast.dtype == np.float32
        np.testing.assert_allclose(fast, reference, atol=1e-6)

    def test_score_tracks_training(self, dataset, taxonomy, tiny_model_config, batch):
        """The cached scorer must see post-compile weight updates."""
        model = _build("dnn", dataset, taxonomy, tiny_model_config, np.float64)
        before = model.score(batch).copy()
        for param in model.parameters():
            param.data = param.data + 0.05
        after = model.score(batch)
        assert not np.allclose(before, after)
        np.testing.assert_allclose(after, model.predict(batch), atol=1e-12)

    def test_predict_proba_aliases_score(self, dataset, taxonomy,
                                         tiny_model_config, batch):
        model = _build("moe", dataset, taxonomy, tiny_model_config, np.float64)
        np.testing.assert_array_equal(model.predict_proba(batch),
                                      model.score(batch))

    def test_negative_sparse_id_raises_like_predict(self, dataset, taxonomy,
                                                    tiny_model_config):
        """A corrupt serving request must fail, not silently wrap to the
        last embedding row (the Tensor path raises IndexError too)."""
        model = _build("dnn", dataset, taxonomy, tiny_model_config, np.float64)
        bad = dataset.batch(np.arange(4))
        bad.sparse["query_sc"] = bad.sparse["query_sc"].copy()
        bad.sparse["query_sc"][0] = -1
        with pytest.raises(IndexError):
            model.predict(bad)
        with pytest.raises(IndexError):
            model.score(bad)

    def test_concurrent_score_is_serialized(self, dataset, taxonomy,
                                            tiny_model_config):
        """One model object may sit behind several serving routes; its
        shared plan buffers must survive concurrent score() callers."""
        model = _build("moe", dataset, taxonomy, tiny_model_config, np.float64)
        batches = [dataset.batch(np.arange(i, i + 16)) for i in range(24)]
        expected = [model.score(b).copy() for b in batches]
        results: dict[int, np.ndarray] = {}

        def worker(i):
            results[i] = model.score(batches[i])
        threads = [threading.Thread(target=worker, args=(i,)) for i in range(24)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(24):
            np.testing.assert_array_equal(results[i], expected[i])


class TestClassifierParity:
    @pytest.mark.parametrize("dtype,atol", [(np.float64, 1e-12), (np.float32, 1e-6)])
    def test_proba_matches_tensor_softmax(self, log, taxonomy, dtype, atol):
        queries = log.queries
        with nn.default_dtype(dtype):
            model = QueryCategoryClassifier(
                queries.vocab_size, taxonomy.max_sc_id() + 1,
                QueryClassifierConfig(embedding_dim=8, hidden_size=10))
        tokens, lengths = queries.tokens[:48], queries.lengths[:48]
        with nn.no_grad():
            logits = model(tokens, lengths).data
        probs = model.predict_proba(tokens, lengths)
        np.testing.assert_allclose(probs, softmax_array(logits, axis=1), atol=atol)
        assert probs.shape == (48, taxonomy.max_sc_id() + 1)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-5)

    def test_predict_sc_matches_tensor_argmax(self, log, taxonomy):
        queries = log.queries
        model = QueryCategoryClassifier(
            queries.vocab_size, taxonomy.max_sc_id() + 1,
            QueryClassifierConfig(embedding_dim=8, hidden_size=10))
        tokens, lengths = queries.tokens[:48], queries.lengths[:48]
        with nn.no_grad():
            reference = model(tokens, lengths).data.argmax(axis=1)
        np.testing.assert_array_equal(model.predict_sc(tokens, lengths), reference)

    def test_concurrent_predict_sc_is_serialized(self, log, taxonomy):
        """Concurrent intent classification (RankingService.rank callers)
        must not corrupt the shared plan scratch buffers."""
        queries = log.queries
        model = QueryCategoryClassifier(
            queries.vocab_size, taxonomy.max_sc_id() + 1,
            QueryClassifierConfig(embedding_dim=8, hidden_size=10))
        slices = [(queries.tokens[i:i + 8], queries.lengths[i:i + 8])
                  for i in range(16)]
        expected = [model.predict_sc(t, l) for t, l in slices]
        results: dict[int, np.ndarray] = {}

        def worker(i):
            t, l = slices[i]
            results[i] = model.predict_sc(t, l)
        threads = [threading.Thread(target=worker, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(16):
            np.testing.assert_array_equal(results[i], expected[i])
