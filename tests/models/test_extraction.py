"""Tests for expert extraction / dedicated models (paper §1, §6)."""

import numpy as np
import pytest

from repro.models import (DedicatedRanker, MoERanker, expert_utilization,
                          extract_dedicated_model)
from repro.models.regularizers import load_balancing_loss
from repro import nn


@pytest.fixture()
def moe(train_dataset, taxonomy, tiny_model_config):
    return MoERanker(train_dataset.spec, taxonomy, tiny_model_config,
                     use_hsc=True, use_adv=True)


class TestExtraction:
    def test_extracts_topk_experts(self, moe, train_dataset, tiny_model_config):
        sc = int(train_dataset.query_sc[0])
        dedicated = extract_dedicated_model(moe, sc, train_dataset)
        assert len(dedicated.experts) == tiny_model_config.top_k
        assert dedicated.sc_id == sc
        np.testing.assert_allclose(dedicated.gate_weights.sum(), 1.0)

    def test_matches_parent_predictions_on_category(self, moe, train_dataset):
        """Frozen-gate extraction reproduces the parent on its category."""
        sc = int(train_dataset.query_sc[0])
        rows = np.flatnonzero(train_dataset.query_sc == sc)[:20]
        batch = train_dataset.batch(rows)
        dedicated = extract_dedicated_model(moe, sc, train_dataset)
        np.testing.assert_allclose(dedicated.predict(batch), moe.predict(batch),
                                   atol=1e-10)

    def test_unknown_category_raises(self, moe, train_dataset):
        with pytest.raises(ValueError):
            extract_dedicated_model(moe, 10_000, train_dataset)

    def test_fine_tuning_does_not_touch_parent(self, moe, train_dataset):
        sc = int(train_dataset.query_sc[0])
        dedicated = extract_dedicated_model(moe, sc, train_dataset)
        parent_state = {k: v.copy() for k, v in moe.state_dict().items()}
        rows = np.flatnonzero(train_dataset.query_sc == sc)[:64]
        batch = train_dataset.batch(rows)
        optimizer = nn.optim.Adam(dedicated.parameters(), lr=1e-2)
        for _ in range(3):
            optimizer.zero_grad()
            loss, _ = dedicated.loss(batch)
            loss.backward()
            optimizer.step()
        for key, value in moe.state_dict().items():
            np.testing.assert_array_equal(value, parent_state[key])

    def test_fine_tuning_improves_fit(self, moe, train_dataset):
        sc = int(train_dataset.query_sc[0])
        dedicated = extract_dedicated_model(moe, sc, train_dataset)
        rows = np.flatnonzero(train_dataset.query_sc == sc)[:128]
        batch = train_dataset.batch(rows)
        loss0, _ = dedicated.loss(batch)
        optimizer = nn.optim.Adam(dedicated.parameters(), lr=1e-2)
        for _ in range(10):
            optimizer.zero_grad()
            loss, _ = dedicated.loss(batch)
            loss.backward()
            optimizer.step()
        loss1, _ = dedicated.loss(batch)
        assert loss1.item() < loss0.item()

    def test_freeze_embedder(self, moe, train_dataset):
        sc = int(train_dataset.query_sc[0])
        dedicated = extract_dedicated_model(moe, sc, train_dataset)
        dedicated.freeze_embedder()
        trainable = list(dedicated.trainable_parameters())
        embedder_params = set(id(p) for p in dedicated.embedder.parameters())
        assert all(id(p) not in embedder_params for p in trainable)
        assert trainable  # expert towers remain trainable

    def test_weight_validation(self, moe, train_dataset):
        sc = int(train_dataset.query_sc[0])
        dedicated = extract_dedicated_model(moe, sc, train_dataset)
        with pytest.raises(ValueError):
            DedicatedRanker(dedicated.embedder, list(dedicated.experts),
                            np.array([0.5, 0.2]), [0, 1], sc)


class TestExpertUtilization:
    def test_distribution(self, moe, train_dataset, tiny_model_config):
        shares = expert_utilization(moe, train_dataset, max_examples=500)
        assert shares.shape == (tiny_model_config.num_experts,)
        np.testing.assert_allclose(shares.sum(), 1.0)
        assert (shares >= 0).all()


class TestLoadBalancingLoss:
    def test_zero_for_uniform_gate(self):
        probs = nn.Tensor(np.full((8, 4), 0.25))
        assert load_balancing_loss(probs).item() == pytest.approx(0.0)

    def test_positive_for_collapsed_gate(self):
        probs = np.zeros((8, 4))
        probs[:, 0] = 1.0
        assert load_balancing_loss(nn.Tensor(probs)).item() > 1.0

    def test_enters_training_loss_when_enabled(self, train_dataset, taxonomy,
                                               tiny_model_config):
        config = tiny_model_config.with_updates(lambda_load=0.1)
        model = MoERanker(train_dataset.spec, taxonomy, config)
        batch = train_dataset.batch(np.arange(32))
        _, info = model.loss(batch, rng=np.random.default_rng(0))
        assert "load_balance" in info

    def test_gradient_flows_to_gate(self):
        probs = nn.Tensor(np.random.default_rng(0).dirichlet(np.ones(4), size=8),
                          requires_grad=True)
        load_balancing_loss(probs).backward()
        assert probs.grad is not None
