"""Tests for HSC (eq. 9-11) and AdvLoss (eq. 12) regularizers."""

import numpy as np
import pytest

from repro import nn
from repro.models.gates import NoisyTopKGate
from repro.models.regularizers import (adversarial_loss, hsc_loss,
                                       sample_disagreeing_experts)


def make_gate_output(seed=0, batch=4, experts=8, k=3):
    gate = NoisyTopKGate(5, experts, k=k, rng=np.random.default_rng(seed))
    gate.eval()
    x = nn.Tensor(np.random.default_rng(seed + 1).normal(size=(batch, 5)))
    return gate(x)


class TestHSCLoss:
    def test_zero_when_distributions_match(self):
        out = make_gate_output()
        loss = hsc_loss(out, out.full_softmax)
        assert loss.item() < 1e-12

    def test_positive_when_distributions_differ(self):
        out = make_gate_output(seed=0)
        other = make_gate_output(seed=5)
        assert hsc_loss(out, other.full_softmax).item() > 0

    def test_restricted_leq_full_support(self):
        """Summing over top-K only can never exceed the full-support sum."""
        out = make_gate_output(seed=0)
        other = make_gate_output(seed=5)
        restricted = hsc_loss(out, other.full_softmax, restrict_to_topk=True).item()
        full = hsc_loss(out, other.full_softmax, restrict_to_topk=False).item()
        assert restricted <= full + 1e-12

    def test_gradient_flows_to_both_gates(self):
        inference = NoisyTopKGate(5, 8, k=3, rng=np.random.default_rng(0))
        constraint = NoisyTopKGate(4, 8, k=3, noisy=False, rng=np.random.default_rng(1))
        inference.eval()
        constraint.eval()
        gi = inference(nn.Tensor(np.random.default_rng(2).normal(size=(4, 5))))
        gc = constraint(nn.Tensor(np.random.default_rng(3).normal(size=(4, 4))))
        hsc_loss(gi, gc.full_softmax).backward()
        assert inference.weight.grad is not None
        assert constraint.weight.grad is not None

    def test_matches_manual_formula(self):
        """HSC = mean_batch sum_{i in topK} (pI_i - pC_i)^2 (eq. 11)."""
        out = make_gate_output(seed=0)
        other = make_gate_output(seed=5)
        loss = hsc_loss(out, other.full_softmax).item()
        pi = out.full_softmax.data
        pc = other.full_softmax.data
        manual = 0.0
        for row in range(pi.shape[0]):
            idx = out.topk_indices[row]
            manual += ((pi[row, idx] - pc[row, idx]) ** 2).sum()
        manual /= pi.shape[0]
        assert loss == pytest.approx(manual)


class TestSampleDisagreeing:
    def test_disjoint_from_topk(self):
        """U_D ∩ U_topK = ∅ (§4.4), for every row and many draws."""
        rng = np.random.default_rng(0)
        mask = np.zeros((6, 10), dtype=bool)
        mask[:, :4] = True  # top-4 selected
        for _ in range(20):
            disagreeing = sample_disagreeing_experts(mask, 3, rng)
            assert not mask[np.arange(6)[:, None], disagreeing].any()

    def test_within_range_and_unique_per_row(self):
        rng = np.random.default_rng(0)
        mask = np.zeros((5, 8), dtype=bool)
        mask[:, [0, 1]] = True
        disagreeing = sample_disagreeing_experts(mask, 4, rng)
        assert disagreeing.shape == (5, 4)
        for row in disagreeing:
            assert len(set(row.tolist())) == 4

    def test_d_too_large_raises(self):
        rng = np.random.default_rng(0)
        mask = np.zeros((2, 5), dtype=bool)
        mask[:, :3] = True
        with pytest.raises(ValueError):
            sample_disagreeing_experts(mask, 3, rng)

    def test_randomness_across_calls(self):
        rng = np.random.default_rng(0)
        mask = np.zeros((50, 10), dtype=bool)
        mask[:, :2] = True
        a = sample_disagreeing_experts(mask, 1, rng)
        b = sample_disagreeing_experts(mask, 1, rng)
        assert not np.array_equal(a, b)


class TestAdversarialLoss:
    def test_zero_when_experts_identical(self):
        logits = nn.Tensor(np.ones((4, 6)))
        topk = np.tile(np.array([[0, 1]]), (4, 1))
        disagreeing = np.tile(np.array([[3]]), (4, 1))
        assert adversarial_loss(logits, topk, disagreeing).item() == 0.0

    def test_positive_when_experts_differ(self):
        logits = nn.Tensor(np.random.default_rng(0).normal(size=(4, 6)) * 3)
        topk = np.tile(np.array([[0, 1]]), (4, 1))
        disagreeing = np.tile(np.array([[3]]), (4, 1))
        assert adversarial_loss(logits, topk, disagreeing).item() > 0

    def test_matches_manual_formula(self):
        """AdvLoss = mean_batch sum_{i,j} (σ(E_i) - σ(E_j))^2 (eq. 12)."""
        rng = np.random.default_rng(0)
        raw = rng.normal(size=(3, 6))
        logits = nn.Tensor(raw)
        topk = np.array([[0, 1], [2, 3], [4, 5]])
        disagreeing = np.array([[5], [0], [1]])
        loss = adversarial_loss(logits, topk, disagreeing).item()
        sigma = 1 / (1 + np.exp(-raw))
        manual = 0.0
        for b in range(3):
            for i in topk[b]:
                for j in disagreeing[b]:
                    manual += (sigma[b, i] - sigma[b, j]) ** 2
        manual /= 3
        assert loss == pytest.approx(manual)

    def test_on_logits_ablation(self):
        raw = np.random.default_rng(0).normal(size=(2, 4)) * 5
        logits = nn.Tensor(raw)
        topk = np.array([[0], [1]])
        disagreeing = np.array([[2], [3]])
        on_sigmoid = adversarial_loss(logits, topk, disagreeing, on_sigmoid=True).item()
        on_logits = adversarial_loss(logits, topk, disagreeing, on_sigmoid=False).item()
        assert on_sigmoid != pytest.approx(on_logits)

    def test_bounded_when_on_sigmoid(self):
        """σ outputs are in (0,1), so per-pair distance < 1."""
        logits = nn.Tensor(np.random.default_rng(0).normal(size=(10, 6)) * 100)
        topk = np.tile(np.array([[0, 1]]), (10, 1))
        disagreeing = np.tile(np.array([[3, 4]]), (10, 1))
        loss = adversarial_loss(logits, topk, disagreeing).item()
        assert loss <= 2 * 2 * 1.0  # K*D pairs, each < 1

    def test_gradient_reaches_both_expert_groups(self):
        logits = nn.Tensor(np.random.default_rng(0).normal(size=(3, 6)),
                           requires_grad=True)
        topk = np.array([[0, 1], [0, 1], [0, 1]])
        disagreeing = np.array([[4], [4], [4]])
        adversarial_loss(logits, topk, disagreeing).backward()
        grads = np.abs(logits.grad).sum(axis=0)
        assert grads[0] > 0 and grads[4] > 0
        assert grads[2] == 0 and grads[3] == 0 and grads[5] == 0
