"""Tests for the Noisy Top-K gate (eq. 5-7)."""

import numpy as np
import pytest

from repro import nn
from repro.models.gates import NoisyTopKGate, _mask_to_indices


@pytest.fixture()
def gate():
    return NoisyTopKGate(input_width=6, num_experts=8, k=3,
                         rng=np.random.default_rng(0))


def random_input(batch=5, width=6, seed=1):
    return nn.Tensor(np.random.default_rng(seed).normal(size=(batch, width)))


class TestGateOutput:
    def test_shapes(self, gate):
        out = gate(random_input())
        assert out.clean_logits.shape == (5, 8)
        assert out.probs.shape == (5, 8)
        assert out.full_softmax.shape == (5, 8)
        assert out.topk_mask.shape == (5, 8)
        assert out.topk_indices.shape == (5, 3)

    def test_exactly_k_active(self, gate):
        out = gate(random_input())
        assert (out.topk_mask.sum(axis=1) == 3).all()
        assert ((out.probs.data > 0).sum(axis=1) == 3).all()

    def test_probs_sum_to_one(self, gate):
        out = gate(random_input())
        np.testing.assert_allclose(out.probs.data.sum(axis=1), np.ones(5))

    def test_full_softmax_positive_everywhere(self, gate):
        out = gate(random_input())
        assert (out.full_softmax.data > 0).all()

    def test_bias_free_linear_map(self, gate):
        """Eq. 5: G^I(x) = x W^I with no bias — zero input gives zero logits."""
        gate.eval()
        out = gate(nn.Tensor(np.zeros((2, 6))))
        np.testing.assert_allclose(out.clean_logits.data, 0.0)

    def test_k_override(self, gate):
        out = gate(random_input(), k=5)
        assert (out.topk_mask.sum(axis=1) == 5).all()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            NoisyTopKGate(4, 8, k=9)


class TestNoise:
    def test_noise_only_in_training(self, gate):
        x = random_input()
        gate.eval()
        a = gate(x).noisy_logits.data
        b = gate(x).noisy_logits.data
        np.testing.assert_allclose(a, b)
        np.testing.assert_allclose(a, gate(x).clean_logits.data)

    def test_noise_varies_in_training(self, gate):
        gate.train()
        x = random_input()
        a = gate(x).noisy_logits.data
        b = gate(x).noisy_logits.data
        assert not np.allclose(a, b)

    def test_noisy_flag_disables_noise(self):
        gate = NoisyTopKGate(6, 8, k=3, noisy=False, rng=np.random.default_rng(0))
        gate.train()
        x = random_input()
        np.testing.assert_allclose(gate(x).noisy_logits.data,
                                   gate(x).clean_logits.data)

    def test_noise_weight_is_trainable(self, gate):
        gate.train()
        out = gate(random_input())
        out.probs.sum().backward()
        assert gate.noise_weight.grad is not None

    def test_initial_noise_scale_is_small(self, gate):
        """noise_bias starts at -2 so the initial noise std is softplus(-2)
        ≈ 0.13, not Shazeer's 0.69 (see the class docstring rationale)."""
        gate.train()
        x = nn.Tensor(np.zeros((2000, 6)))
        out = gate(x)
        noise = out.noisy_logits.data - out.clean_logits.data
        assert 0.05 < noise.std() < 0.25

    def test_noise_bias_is_trainable(self, gate):
        gate.train()
        out = gate(random_input())
        out.probs.sum().backward()
        assert gate.noise_bias.grad is not None


class TestSelectionConsistency:
    def test_same_sc_embedding_same_selection(self, gate):
        """Identical gate inputs must select identical expert sets (eval)."""
        gate.eval()
        x = np.random.default_rng(2).normal(size=(1, 6))
        batch = nn.Tensor(np.repeat(x, 4, axis=0))
        out = gate(batch)
        assert (out.topk_mask == out.topk_mask[0]).all()

    def test_mask_to_indices_roundtrip(self):
        mask = np.array([[True, False, True], [False, True, True]])
        indices = _mask_to_indices(mask, 2)
        np.testing.assert_array_equal(indices, [[0, 2], [1, 2]])

    def test_gradient_reaches_gate_weight(self, gate):
        gate.eval()
        out = gate(random_input())
        (out.probs ** 2).sum().backward()
        assert gate.weight.grad is not None
        assert np.abs(gate.weight.grad).sum() > 0
