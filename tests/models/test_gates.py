"""Tests for the Noisy Top-K gate (eq. 5-7)."""

import numpy as np
import pytest

from repro import nn
from repro.models.gates import NoisyTopKGate, _mask_to_indices


@pytest.fixture()
def gate():
    return NoisyTopKGate(input_width=6, num_experts=8, k=3,
                         rng=np.random.default_rng(0))


def random_input(batch=5, width=6, seed=1):
    return nn.Tensor(np.random.default_rng(seed).normal(size=(batch, width)))


class TestGateOutput:
    def test_shapes(self, gate):
        out = gate(random_input())
        assert out.clean_logits.shape == (5, 8)
        assert out.probs.shape == (5, 8)
        assert out.full_softmax.shape == (5, 8)
        assert out.topk_mask.shape == (5, 8)
        assert out.topk_indices.shape == (5, 3)

    def test_exactly_k_active(self, gate):
        out = gate(random_input())
        assert (out.topk_mask.sum(axis=1) == 3).all()
        assert ((out.probs.data > 0).sum(axis=1) == 3).all()

    def test_probs_sum_to_one(self, gate):
        out = gate(random_input())
        np.testing.assert_allclose(out.probs.data.sum(axis=1), np.ones(5))

    def test_full_softmax_positive_everywhere(self, gate):
        out = gate(random_input())
        assert (out.full_softmax.data > 0).all()

    def test_bias_free_linear_map(self, gate):
        """Eq. 5: G^I(x) = x W^I with no bias — zero input gives zero logits."""
        gate.eval()
        out = gate(nn.Tensor(np.zeros((2, 6))))
        np.testing.assert_allclose(out.clean_logits.data, 0.0)

    def test_k_override(self, gate):
        out = gate(random_input(), k=5)
        assert (out.topk_mask.sum(axis=1) == 5).all()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            NoisyTopKGate(4, 8, k=9)


class TestNoise:
    def test_noise_only_in_training(self, gate):
        x = random_input()
        gate.eval()
        a = gate(x).noisy_logits.data
        b = gate(x).noisy_logits.data
        np.testing.assert_allclose(a, b)
        np.testing.assert_allclose(a, gate(x).clean_logits.data)

    def test_noise_varies_in_training(self, gate):
        gate.train()
        x = random_input()
        a = gate(x).noisy_logits.data
        b = gate(x).noisy_logits.data
        assert not np.allclose(a, b)

    def test_noisy_flag_disables_noise(self):
        gate = NoisyTopKGate(6, 8, k=3, noisy=False, rng=np.random.default_rng(0))
        gate.train()
        x = random_input()
        np.testing.assert_allclose(gate(x).noisy_logits.data,
                                   gate(x).clean_logits.data)

    def test_noise_weight_is_trainable(self, gate):
        gate.train()
        out = gate(random_input())
        out.probs.sum().backward()
        assert gate.noise_weight.grad is not None

    def test_initial_noise_scale_is_small(self, gate):
        """noise_bias starts at -2 so the initial noise std is softplus(-2)
        ≈ 0.13, not Shazeer's 0.69 (see the class docstring rationale)."""
        gate.train()
        x = nn.Tensor(np.zeros((2000, 6)))
        out = gate(x)
        noise = out.noisy_logits.data - out.clean_logits.data
        assert 0.05 < noise.std() < 0.25

    def test_noise_bias_is_trainable(self, gate):
        gate.train()
        out = gate(random_input())
        out.probs.sum().backward()
        assert gate.noise_bias.grad is not None


class TestSelectionConsistency:
    def test_same_sc_embedding_same_selection(self, gate):
        """Identical gate inputs must select identical expert sets (eval)."""
        gate.eval()
        x = np.random.default_rng(2).normal(size=(1, 6))
        batch = nn.Tensor(np.repeat(x, 4, axis=0))
        out = gate(batch)
        assert (out.topk_mask == out.topk_mask[0]).all()

    def test_mask_to_indices_roundtrip(self):
        mask = np.array([[True, False, True], [False, True, True]])
        indices = _mask_to_indices(mask, 2)
        np.testing.assert_array_equal(indices, [[0, 2], [1, 2]])

    def test_gradient_reaches_gate_weight(self, gate):
        gate.eval()
        out = gate(random_input())
        (out.probs ** 2).sum().backward()
        assert gate.weight.grad is not None
        assert np.abs(gate.weight.grad).sum() > 0


class _GatePair(nn.Module):
    """Minimal module tree holding two RNG-bearing gates (reseed tests)."""

    def __init__(self):
        super().__init__()
        self.first = NoisyTopKGate(6, 8, k=3, rng=np.random.default_rng(1))
        self.second = NoisyTopKGate(6, 8, k=3, rng=np.random.default_rng(1))


def _noise(gate, x):
    """The actual noise drawn for one training forward pass."""
    gate.train()
    out = gate(x)
    return out.noisy_logits.data - out.clean_logits.data


class TestRngContract:
    """The fork-safety contract: seeded defaults, explicit reseeding.

    The default-rng fallback used to be ``np.random.default_rng()`` —
    OS entropy — so two gates built identically diverged, breaking the
    single-seed reproducibility promise of ``repro.nn.init``.  These
    are the regression tests for that fix and for the per-child reseed
    seam multi-process serving relies on.
    """

    def test_default_rng_is_seeded(self):
        """Two gates built without an rng must be bit-identical, noise
        included (fails on the unseeded ``default_rng()`` fallback)."""
        a, b = NoisyTopKGate(6, 8, k=3), NoisyTopKGate(6, 8, k=3)
        x = random_input()
        np.testing.assert_array_equal(_noise(a, x), _noise(b, x))

    def test_gate_reseed_redirects_noise_stream(self, gate):
        x = random_input()
        _noise(gate, x)                       # advance the original stream
        gate.reseed(np.random.default_rng(7))
        fresh = NoisyTopKGate(6, 8, k=3, rng=np.random.default_rng(0))
        fresh.reseed(np.random.default_rng(7))
        np.testing.assert_array_equal(_noise(gate, x), _noise(fresh, x))

    def test_module_reseed_is_reproducible_and_independent(self):
        x = random_input()
        pair = _GatePair().reseed(0)
        again = _GatePair().reseed(0)
        # Same seed → same streams, gate by gate.
        np.testing.assert_array_equal(_noise(pair.first, x),
                                      _noise(again.first, x))
        np.testing.assert_array_equal(_noise(pair.second, x),
                                      _noise(again.second, x))
        # But sibling gates get *independent* spawned streams, even though
        # they were constructed from identical generators.
        assert not np.allclose(_noise(pair.first, x), _noise(pair.second, x))

    def test_module_reseed_entropy_tuple_matches_worker_contract(self):
        """Serving children reseed from ``(seed, version, worker_index)``:
        same tuple → identical streams, different worker → divergent."""
        x = random_input()
        worker0 = _GatePair().reseed(
            np.random.SeedSequence(entropy=(0, 1, 0)))
        worker0_again = _GatePair().reseed(
            np.random.SeedSequence(entropy=(0, 1, 0)))
        worker1 = _GatePair().reseed(
            np.random.SeedSequence(entropy=(0, 1, 1)))
        np.testing.assert_array_equal(_noise(worker0.first, x),
                                      _noise(worker0_again.first, x))
        assert not np.allclose(_noise(worker0.first, x),
                               _noise(worker1.first, x))
