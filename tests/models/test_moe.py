"""Tests for MoERanker and its variants."""

import numpy as np
import pytest

from repro import nn
from repro.models import ModelConfig, MoERanker


@pytest.fixture()
def batch(train_dataset):
    return train_dataset.batch(np.arange(32))


@pytest.fixture()
def moe(train_dataset, taxonomy, tiny_model_config):
    return MoERanker(train_dataset.spec, taxonomy, tiny_model_config)


@pytest.fixture()
def full_model(train_dataset, taxonomy, tiny_model_config):
    return MoERanker(train_dataset.spec, taxonomy, tiny_model_config,
                     use_hsc=True, use_adv=True)


class TestForward:
    def test_output_shapes(self, moe, batch, tiny_model_config):
        out = moe.forward(batch)
        n = tiny_model_config.num_experts
        assert out.logits.shape == (32,)
        assert out.expert_logits.shape == (32, n)
        assert out.gate_probs.shape == (32, n)
        assert out.topk_indices.shape == (32, tiny_model_config.top_k)

    def test_prediction_is_topk_mixture(self, moe, batch):
        """The ensemble logit equals sum_i P_i * E_i over selected experts."""
        moe.eval()
        out = moe.forward(batch)
        manual = (out.gate_probs.data * out.expert_logits.data).sum(axis=1)
        np.testing.assert_allclose(out.logits.data, manual, atol=1e-12)

    def test_scores_are_probabilities(self, moe, batch):
        scores = moe.predict(batch)
        assert scores.shape == (32,)
        assert (scores > 0).all() and (scores < 1).all()

    def test_predict_restores_training_mode(self, moe, batch):
        moe.train()
        moe.predict(batch)
        assert moe.training

    def test_same_session_same_gate(self, moe, train_dataset):
        """Gate input is query-side only ⇒ one expert set per session (§5.4)."""
        moe.eval()
        session = train_dataset.session_ids[0]
        rows = np.flatnonzero(train_dataset.session_ids == session)
        out = moe.forward(train_dataset.batch(rows))
        gate = out.extras["gate"]
        assert (gate.topk_mask == gate.topk_mask[0]).all()
        assert np.abs(out.gate_probs.data - out.gate_probs.data[0]).max() < 1e-12


class TestLoss:
    def test_vanilla_loss_is_ce_only(self, moe, batch, rng):
        loss, info = moe.loss(batch, rng=rng)
        assert set(info) == {"ce", "total"}
        assert loss.item() == pytest.approx(info["ce"])

    def test_hsc_variant_adds_term(self, train_dataset, taxonomy, tiny_model_config, batch, rng):
        model = MoERanker(train_dataset.spec, taxonomy, tiny_model_config, use_hsc=True)
        loss, info = model.loss(batch, rng=rng)
        assert "hsc" in info
        assert loss.item() == pytest.approx(
            info["ce"] + tiny_model_config.lambda_hsc * info["hsc"])

    def test_adv_variant_subtracts_term(self, train_dataset, taxonomy, tiny_model_config, batch, rng):
        model = MoERanker(train_dataset.spec, taxonomy, tiny_model_config, use_adv=True)
        loss, info = model.loss(batch, rng=rng)
        assert "adv" in info
        assert loss.item() == pytest.approx(
            info["ce"] - tiny_model_config.lambda_adv * info["adv"])

    def test_combined_objective(self, full_model, batch, rng):
        """Eq. 14: J = CE + λ1 HSC − λ2 AdvLoss."""
        config = full_model.config
        loss, info = full_model.loss(batch, rng=rng)
        expected = (info["ce"] + config.lambda_hsc * info["hsc"]
                    - config.lambda_adv * info["adv"])
        assert loss.item() == pytest.approx(expected)

    def test_hsc_requires_taxonomy(self, train_dataset, tiny_model_config):
        with pytest.raises(ValueError):
            MoERanker(train_dataset.spec, None, tiny_model_config, use_hsc=True)


class TestGradientRouting:
    """The paper's eq. 15-16: HSC gradients must never reach expert weights."""

    def test_hsc_gradient_skips_experts(self, train_dataset, taxonomy,
                                        tiny_model_config, batch, rng):
        model = MoERanker(train_dataset.spec, taxonomy, tiny_model_config, use_hsc=True)
        output = model.forward(batch)
        gate = output.extras["gate"]
        x_tc = model.embedder.embed("query_tc", batch.sparse["query_tc"])
        constraint = model.constraint_gate(x_tc)
        from repro.models.regularizers import hsc_loss
        hsc = hsc_loss(gate, constraint.full_softmax)
        model.zero_grad()
        hsc.backward()
        # ∇_{expert} HSC ≡ 0 (experts are not in the HSC graph).
        for expert in model.experts:
            for _, param in expert.named_parameters():
                assert param.grad is None
        # But the inference gate and constraint gate do learn from HSC.
        assert model.inference_gate.weight.grad is not None
        assert model.constraint_gate.weight.grad is not None

    def test_adv_gradient_skips_gate_weights(self, train_dataset, taxonomy,
                                             tiny_model_config, batch, rng):
        """AdvLoss depends on expert outputs only; the discrete selection
        gives the gate weight exactly zero AdvLoss gradient."""
        model = MoERanker(train_dataset.spec, taxonomy, tiny_model_config, use_adv=True)
        output = model.forward(batch)
        gate = output.extras["gate"]
        from repro.models.regularizers import adversarial_loss, sample_disagreeing_experts
        disagreeing = sample_disagreeing_experts(gate.topk_mask, 1, rng)
        adv = adversarial_loss(output.expert_logits, gate.topk_indices, disagreeing)
        model.zero_grad()
        adv.backward()
        assert model.inference_gate.weight.grad is None
        assert any(p.grad is not None for e in model.experts for p in e.parameters())

    def test_full_loss_reaches_all_parameters(self, full_model, batch, rng):
        loss, _ = full_model.loss(batch, rng=rng)
        full_model.zero_grad()
        loss.backward()
        # Legitimately grad-free: the noiseless constraint gate's noise
        # weights, and embedding tables for features outside the model input
        # (query_bucket is only used in the Table 5 gate ablation).
        used_tables = {f"embedder.tables.{full_model.embedder._table_index[n]}.weight"
                       for n in (*full_model.config.input_features, "query_tc")}
        missing = [name for name, p in full_model.named_parameters()
                   if p.grad is None
                   and "noise" not in name
                   and (not name.startswith("embedder.") or name in used_tables)]
        assert not missing, f"parameters without gradient: {missing}"


class TestAnalysisHooks:
    def test_gate_vectors(self, full_model, batch, tiny_model_config):
        vectors = full_model.gate_vectors(batch)
        assert vectors.shape == (32, tiny_model_config.num_experts)
        np.testing.assert_allclose(vectors.sum(axis=1), np.ones(32))

    def test_expert_scores(self, full_model, batch, tiny_model_config):
        scores, mask = full_model.expert_scores(batch)
        assert scores.shape == (32, tiny_model_config.num_experts)
        assert (scores > 0).all() and (scores < 1).all()
        assert (mask.sum(axis=1) == tiny_model_config.top_k).all()


class TestTrainingBehaviour:
    def test_one_step_decreases_loss(self, full_model, train_dataset, rng):
        batch = train_dataset.batch(np.arange(128))
        optimizer = nn.optim.Adam(full_model.parameters(), lr=1e-2)
        loss0, _ = full_model.loss(batch, rng=np.random.default_rng(0))
        for _ in range(8):
            optimizer.zero_grad()
            loss, _ = full_model.loss(batch, rng=np.random.default_rng(0))
            loss.backward()
            optimizer.step()
        loss1, _ = full_model.loss(batch, rng=np.random.default_rng(0))
        assert loss1.item() < loss0.item()
