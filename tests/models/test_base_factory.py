"""Tests for FeatureEmbedder, ModelConfig, and the model factory."""

import numpy as np
import pytest

from repro.models import (GATE_FEATURE_PRESETS, MODEL_NAMES, DNNRanker,
                          FeatureEmbedder, MMoERanker, ModelConfig, MoERanker,
                          build_model)


class TestFeatureEmbedder:
    @pytest.fixture()
    def embedder(self, train_dataset):
        return FeatureEmbedder(train_dataset.spec, embedding_dim=4,
                               rng=np.random.default_rng(0))

    def test_input_width_formula(self, embedder, train_dataset):
        expected = len(embedder.input_features) * 4 + train_dataset.spec.num_numeric
        assert embedder.input_width == expected

    def test_model_input_shape(self, embedder, train_dataset):
        batch = train_dataset.batch(np.arange(16))
        x = embedder.model_input(batch)
        assert x.shape == (16, embedder.input_width)

    def test_numeric_block_appended_last(self, embedder, train_dataset):
        batch = train_dataset.batch(np.arange(8))
        x = embedder.model_input(batch)
        m = train_dataset.spec.num_numeric
        np.testing.assert_allclose(x.data[:, -m:], batch.numeric)

    def test_gate_input_single_feature(self, embedder, train_dataset):
        batch = train_dataset.batch(np.arange(8))
        g = embedder.gate_input(batch, ("query_sc",))
        assert g.shape == (8, 4)
        # Must be exactly the SC embedding rows.
        expected = embedder.embed("query_sc", batch.sparse["query_sc"]).data
        np.testing.assert_allclose(g.data, expected)

    def test_gate_input_multi_plus_numeric(self, embedder, train_dataset):
        batch = train_dataset.batch(np.arange(8))
        g = embedder.gate_input(batch, ("query_tc", "query_sc"), include_numeric=True)
        assert g.shape == (8, 2 * 4 + train_dataset.spec.num_numeric)

    def test_embedding_tables_shared_between_input_and_gate(self, embedder, train_dataset):
        """x_sc in the gate is the same table as x_sc in X (§4.3.1)."""
        batch = train_dataset.batch(np.arange(4))
        x = embedder.model_input(batch)
        g = embedder.gate_input(batch, ("query_sc",))
        np.testing.assert_allclose(x.data[:, :4], g.data)

    def test_unknown_feature_rejected(self, train_dataset):
        with pytest.raises(ValueError):
            FeatureEmbedder(train_dataset.spec, 4, input_features=("bogus",))

    def test_gate_width_helper(self, embedder, train_dataset):
        assert embedder.gate_input_width(("query_sc",), False) == 4
        assert embedder.gate_input_width(("a", "b"), True) == 8 + train_dataset.spec.num_numeric


class TestModelConfig:
    def test_paper_defaults(self):
        config = ModelConfig()
        assert config.num_experts == 10 and config.top_k == 4
        assert config.num_disagreeing == 1
        assert config.lambda_hsc == config.lambda_adv == 1e-3
        assert config.hidden_sizes == (512, 256)
        assert config.embedding_dim == 16

    def test_topk_bound(self):
        with pytest.raises(ValueError):
            ModelConfig(num_experts=4, top_k=5)

    def test_d_bound(self):
        with pytest.raises(ValueError):
            ModelConfig(num_experts=5, top_k=4, num_disagreeing=2)

    def test_with_updates_returns_copy(self):
        a = ModelConfig()
        b = a.with_updates(num_experts=16)
        assert a.num_experts == 10 and b.num_experts == 16

    def test_gate_presets_exist(self):
        assert set(GATE_FEATURE_PRESETS) == {"sc", "tc_sc", "query_tc_sc",
                                             "user_tc_sc", "all"}


class TestFactory:
    @pytest.fixture()
    def config(self, tiny_model_config):
        return tiny_model_config

    def test_all_names_buildable(self, train_dataset, taxonomy, config):
        for name in MODEL_NAMES:
            model = build_model(name, train_dataset.spec, taxonomy, config,
                                train_dataset=train_dataset)
            assert model is not None

    def test_types(self, train_dataset, taxonomy, config):
        assert isinstance(build_model("dnn", train_dataset.spec, taxonomy, config), DNNRanker)
        assert isinstance(build_model("moe", train_dataset.spec, taxonomy, config), MoERanker)
        assert isinstance(build_model("4-mmoe", train_dataset.spec, taxonomy, config,
                                      train_dataset=train_dataset), MMoERanker)

    def test_variant_flags(self, train_dataset, taxonomy, config):
        adv = build_model("adv-moe", train_dataset.spec, taxonomy, config)
        hsc = build_model("hsc-moe", train_dataset.spec, taxonomy, config)
        both = build_model("adv-hsc-moe", train_dataset.spec, taxonomy, config)
        assert adv.use_adv and not adv.use_hsc
        assert hsc.use_hsc and not hsc.use_adv
        assert both.use_adv and both.use_hsc

    def test_mmoe_expert_counts(self, train_dataset, taxonomy, config):
        four = build_model("4-mmoe", train_dataset.spec, taxonomy, config,
                           train_dataset=train_dataset)
        ten = build_model("10-mmoe", train_dataset.spec, taxonomy, config,
                          train_dataset=train_dataset)
        assert four.config.num_experts == 4
        assert ten.config.num_experts == 10

    def test_case_insensitive(self, train_dataset, taxonomy, config):
        assert isinstance(build_model("DNN", train_dataset.spec, taxonomy, config), DNNRanker)

    def test_unknown_name(self, train_dataset, taxonomy, config):
        with pytest.raises(ValueError):
            build_model("transformer", train_dataset.spec, taxonomy, config)

    def test_mmoe_without_train_dataset_still_builds(self, train_dataset, taxonomy, config):
        model = build_model("4-mmoe", train_dataset.spec, taxonomy, config)
        assert isinstance(model, MMoERanker)
