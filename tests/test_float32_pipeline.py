"""End-to-end float32 pipeline verification.

``nn.set_default_dtype(np.float32)`` must hold through *whole* training
runs — querycat (embedding → BiGRU → head → cross-entropy) and the ranking
models (FeatureEmbedder → towers/gates → BCE) — with no tensor in the loss
graph silently promoted to float64.  The workhorse here is
:func:`_graph_dtypes`, which walks the autograd DAG from a loss and
collects every node's dtype; a single float64 leak (a hardcoded mask, an
un-cast noise draw, raw float64 numeric features) fails the test.
"""

import numpy as np
import pytest

from repro import nn
from repro.data.sessions import QueryTable
from repro.hierarchy import default_taxonomy
from repro.models import build_model
from repro.models.base import FeatureEmbedder
from repro.querycat import (QueryCategoryClassifier, QueryClassifierConfig,
                            train_classifier)
from repro.training import TrainConfig, Trainer


def _graph_dtypes(root: nn.Tensor) -> set:
    """Every dtype reachable from ``root`` through the autograd graph."""
    seen: set[int] = set()
    stack = [root]
    dtypes = set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        dtypes.add(node.data.dtype)
        stack.extend(node._prev)
    return dtypes


def _tiny_query_table(num_queries=96, vocab=40, num_sc=6, max_len=5, seed=0):
    rng = np.random.default_rng(seed)
    sc_ids = rng.integers(0, num_sc, size=num_queries)
    lengths = rng.integers(1, max_len + 1, size=num_queries)
    tokens = np.zeros((num_queries, max_len), dtype=np.int64)
    for i, length in enumerate(lengths):
        tokens[i, :length] = rng.integers(1, vocab, size=length)
    return QueryTable(sc_ids=sc_ids, tc_ids=sc_ids // 2,
                      buckets=rng.integers(0, 8, size=num_queries),
                      tokens=tokens, lengths=lengths, vocab_size=vocab)


class _ToyTaxonomy:
    """parents_of is all train_classifier needs from the taxonomy."""

    def parents_of(self, sc_ids):
        return np.asarray(sc_ids) // 2


class TestQuerycatFloat32:
    def test_loss_graph_is_pure_float32(self):
        queries = _tiny_query_table()
        with nn.default_dtype(np.float32):
            model = QueryCategoryClassifier(
                queries.vocab_size, 6,
                QueryClassifierConfig(embedding_dim=6, hidden_size=5, seed=0))
            logits = model(queries.tokens[:16], queries.lengths[:16])
            loss = nn.losses.cross_entropy(logits, queries.sc_ids[:16])
            loss.backward()
        assert _graph_dtypes(loss) == {np.dtype(np.float32)}, (
            "float64 tensor leaked into the float32 querycat loss graph")
        assert all(p.grad.dtype == np.float32 for p in model.parameters())

    def test_full_training_run_stays_float32(self):
        """A complete train_classifier run in f32 mode: parameters stay
        float32 through every optimizer step and accuracy is computable."""
        queries = _tiny_query_table()
        with nn.default_dtype(np.float32):
            model = QueryCategoryClassifier(
                queries.vocab_size, 6,
                QueryClassifierConfig(embedding_dim=6, hidden_size=5, epochs=2,
                                      batch_size=32, seed=0))
            result = train_classifier(model, queries, _ToyTaxonomy())
        assert all(p.dtype == np.float32 for p in model.parameters())
        assert np.isfinite(result.history).all()
        assert 0.0 <= result.sc_accuracy <= 1.0


class TestRankingFloat32:
    @pytest.mark.parametrize("name", ["dnn", "moe", "4-mmoe"])
    def test_model_loss_graph_is_pure_float32(self, name, train_dataset,
                                              tiny_model_config):
        taxonomy = default_taxonomy()
        small = train_dataset.subset(np.arange(256)).astype(np.float32)
        with nn.default_dtype(np.float32):
            model = build_model(name, small.spec, taxonomy, tiny_model_config,
                                train_dataset=small)
            loss, _ = model.loss(small.batch(np.arange(128)),
                                 rng=np.random.default_rng(0))
            loss.backward()
        assert _graph_dtypes(loss) == {np.dtype(np.float32)}, (
            f"float64 tensor leaked into the float32 {name} loss graph")

    def test_trainer_casts_dataset_once(self, train_dataset, test_dataset,
                                        tiny_model_config):
        """Trainer.fit casts numeric features to the model dtype at entry,
        so a float64 dataset trains a float32 model without per-batch
        promotion (and without mutating the caller's dataset)."""
        taxonomy = default_taxonomy()
        small = train_dataset.subset(np.arange(512))
        assert small.numeric.dtype == np.float64
        with nn.default_dtype(np.float32):
            model = build_model("dnn", small.spec, taxonomy, tiny_model_config)
            trainer = Trainer(model, TrainConfig(epochs=1, batch_size=256,
                                                 eval_every_epoch=False))
            result = trainer.fit(small, eval_dataset=None)
        assert small.numeric.dtype == np.float64  # caller's copy untouched
        assert all(p.dtype == np.float32 for p in model.parameters())
        assert np.isfinite(result.history[0].train_loss)


class TestDatasetAstype:
    def test_cast_and_noop(self, dataset):
        f32 = dataset.astype(np.float32)
        assert f32.numeric.dtype == np.float32
        assert f32.astype(np.float32) is f32          # idempotent no-op
        assert dataset.numeric.dtype == np.float64    # original untouched
        assert f32.sparse is dataset.sparse           # ids shared, not copied
        np.testing.assert_allclose(f32.numeric, dataset.numeric, atol=1e-6)

    def test_model_input_matches_embedder_dtype(self, dataset):
        """FeatureEmbedder coerces un-cast float64 numeric to its own dtype
        instead of letting it upcast the concatenated input."""
        with nn.default_dtype(np.float32):
            embedder = FeatureEmbedder(dataset.spec, embedding_dim=4,
                                       rng=np.random.default_rng(0))
        assert embedder.dtype == np.float32
        batch = dataset.batch(np.arange(32))          # float64 numeric
        assert embedder.model_input(batch).dtype == np.float32
        assert embedder.gate_input(batch, ("query_sc",),
                                   include_numeric=True).dtype == np.float32
