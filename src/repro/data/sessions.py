"""Search-session simulator: queries, candidate retrieval, purchase labels.

Produces the learning-to-rank log that substitutes for the paper's in-house
dataset (§5.1.1).  Each session is one ranked result list for a query; the
binary label marks the purchased item.  The purchase decision follows the
query category's utility weights from :class:`~repro.data.world.SyntheticWorld`,
sampled with the Gumbel-max trick (equivalent to a per-session softmax
choice), so per-category ranking strategies genuinely differ — the property
the paper's MoE exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import LogConfig
from .schema import NUMERIC_FEATURE_NAMES
from .world import SyntheticWorld

__all__ = ["QueryTable", "SearchLog", "simulate_log"]

_NUM_SIGNALS = len(NUMERIC_FEATURE_NAMES)
_PRICE, _SALES, _COMMENTS, _BRANDPOP, _CTR, _RELEVANCE = range(_NUM_SIGNALS)

# Query text vocabulary layout (used by repro.querycat): each SC owns a
# contiguous block of category-specific tokens after a shared generic block.
GENERIC_TOKENS = 48
TOKENS_PER_SC = 14


@dataclass
class QueryTable:
    """Queries with their category intent and generated text tokens."""

    sc_ids: np.ndarray          # (Q,) sub-category intent of each query
    tc_ids: np.ndarray          # (Q,) parent top-category
    buckets: np.ndarray         # (Q,) hashed query-id feature
    tokens: np.ndarray          # (Q, max_len) padded token ids; 0 is PAD
    lengths: np.ndarray         # (Q,) valid token counts
    vocab_size: int

    @property
    def num_queries(self) -> int:
        return int(self.sc_ids.shape[0])


@dataclass
class SearchLog:
    """Flat example arrays plus session/query structure.

    Examples are (query, item) pairs grouped into sessions; this is the raw
    material for :class:`~repro.data.dataset.LTRDataset`.
    """

    world: SyntheticWorld
    queries: QueryTable
    # Per-example arrays, all length n.
    session_ids: np.ndarray
    query_ids: np.ndarray
    item_rows: np.ndarray        # indices into the world's product table
    labels: np.ndarray           # {0, 1} purchase labels
    true_utility: np.ndarray     # latent utility (for diagnostics only)
    signals: np.ndarray          # (n, num_signals) true signals
    numeric: np.ndarray          # (n, num_signals) observed, normalized
    sparse: dict[str, np.ndarray]

    @property
    def num_examples(self) -> int:
        return int(self.labels.shape[0])

    @property
    def num_sessions(self) -> int:
        return int(np.unique(self.session_ids).shape[0])


def simulate_log(world: SyntheticWorld, config: LogConfig | None = None) -> SearchLog:
    """Simulate a full search log from a world."""
    config = config or LogConfig()
    rng = np.random.default_rng(config.seed)
    taxonomy = world.taxonomy

    queries = _generate_queries(world, config, rng)

    # --- sessions ------------------------------------------------------
    low_s, high_s = config.sessions_per_query
    sessions_per_query = rng.integers(low_s, high_s + 1, size=queries.num_queries)
    num_sessions = int(sessions_per_query.sum())
    session_query = np.repeat(np.arange(queries.num_queries), sessions_per_query)
    session_user = rng.integers(0, world.config.num_user_segments, size=num_sessions)

    low_i, high_i = config.items_per_session
    items_per_session = rng.integers(low_i, high_i + 1, size=num_sessions)
    n = int(items_per_session.sum())
    ex_session = np.repeat(np.arange(num_sessions), items_per_session)
    ex_query = session_query[ex_session]
    ex_intent_sc = queries.sc_ids[ex_query]

    item_rows, source = _sample_candidates(world, ex_intent_sc, config, rng)

    # --- signals -------------------------------------------------------
    signals = world.product_signal_matrix(item_rows)
    quality = world.product_quality[item_rows]
    relevance = _relevance_by_source(source, rng) + 0.15 * quality
    signals[:, _RELEVANCE] = relevance
    signals[:, _CTR] = np.clip(
        0.6 * relevance + 0.35 * quality + rng.normal(0, 0.45, size=n), -4.0, 4.0)

    # --- purchase decision (Gumbel-max softmax sampling per session) ----
    # Utility is linear in the signals *plus* category-specific interaction
    # terms — a nonlinear, per-category scoring function (world.py docstring).
    weights = world.sc_utility[ex_intent_sc]
    utility = (signals * weights).sum(axis=1) + 0.4 * quality
    from .world import INTERACTION_PAIRS
    interaction_weights = world.sc_interaction[ex_intent_sc]
    for pair_index, (a, b) in enumerate(INTERACTION_PAIRS):
        utility += interaction_weights[:, pair_index] * signals[:, a] * signals[:, b]
    gumbel = rng.gumbel(size=n)
    choice_score = utility / config.purchase_temperature + gumbel
    winners = _segment_argmax(choice_score, ex_session, num_sessions)
    converts = rng.random(num_sessions) < config.conversion_rate
    labels = np.zeros(n, dtype=np.int64)
    purchased = winners[converts]
    labels[purchased] = 1

    # --- observed features ----------------------------------------------
    observed = signals + rng.normal(0, config.observation_noise, size=signals.shape)
    observed[:, _COMMENTS] = np.clip(observed[:, _COMMENTS], 0.0, 1.0)
    numeric = _normalize_columns(observed)

    sparse = {
        "query_sc": ex_intent_sc.astype(np.int64),
        "query_tc": taxonomy.parents_of(ex_intent_sc),
        "brand": world.product_brand[item_rows].astype(np.int64),
        "item_sc": world.product_sc[item_rows].astype(np.int64),
        "user_segment": session_user[ex_session].astype(np.int64),
        "query_bucket": queries.buckets[ex_query].astype(np.int64),
    }

    return SearchLog(
        world=world,
        queries=queries,
        session_ids=ex_session,
        query_ids=ex_query,
        item_rows=item_rows,
        labels=labels,
        true_utility=utility,
        signals=signals,
        numeric=numeric,
        sparse=sparse,
    )


def _generate_queries(world: SyntheticWorld, config: LogConfig,
                      rng: np.random.Generator) -> QueryTable:
    """Sample query intents by category traffic and synthesize query text."""
    taxonomy = world.taxonomy
    num_sc = taxonomy.max_sc_id() + 1
    sc_ids = rng.choice(num_sc, size=config.num_queries, p=world.sc_traffic)
    tc_ids = taxonomy.parents_of(sc_ids)
    buckets = rng.integers(0, world.config.num_query_buckets, size=config.num_queries)

    low_t, high_t = config.query_tokens
    lengths = rng.integers(low_t, high_t + 1, size=config.num_queries)
    max_len = int(high_t)
    vocab_size = 1 + GENERIC_TOKENS + TOKENS_PER_SC * num_sc  # 0 reserved for PAD
    tokens = np.zeros((config.num_queries, max_len), dtype=np.int64)
    specific = rng.random((config.num_queries, max_len)) < 0.7
    generic_draw = rng.integers(1, 1 + GENERIC_TOKENS, size=(config.num_queries, max_len))
    offsets = 1 + GENERIC_TOKENS + sc_ids * TOKENS_PER_SC
    specific_draw = offsets[:, None] + rng.integers(0, TOKENS_PER_SC,
                                                    size=(config.num_queries, max_len))
    drawn = np.where(specific, specific_draw, generic_draw)
    valid = np.arange(max_len)[None, :] < lengths[:, None]
    tokens[valid] = drawn[valid]
    return QueryTable(sc_ids=sc_ids, tc_ids=tc_ids, buckets=buckets,
                      tokens=tokens, lengths=lengths, vocab_size=vocab_size)


def _sample_candidates(world: SyntheticWorld, intent_sc: np.ndarray,
                       config: LogConfig, rng: np.random.Generator
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Pick a product row for each example.

    Source codes: 0 = query SC (in-category), 1 = sibling SC, 2 = random
    catalog item (retrieval noise).
    """
    n = intent_sc.shape[0]
    p_same, p_sibling, _ = config.candidate_mix
    draw = rng.random(n)
    source = np.full(n, 2, dtype=np.int64)
    source[draw < p_same + p_sibling] = 1
    source[draw < p_same] = 0

    taxonomy = world.taxonomy
    item_rows = np.zeros(n, dtype=np.int64)

    # Resolve the SC each example samples from: own SC, or a random sibling
    # (falling back to own SC when the category has no siblings).
    sample_sc = intent_sc.copy()
    sibling_mask = source == 1
    if sibling_mask.any():
        sibling_targets = np.empty(int(sibling_mask.sum()), dtype=np.int64)
        sibling_scs = intent_sc[sibling_mask]
        for position, sc_id in enumerate(sibling_scs):
            siblings = taxonomy.siblings_of(int(sc_id))
            sibling_targets[position] = (siblings[int(rng.integers(len(siblings)))]
                                         if siblings else int(sc_id))
        sample_sc[sibling_mask] = sibling_targets

    in_category = source != 2
    # Group by SC for vectorized gathers.
    for sc_id in np.unique(sample_sc[in_category]):
        members = np.flatnonzero(in_category & (sample_sc == sc_id))
        pool = world.products_in_sc(int(sc_id))
        item_rows[members] = pool[rng.integers(0, len(pool), size=members.shape[0])]

    random_mask = source == 2
    if random_mask.any():
        item_rows[random_mask] = rng.integers(0, world.num_products,
                                              size=int(random_mask.sum()))
    return item_rows, source


def _relevance_by_source(source: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Text-match scores: in-category items look relevant, noise does not."""
    n = source.shape[0]
    relevance = np.empty(n)
    means = np.array([1.2, 0.45, -0.9])
    stds = np.array([0.4, 0.45, 0.5])
    relevance = rng.normal(means[source], stds[source])
    return relevance


def _segment_argmax(scores: np.ndarray, segments: np.ndarray, num_segments: int) -> np.ndarray:
    """Vectorized per-segment argmax; segments must be sorted ascending."""
    order = np.lexsort((scores, segments))
    sorted_segments = segments[order]
    # The last element of each segment run holds the segment max.
    boundaries = np.flatnonzero(np.diff(sorted_segments)) if len(order) else np.array([], dtype=int)
    last_positions = np.concatenate([boundaries, [len(order) - 1]]) if len(order) else boundaries
    winners = np.full(num_segments, -1, dtype=np.int64)
    winners[sorted_segments[last_positions]] = order[last_positions]
    if np.any(winners < 0):
        raise ValueError("every session must contain at least one example")
    return winners


def _normalize_columns(matrix: np.ndarray) -> np.ndarray:
    """Z-score each column (the paper normalizes numeric features, eq. 2)."""
    mean = matrix.mean(axis=0, keepdims=True)
    std = matrix.std(axis=0, keepdims=True)
    std = np.where(std < 1e-9, 1.0, std)
    return (matrix - mean) / std
