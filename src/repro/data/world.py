"""Synthetic e-commerce product world.

This is the substrate substituting for JD.com's proprietary catalog + search
log (DESIGN.md §2).  The world plants the exact distributional phenomena the
paper measures in §3:

* **Feature-importance inhomogeneity (Fig. 2)** — every top-category (TC)
  owns a utility weight vector over the numeric signals; sub-categories (SC)
  inherit it with small jitter.  Named categories follow the paper's
  observations: Clothing/Sports weigh ``good_comments_ratio`` heavily, while
  Foods/Computer/Electronics weigh ``log_sales`` heavily.
* **Brand concentration (Fig. 3)** — each TC's brand market follows a Zipf
  law whose exponent varies by TC: Electronics-like markets are concentrated
  (top 80% of sales in ~2% of brands), Sports-like markets dispersed (~10%).
* **Category size skew (Fig. 5, Table 3)** — TC and SC traffic weights are
  Zipf-distributed so small categories exist and suffer data scarcity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hierarchy import Taxonomy
from .config import WorldConfig
from .schema import NUMERIC_FEATURE_NAMES, FeatureSpec, build_feature_spec

__all__ = ["SyntheticWorld", "CategoryProfile"]

_NUM_SIGNALS = len(NUMERIC_FEATURE_NAMES)
# Column indices into the signal matrix.
_PRICE, _SALES, _COMMENTS, _BRANDPOP, _CTR, _RELEVANCE = range(_NUM_SIGNALS)

# Named TC overrides implementing the paper's §3 narrative.
_COMMENT_DRIVEN = {"Clothing", "Sports", "Shoes", "Jewelry"}
_SALES_DRIVEN = {"Foods", "Computer", "Electronics", "Mobile Phone", "Smart Devices"}
_CONCENTRATED_BRANDS = {"Electronics", "Mobile Phone", "Computer", "Smart Devices"}
_DISPERSED_BRANDS = {"Sports", "Clothing", "Shoes"}


# Feature-interaction terms entering the utility: (signal a, signal b).
# Per-TC weights on these make the label a *nonlinear*, category-specific
# function of the observed features — a monolithic tower must spend capacity
# per category to fit them, while gated experts can specialize (§1).
INTERACTION_PAIRS = ((_PRICE, _BRANDPOP), (_RELEVANCE, _COMMENTS), (_SALES, _CTR))


@dataclass
class CategoryProfile:
    """Per-TC generative parameters."""

    tc_id: int
    utility_weights: np.ndarray  # (num_signals,) — drives purchase decisions
    interaction_weights: np.ndarray  # (len(INTERACTION_PAIRS),)
    brand_zipf: float            # brand market concentration
    price_mu: float              # log-price location
    price_sigma: float           # log-price scale
    traffic_weight: float        # relative query volume


@dataclass
class SyntheticWorld:
    """Catalog + generative parameters; build with :meth:`generate`."""

    taxonomy: Taxonomy
    config: WorldConfig
    spec: FeatureSpec
    profiles: dict[int, CategoryProfile]
    sc_weights: np.ndarray        # (num_sc,) utility jittered per SC
    sc_utility: np.ndarray        # (num_sc, num_signals)
    sc_interaction: np.ndarray    # (num_sc, len(INTERACTION_PAIRS))
    sc_traffic: np.ndarray        # (num_sc,) query volume weights, sums to 1
    # Product table (parallel arrays).
    product_sc: np.ndarray
    product_tc: np.ndarray
    product_brand: np.ndarray     # global brand ids
    product_quality: np.ndarray   # latent quality in [0, 1]-ish (z-scored)
    product_price_z: np.ndarray
    product_log_sales: np.ndarray      # standardized (the model feature)
    product_raw_log_sales: np.ndarray  # unstandardized log volume (Fig. 3)
    product_comments: np.ndarray
    product_brand_pop: np.ndarray
    num_brands: int
    # SC id -> array of product row indices (for candidate sampling).
    _products_by_sc: dict[int, np.ndarray] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def generate(cls, taxonomy: Taxonomy, config: WorldConfig | None = None) -> "SyntheticWorld":
        """Build a world from a taxonomy and config."""
        config = config or WorldConfig()
        rng = np.random.default_rng(config.seed)
        profiles = cls._build_profiles(taxonomy, config, rng)
        sc_utility, sc_interaction, sc_traffic = cls._build_sc_params(
            taxonomy, config, profiles, rng)
        world = cls._build_products(taxonomy, config, profiles, sc_utility,
                                    sc_interaction, sc_traffic, rng)
        return world

    @staticmethod
    def _build_profiles(taxonomy: Taxonomy, config: WorldConfig,
                        rng: np.random.Generator) -> dict[int, CategoryProfile]:
        """Draw generative parameters hierarchically: semantic group → TC.

        Utility behaviour is organized in three levels, mirroring the
        structure the paper observes and exploits:

        * **semantic group** (Table 4) sets the family: fashion groups are
          comment-driven, electronics groups sales/brand-driven, daily
          necessities in between, each with its own interaction profile;
        * **top-category** adds moderate jitter around its group;
        * **sub-category** adds small jitter around its TC (built in
          :meth:`_build_sc_params`).

        This is what makes semantically similar categories able to *share*
        experts (Fig. 6 clustering, Fig. 5 small-category transfer): their
        purchase behaviour genuinely overlaps.
        """
        low_z, high_z = config.brand_zipf_range
        profiles: dict[int, CategoryProfile] = {}
        num_tc = taxonomy.num_top_categories
        # Zipf traffic over a random permutation of TCs so size is not
        # correlated with semantic group.
        ranks = rng.permutation(num_tc) + 1
        traffic = ranks.astype(np.float64) ** (-config.tc_size_zipf)

        # Group-level bases: comment-vs-sales mix and interaction profile.
        group_mix_range = {
            "fashion": (0.70, 0.95),
            "electronics": (0.05, 0.30),
            "daily_necessities": (0.35, 0.65),
        }
        groups = {tc.semantic_group for tc in taxonomy.top_categories}
        group_mix: dict[str, float] = {}
        group_interactions: dict[str, np.ndarray] = {}
        group_price: dict[str, float] = {}
        for group in sorted(groups):
            low, high = group_mix_range.get(group, (0.2, 0.8))
            group_mix[group] = float(rng.uniform(low, high))
            group_interactions[group] = rng.uniform(-1.3, 1.3,
                                                    size=len(INTERACTION_PAIRS))
            group_price[group] = float(rng.uniform(-0.9, 0.1))

        coupling = float(np.clip(config.group_coupling, 0.0, 1.0))
        for index, tc in enumerate(taxonomy.top_categories):
            # Interpolate between the group base profile and an independent
            # per-TC draw (see WorldConfig.group_coupling): family membership
            # stays visible for transfer (Fig. 5/6) while each TC keeps the
            # idiosyncrasy that defeats a monolithic model (Table 2/3).
            own_mix = float(rng.uniform(0.05, 0.95))
            mix = float(np.clip(
                coupling * group_mix[tc.semantic_group] + (1 - coupling) * own_mix
                + rng.normal(0, 0.05), 0.02, 0.98))
            if tc.name in _COMMENT_DRIVEN:
                mix = max(mix, float(rng.uniform(0.75, 0.95)))
            elif tc.name in _SALES_DRIVEN:
                mix = min(mix, float(rng.uniform(0.05, 0.25)))
            weights = np.zeros(_NUM_SIGNALS)
            weights[_COMMENTS] = 0.25 + 1.5 * mix
            weights[_SALES] = 0.25 + 1.5 * (1.0 - mix)
            weights[_BRANDPOP] = 0.15 + 1.0 * (1.0 - mix) + rng.normal(0, 0.05)
            weights[_PRICE] = (coupling * group_price[tc.semantic_group]
                               + (1 - coupling) * rng.uniform(-0.9, 0.1))
            weights[_CTR] = rng.uniform(0.4, 0.8)
            weights[_RELEVANCE] = rng.uniform(1.0, 1.3)
            own_interactions = rng.uniform(-1.2, 1.2, size=len(INTERACTION_PAIRS))
            interactions = (coupling * group_interactions[tc.semantic_group]
                            + (1 - coupling) * own_interactions
                            + rng.normal(0, 0.1, size=len(INTERACTION_PAIRS)))

            if tc.name in _CONCENTRATED_BRANDS:
                zipf = float(rng.uniform(high_z - 0.4, high_z))
            elif tc.name in _DISPERSED_BRANDS:
                zipf = float(rng.uniform(low_z, low_z + 0.25))
            else:
                zipf = float(rng.uniform(low_z, high_z))

            profiles[tc.tc_id] = CategoryProfile(
                tc_id=tc.tc_id,
                utility_weights=weights,
                interaction_weights=interactions,
                brand_zipf=zipf,
                price_mu=float(rng.uniform(2.0, 6.5)),
                price_sigma=float(rng.uniform(0.3, 0.9)),
                traffic_weight=float(traffic[index]),
            )
        return profiles

    @staticmethod
    def _build_sc_params(taxonomy: Taxonomy, config: WorldConfig,
                         profiles: dict[int, CategoryProfile],
                         rng: np.random.Generator
                         ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        num_sc = taxonomy.max_sc_id() + 1
        sc_utility = np.zeros((num_sc, _NUM_SIGNALS))
        sc_interaction = np.zeros((num_sc, len(INTERACTION_PAIRS)))
        sc_traffic = np.zeros(num_sc)
        for tc in taxonomy.top_categories:
            children = taxonomy.children_of(tc.tc_id)
            profile = profiles[tc.tc_id]
            child_ranks = rng.permutation(len(children)) + 1
            child_weights = child_ranks.astype(np.float64) ** (-config.sc_size_zipf)
            child_weights /= child_weights.sum()
            for sc_id, weight in zip(children, child_weights):
                jitter = rng.normal(0.0, config.intra_tc_jitter, size=_NUM_SIGNALS)
                sc_utility[sc_id] = profile.utility_weights + jitter
                sc_interaction[sc_id] = profile.interaction_weights + rng.normal(
                    0.0, config.intra_tc_jitter, size=len(INTERACTION_PAIRS))
                sc_traffic[sc_id] = profile.traffic_weight * weight
        total = sc_traffic.sum()
        if total <= 0:
            raise ValueError("taxonomy produced zero traffic")
        return sc_utility, sc_interaction, sc_traffic / total

    @classmethod
    def _build_products(cls, taxonomy: Taxonomy, config: WorldConfig,
                        profiles: dict[int, CategoryProfile],
                        sc_utility: np.ndarray, sc_interaction: np.ndarray,
                        sc_traffic: np.ndarray,
                        rng: np.random.Generator) -> "SyntheticWorld":
        sc_list, tc_list, brand_list = [], [], []
        quality_list, price_list, sales_list, comments_list, brandpop_list = [], [], [], [], []
        brand_offset = 0
        # Per-TC brand markets.
        tc_brand_offsets: dict[int, int] = {}
        tc_brand_shares: dict[int, np.ndarray] = {}
        tc_brand_quality: dict[int, np.ndarray] = {}
        for tc in taxonomy.top_categories:
            profile = profiles[tc.tc_id]
            shares = (np.arange(1, config.brands_per_tc + 1, dtype=np.float64)
                      ** (-profile.brand_zipf))
            shares /= shares.sum()
            tc_brand_offsets[tc.tc_id] = brand_offset
            tc_brand_shares[tc.tc_id] = shares
            # Popular brands are slightly better on average (quality gradient).
            tc_brand_quality[tc.tc_id] = (
                0.35 * (np.log(shares) - np.log(shares).mean()) / max(np.log(shares).std(), 1e-9)
                + rng.normal(0, 0.6, size=config.brands_per_tc))
            brand_offset += config.brands_per_tc
        num_brands = brand_offset

        for sc in taxonomy.sub_categories:
            profile = profiles[sc.tc_id]
            relative = sc_traffic[sc.sc_id]
            count = max(config.min_products_per_sc,
                        int(round(relative * config.products_per_weight * taxonomy.num_sub_categories)))
            shares = tc_brand_shares[sc.tc_id]
            local_brands = rng.choice(config.brands_per_tc, size=count, p=shares)
            brand_quality = tc_brand_quality[sc.tc_id][local_brands]
            quality = 0.7 * brand_quality + rng.normal(0, 0.7, size=count)
            log_price = rng.normal(profile.price_mu, profile.price_sigma, size=count)
            price_z = (log_price - profile.price_mu) / max(profile.price_sigma, 1e-9)
            # True sales volume: driven by brand share and quality.  The 0.3
            # exponent on the share, combined with share-proportional product
            # counts per brand, yields brand-level volume ∝ share^1.3 — so
            # the per-TC Zipf exponents translate into clearly ordered Fig. 3
            # concentration levels (top 80% of sales in ~2% of brands for
            # Electronics-like markets vs ~10-20% for Sports-like ones).
            log_sales = (0.3 * np.log(shares[local_brands] * len(shares))
                         + 0.5 * quality + rng.normal(0, 0.6, size=count))
            comments = np.clip(
                rng.beta(6, 2, size=count) + 0.08 * quality, 0.02, 0.999)
            brand_pop = np.log(shares[local_brands] * len(shares))

            sc_list.append(np.full(count, sc.sc_id, dtype=np.int64))
            tc_list.append(np.full(count, sc.tc_id, dtype=np.int64))
            brand_list.append(local_brands + tc_brand_offsets[sc.tc_id])
            quality_list.append(quality)
            price_list.append(price_z)
            sales_list.append(log_sales)
            comments_list.append(comments)
            brandpop_list.append(brand_pop)

        product_sc = np.concatenate(sc_list)
        order_by_sc: dict[int, np.ndarray] = {}
        for sc in taxonomy.sub_categories:
            order_by_sc[sc.sc_id] = np.flatnonzero(product_sc == sc.sc_id)

        def _standardize(x: np.ndarray) -> np.ndarray:
            return (x - x.mean()) / max(x.std(), 1e-9)

        world = cls(
            taxonomy=taxonomy,
            config=config,
            spec=build_feature_spec(
                num_sub_categories=taxonomy.max_sc_id() + 1,
                num_top_categories=taxonomy.max_tc_id() + 1,
                num_brands=num_brands,
                num_user_segments=config.num_user_segments,
                num_query_buckets=config.num_query_buckets,
            ),
            profiles=profiles,
            sc_weights=sc_traffic,
            sc_utility=sc_utility,
            sc_interaction=sc_interaction,
            sc_traffic=sc_traffic,
            product_sc=product_sc,
            product_tc=np.concatenate(tc_list),
            product_brand=np.concatenate(brand_list),
            product_quality=np.concatenate(quality_list),
            product_price_z=np.concatenate(price_list),
            product_log_sales=_standardize(np.concatenate(sales_list)),
            product_raw_log_sales=np.concatenate(sales_list),
            product_comments=np.concatenate(comments_list),
            product_brand_pop=_standardize(np.concatenate(brandpop_list)),
            num_brands=num_brands,
        )
        world._products_by_sc = order_by_sc
        return world

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_products(self) -> int:
        return int(self.product_sc.shape[0])

    def products_in_sc(self, sc_id: int) -> np.ndarray:
        """Row indices of products in a sub-category."""
        return self._products_by_sc.get(sc_id, np.empty(0, dtype=np.int64))

    def product_signal_matrix(self, rows: np.ndarray) -> np.ndarray:
        """(len(rows), num_signals) matrix of *true* item-side signals.

        The two-sided columns (historical_ctr, relevance) are zero here;
        they are filled per query-item pair by the session simulator.
        """
        rows = np.asarray(rows, dtype=np.int64)
        signals = np.zeros((rows.shape[0], _NUM_SIGNALS))
        signals[:, _PRICE] = self.product_price_z[rows]
        signals[:, _SALES] = self.product_log_sales[rows]
        signals[:, _COMMENTS] = self.product_comments[rows]
        signals[:, _BRANDPOP] = self.product_brand_pop[rows]
        return signals

    def brand_sales_by_tc(self) -> dict[int, dict[int, float]]:
        """Per-TC map of brand id → total sales volume (for Fig. 3)."""
        result: dict[int, dict[int, float]] = {}
        sales = np.exp(np.clip(self.product_raw_log_sales, None, 20.0))
        for tc in self.taxonomy.top_categories:
            mask = self.product_tc == tc.tc_id
            brands = self.product_brand[mask]
            volume = sales[mask]
            agg: dict[int, float] = {}
            for brand, vol in zip(brands, volume):
                agg[int(brand)] = agg.get(int(brand), 0.0) + float(vol)
            result[tc.tc_id] = agg
        return result

    def brand_sales_by_sc(self, tc_id: int) -> dict[int, dict[int, float]]:
        """Per-SC (within one TC) map of brand id → total sales (Fig. 3b)."""
        result: dict[int, dict[int, float]] = {}
        sales = np.exp(np.clip(self.product_raw_log_sales, None, 20.0))
        for sc_id in self.taxonomy.children_of(tc_id):
            rows = self.products_in_sc(sc_id)
            agg: dict[int, float] = {}
            for brand, vol in zip(self.product_brand[rows], sales[rows]):
                agg[int(brand)] = agg.get(int(brand), 0.0) + float(vol)
            result[sc_id] = agg
        return result
