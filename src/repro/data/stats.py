"""Dataset statistics — reproduces the shape of the paper's Table 1."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import LTRDataset

__all__ = ["DatasetStatistics", "compute_statistics", "format_table1"]


@dataclass
class DatasetStatistics:
    """Counts mirroring the rows of the paper's Table 1."""

    name: str
    num_examples: int
    num_top_categories: int
    num_sub_categories: int
    num_queries: int
    num_query_item_pairs: int
    num_sessions: int
    positive_rate: float


def compute_statistics(dataset: LTRDataset, name: str | None = None) -> DatasetStatistics:
    """Compute Table-1-style statistics for a dataset (or a slice of one)."""
    pairs = np.unique(np.stack([dataset.query_ids,
                                dataset.sparse["brand"],
                                dataset.sparse["item_sc"]]), axis=1).shape[1]
    return DatasetStatistics(
        name=name or dataset.name,
        num_examples=len(dataset),
        num_top_categories=int(np.unique(dataset.query_tc).shape[0]),
        num_sub_categories=int(np.unique(dataset.query_sc).shape[0]),
        num_queries=dataset.num_queries,
        num_query_item_pairs=int(pairs),
        num_sessions=dataset.num_sessions,
        positive_rate=dataset.positive_rate,
    )


def format_table1(rows: list[tuple[str, DatasetStatistics, DatasetStatistics]]) -> str:
    """Render (slice name, train stats, test stats) rows like Table 1."""
    lines = [
        "Table 1: Datasets statistics.",
        f"{'Statistics':<28}{'Training Set':>16}{'Test Set':>14}",
    ]
    for label, train, test in rows:
        lines.append(f"{label:<28}{train.num_examples:>16,}{test.num_examples:>14,}")
    if rows:
        train, test = rows[0][1], rows[0][2]
        lines.append(f"{'# of Top Categories':<28}{train.num_top_categories:>16,}"
                     f"{test.num_top_categories:>14,}")
        lines.append(f"{'# of Sub Categories':<28}{train.num_sub_categories:>16,}"
                     f"{test.num_sub_categories:>14,}")
        lines.append(f"{'# of queries':<28}{train.num_queries:>16,}{test.num_queries:>14,}")
        lines.append(f"{'# of query/item pairs':<28}{train.num_query_item_pairs:>16,}"
                     f"{test.num_query_item_pairs:>14,}")
    return "\n".join(lines)
