"""``LTRDataset`` — the array container every model and metric consumes.

Wraps the simulated log's per-example arrays with session structure, supports
session-level train/test splits (never splitting a session across sides, so
per-session AUC/NDCG stay well-defined) and category filtering for the
Table 3 / Fig. 5 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hierarchy import Taxonomy
from .schema import FeatureSpec
from .sessions import SearchLog

__all__ = ["LTRDataset", "Batch", "dataset_from_log", "train_test_split"]


@dataclass
class Batch:
    """One minibatch of examples."""

    numeric: np.ndarray
    sparse: dict[str, np.ndarray]
    labels: np.ndarray
    session_ids: np.ndarray

    def __len__(self) -> int:
        return int(self.labels.shape[0])


@dataclass
class LTRDataset:
    """Learning-to-rank dataset: features + labels grouped into sessions."""

    numeric: np.ndarray                  # (n, m) normalized numeric features
    sparse: dict[str, np.ndarray]        # name -> (n,) int ids
    labels: np.ndarray                   # (n,) {0,1}
    session_ids: np.ndarray              # (n,) group key
    query_ids: np.ndarray                # (n,)
    spec: FeatureSpec
    taxonomy: Taxonomy
    name: str = "synthetic"
    # Diagnostics (optional, not used by models).
    true_utility: np.ndarray | None = None

    def __post_init__(self):
        n = self.labels.shape[0]
        if self.numeric.shape[0] != n or self.session_ids.shape[0] != n:
            raise ValueError("array length mismatch")
        for name, values in self.sparse.items():
            if values.shape[0] != n:
                raise ValueError(f"sparse feature {name!r} length mismatch")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.labels.shape[0])

    @property
    def num_sessions(self) -> int:
        return int(np.unique(self.session_ids).shape[0])

    @property
    def num_queries(self) -> int:
        return int(np.unique(self.query_ids).shape[0])

    @property
    def positive_rate(self) -> float:
        return float(self.labels.mean()) if len(self) else 0.0

    @property
    def query_sc(self) -> np.ndarray:
        return self.sparse["query_sc"]

    @property
    def query_tc(self) -> np.ndarray:
        return self.sparse["query_tc"]

    # ------------------------------------------------------------------
    # Subsetting
    # ------------------------------------------------------------------
    def subset(self, indices: np.ndarray, name: str | None = None) -> "LTRDataset":
        """Row-subset keeping session/query ids intact."""
        indices = np.asarray(indices)
        return LTRDataset(
            numeric=self.numeric[indices],
            sparse={k: v[indices] for k, v in self.sparse.items()},
            labels=self.labels[indices],
            session_ids=self.session_ids[indices],
            query_ids=self.query_ids[indices],
            spec=self.spec,
            taxonomy=self.taxonomy,
            name=name or self.name,
            true_utility=None if self.true_utility is None else self.true_utility[indices],
        )

    def astype(self, dtype) -> "LTRDataset":
        """Return a dataset with numeric features cast to ``dtype``.

        This is the load-time half of the float32 fast mode: casting once
        here means ``FeatureEmbedder.model_input`` wraps each batch without
        copying, instead of re-promoting (or re-casting) every minibatch.
        No-op (returns ``self``) when the dtype already matches; sparse ids,
        labels and session structure are shared, not copied.
        """
        dtype = np.dtype(dtype)
        if self.numeric.dtype == dtype:
            return self
        return LTRDataset(
            numeric=self.numeric.astype(dtype),
            sparse=self.sparse,
            labels=self.labels,
            session_ids=self.session_ids,
            query_ids=self.query_ids,
            spec=self.spec,
            taxonomy=self.taxonomy,
            name=self.name,
            true_utility=self.true_utility,
        )

    def filter_by_tc(self, tc_ids, name: str | None = None) -> "LTRDataset":
        """Keep sessions whose query top-category is in ``tc_ids``."""
        tc_ids = set(int(t) for t in np.atleast_1d(tc_ids))
        mask = np.isin(self.sparse["query_tc"], list(tc_ids))
        return self.subset(np.flatnonzero(mask), name=name)

    def filter_by_sc(self, sc_ids, name: str | None = None) -> "LTRDataset":
        """Keep sessions whose query sub-category is in ``sc_ids``."""
        sc_ids = set(int(s) for s in np.atleast_1d(sc_ids))
        mask = np.isin(self.sparse["query_sc"], list(sc_ids))
        return self.subset(np.flatnonzero(mask), name=name)

    def concat(self, other: "LTRDataset", name: str | None = None) -> "LTRDataset":
        """Concatenate two datasets over the same spec/taxonomy."""
        if self.spec is not other.spec and self.spec.sparse_names != other.spec.sparse_names:
            raise ValueError("cannot concat datasets with different specs")
        return LTRDataset(
            numeric=np.concatenate([self.numeric, other.numeric]),
            sparse={k: np.concatenate([self.sparse[k], other.sparse[k]]) for k in self.sparse},
            labels=np.concatenate([self.labels, other.labels]),
            session_ids=np.concatenate([self.session_ids, other.session_ids]),
            query_ids=np.concatenate([self.query_ids, other.query_ids]),
            spec=self.spec,
            taxonomy=self.taxonomy,
            name=name or f"{self.name}+{other.name}",
        )

    # ------------------------------------------------------------------
    # Batching
    # ------------------------------------------------------------------
    def batch(self, indices: np.ndarray) -> Batch:
        """Materialize a batch from row indices."""
        return Batch(
            numeric=self.numeric[indices],
            sparse={k: v[indices] for k, v in self.sparse.items()},
            labels=self.labels[indices],
            session_ids=self.session_ids[indices],
        )

    def full_batch(self) -> Batch:
        """The whole dataset as one batch (used for evaluation)."""
        return Batch(numeric=self.numeric, sparse=self.sparse,
                     labels=self.labels, session_ids=self.session_ids)

    def num_batches(self, batch_size: int) -> int:
        """How many batches :meth:`iter_batches` will yield for this size."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        return -(-len(self) // batch_size)

    def iter_batches(self, batch_size: int, rng: np.random.Generator | None = None,
                     shuffle: bool = True):
        """Yield shuffled minibatches of ``batch_size`` rows."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        order = np.arange(len(self))
        if shuffle:
            rng = rng if rng is not None else np.random.default_rng()
            rng.shuffle(order)
        for start in range(0, len(order), batch_size):
            yield self.batch(order[start:start + batch_size])

    # ------------------------------------------------------------------
    # Session utilities
    # ------------------------------------------------------------------
    def sessions_with_label_mix(self) -> np.ndarray:
        """Session ids containing at least one positive and one negative.

        Only these sessions contribute to per-session AUC (paper §5.1.2).
        """
        unique, inverse = np.unique(self.session_ids, return_inverse=True)
        positives = np.bincount(inverse, weights=self.labels.astype(float))
        counts = np.bincount(inverse)
        mask = (positives > 0) & (positives < counts)
        return unique[mask]


def dataset_from_log(log: SearchLog, name: str = "synthetic",
                     dtype=None) -> LTRDataset:
    """Convert a simulated :class:`SearchLog` into an :class:`LTRDataset`.

    ``dtype`` casts the numeric features once at load time (e.g.
    ``np.float32`` to match ``nn.set_default_dtype(np.float32)`` models);
    ``None`` keeps the log's native float64.
    """
    return LTRDataset(
        numeric=log.numeric if dtype is None else log.numeric.astype(dtype),
        sparse=dict(log.sparse),
        labels=log.labels,
        session_ids=log.session_ids,
        query_ids=log.query_ids,
        spec=log.world.spec,
        taxonomy=log.world.taxonomy,
        name=name,
        true_utility=log.true_utility,
    )


def train_test_split(dataset: LTRDataset, test_fraction: float = 0.2,
                     seed: int = 7) -> tuple[LTRDataset, LTRDataset]:
    """Split by *query* so no query leaks across sides (paper setup: train
    and test sets are disjoint time/query slices of the log)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    queries = np.unique(dataset.query_ids)
    rng.shuffle(queries)
    cut = max(1, int(round(len(queries) * test_fraction)))
    test_queries = set(queries[:cut].tolist())
    mask = np.isin(dataset.query_ids, list(test_queries))
    test = dataset.subset(np.flatnonzero(mask), name=f"{dataset.name}-test")
    train = dataset.subset(np.flatnonzero(~mask), name=f"{dataset.name}-train")
    return train, test
