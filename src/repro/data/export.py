"""Dataset import/export: persist an ``LTRDataset`` to NPZ or CSV.

Lets downstream users materialize the synthetic log once and reload it, or
ship slices to other tools.  NPZ roundtrips exactly; CSV is for inspection
and interoperability (one row per (query, item) example).
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..hierarchy import Taxonomy
from .dataset import LTRDataset
from .schema import FeatureSpec

__all__ = ["save_dataset_npz", "load_dataset_npz", "export_csv"]

_FORMAT_VERSION = 1


def save_dataset_npz(dataset: LTRDataset, path: str | Path) -> Path:
    """Write every array of the dataset to a compressed ``.npz`` file."""
    path = Path(path).with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {
        "format_version": np.array(_FORMAT_VERSION),
        "numeric": dataset.numeric,
        "labels": dataset.labels,
        "session_ids": dataset.session_ids,
        "query_ids": dataset.query_ids,
    }
    for name, values in dataset.sparse.items():
        arrays[f"sparse__{name}"] = values
    np.savez_compressed(path, **arrays)
    return path


def load_dataset_npz(path: str | Path, spec: FeatureSpec, taxonomy: Taxonomy,
                     name: str = "loaded") -> LTRDataset:
    """Reload a dataset saved by :func:`save_dataset_npz`.

    The schema and taxonomy are not serialized (they are code-defined);
    the caller supplies the ones the dataset was generated with.
    """
    path = Path(path).with_suffix(".npz")
    with np.load(path) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported dataset format version {version}")
        sparse = {key[len("sparse__"):]: archive[key].copy()
                  for key in archive.files if key.startswith("sparse__")}
        missing = set(spec.sparse_names) - set(sparse)
        if missing:
            raise ValueError(f"dataset file lacks sparse features: {sorted(missing)}")
        return LTRDataset(
            numeric=archive["numeric"].copy(),
            sparse=sparse,
            labels=archive["labels"].copy(),
            session_ids=archive["session_ids"].copy(),
            query_ids=archive["query_ids"].copy(),
            spec=spec,
            taxonomy=taxonomy,
            name=name,
        )


def export_csv(dataset: LTRDataset, path: str | Path,
               max_rows: int | None = None) -> Path:
    """Write the dataset as CSV: ids, sparse features, numeric features, label."""
    path = Path(path).with_suffix(".csv")
    path.parent.mkdir(parents=True, exist_ok=True)
    sparse_names = list(dataset.sparse)
    numeric_names = dataset.spec.numeric_names
    n = len(dataset) if max_rows is None else min(max_rows, len(dataset))
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["session_id", "query_id", *sparse_names,
                         *numeric_names, "label"])
        for row in range(n):
            writer.writerow([
                int(dataset.session_ids[row]),
                int(dataset.query_ids[row]),
                *(int(dataset.sparse[name][row]) for name in sparse_names),
                *(f"{dataset.numeric[row, col]:.6g}"
                  for col in range(len(numeric_names))),
                int(dataset.labels[row]),
            ])
    return path
