"""Configuration for the synthetic e-commerce world and log generator."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["WorldConfig", "LogConfig"]


@dataclass
class WorldConfig:
    """Parameters of the synthetic product world.

    The defaults are chosen so that the generated log exhibits the paper's
    §3 phenomena: feature importance varies across top-categories but is
    homogeneous within one, and brand concentration differs wildly by TC.
    """

    seed: int = 0
    # Brand pools are per-TC (siblings share a brand market, as in a real
    # catalog where e.g. phone brands appear across phone sub-categories).
    brands_per_tc: int = 60
    # Zipf exponent range for brand popularity; high = concentrated markets.
    brand_zipf_range: tuple[float, float] = (1.05, 2.4)
    # Minimum / per-weight-unit product counts per sub-category.
    min_products_per_sc: int = 24
    products_per_weight: int = 400
    # Category size skew (Zipf exponent over TCs and over SCs within a TC).
    tc_size_zipf: float = 1.05
    sc_size_zipf: float = 0.9
    # Std of the SC-level jitter applied to the parent TC utility weights.
    # Small values reproduce the paper's intra-category homogeneity (Fig. 2b).
    intra_tc_jitter: float = 0.08
    # How strongly a TC's utility follows its semantic group's base profile
    # (0 = fully independent TCs, 1 = pure family structure).  Low values
    # maximize per-category idiosyncrasy (the Table 2 / Table 3 effects);
    # high values maximize cross-category transfer (Fig. 5 / Fig. 6).
    group_coupling: float = 0.25
    # User population.
    num_user_segments: int = 8
    # Hash bucket count for the query-id sparse feature (Table 5 ablation).
    num_query_buckets: int = 512


@dataclass
class LogConfig:
    """Parameters of the simulated search log (sessions and labels)."""

    seed: int = 1
    num_queries: int = 4000
    sessions_per_query: tuple[int, int] = (1, 3)
    items_per_session: tuple[int, int] = (6, 14)
    # Candidate mix: probability an item comes from the query SC, a sibling
    # SC, or anywhere in the catalog (retrieval noise).
    candidate_mix: tuple[float, float, float] = (0.78, 0.16, 0.06)
    # Softmax temperature of the purchase decision: lower = more deterministic
    # user behaviour = higher achievable AUC.
    purchase_temperature: float = 0.9
    # Probability a session converts (contains a purchase) at all.
    conversion_rate: float = 0.85
    # Observation noise added to the true signals before they become model
    # features — keeps AUC away from 1.0, like real logged features.
    observation_noise: float = 0.35
    # Query text length range (tokens), for the §4.1 query classifier.
    query_tokens: tuple[int, int] = (2, 6)

    def __post_init__(self):
        total = sum(self.candidate_mix)
        if abs(total - 1.0) > 1e-9:
            raise ValueError("candidate_mix must sum to 1")
        if self.num_queries <= 0:
            raise ValueError("num_queries must be positive")
        low, high = self.items_per_session
        if low < 2 or high < low:
            raise ValueError("items_per_session must satisfy 2 <= low <= high")
