"""``repro.data`` — synthetic e-commerce search log (DESIGN.md §2 substitution).

Pipeline: :func:`~repro.data.world.SyntheticWorld.generate` builds a catalog
with planted category inhomogeneity; :func:`~repro.data.sessions.simulate_log`
rolls out search sessions with purchase labels; :func:`dataset_from_log`
wraps the result in the :class:`LTRDataset` container models train on.
"""

from .config import LogConfig, WorldConfig
from .dataset import Batch, LTRDataset, dataset_from_log, train_test_split
from .export import export_csv, load_dataset_npz, save_dataset_npz
from .schema import (NUMERIC_FEATURE_NAMES, FeatureSpec, NumericFeature, Side,
                     SparseFeature, build_feature_spec)
from .sessions import QueryTable, SearchLog, simulate_log
from .stats import DatasetStatistics, compute_statistics, format_table1
from .world import CategoryProfile, SyntheticWorld

__all__ = [
    "WorldConfig",
    "LogConfig",
    "SyntheticWorld",
    "CategoryProfile",
    "simulate_log",
    "SearchLog",
    "QueryTable",
    "LTRDataset",
    "Batch",
    "dataset_from_log",
    "save_dataset_npz",
    "load_dataset_npz",
    "export_csv",
    "train_test_split",
    "FeatureSpec",
    "SparseFeature",
    "NumericFeature",
    "Side",
    "build_feature_spec",
    "NUMERIC_FEATURE_NAMES",
    "DatasetStatistics",
    "compute_statistics",
    "format_table1",
]
