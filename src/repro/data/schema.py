"""Feature schema shared by the data generator and every ranking model.

The paper's input (eq. 2) concatenates embedded sparse features with
normalized numeric features.  :class:`FeatureSpec` is the single source of
truth for which features exist, their cardinalities (embedding table sizes)
and which side (query / user / item / two-sided) they belong to — the side
matters for the Table 5 gate-input ablation and for the paper's conclusion
that gates should only see query-side features.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SparseFeature", "NumericFeature", "FeatureSpec", "Side",
           "NUMERIC_FEATURE_NAMES"]


class Side:
    """Feature side constants."""

    QUERY = "query"
    USER = "user"
    ITEM = "item"
    BOTH = "both"  # two-sided features (e.g. historical query-item CTR)


# Order matters: this is the column order of the numeric feature matrix.
NUMERIC_FEATURE_NAMES = (
    "price_z",            # z-scored log price within the item's category
    "log_sales",          # log1p sales volume, normalized
    "good_comments_ratio",  # fraction of positive reviews
    "brand_popularity",   # log market share of the item's brand in its SC
    "historical_ctr",     # two-sided: historical CTR of the item under the query
    "relevance",          # query-item text match score
)


@dataclass(frozen=True)
class SparseFeature:
    """A categorical feature embedded via a lookup table."""

    name: str
    cardinality: int
    side: str

    def __post_init__(self):
        if self.cardinality <= 0:
            raise ValueError(f"sparse feature {self.name!r} needs positive cardinality")
        if self.side not in (Side.QUERY, Side.USER, Side.ITEM, Side.BOTH):
            raise ValueError(f"unknown side {self.side!r}")


@dataclass(frozen=True)
class NumericFeature:
    """A dense scalar feature, fed to the model after normalization."""

    name: str
    side: str


@dataclass
class FeatureSpec:
    """Full schema: ordered sparse + numeric features.

    ``model_sparse`` lists the sparse features that enter the ranking model
    input X (eq. 2).  ``query_tc``/``query_sc`` are always present because the
    gates need them; whether they are part of X, of the gate input, or both is
    a model-level decision.
    """

    sparse: list[SparseFeature] = field(default_factory=list)
    numeric: list[NumericFeature] = field(default_factory=list)

    def __post_init__(self):
        names = [f.name for f in self.sparse] + [f.name for f in self.numeric]
        if len(set(names)) != len(names):
            raise ValueError("duplicate feature names in spec")
        self._sparse_by_name = {f.name: f for f in self.sparse}

    @property
    def sparse_names(self) -> list[str]:
        return [f.name for f in self.sparse]

    @property
    def numeric_names(self) -> list[str]:
        return [f.name for f in self.numeric]

    @property
    def num_numeric(self) -> int:
        return len(self.numeric)

    def sparse_feature(self, name: str) -> SparseFeature:
        return self._sparse_by_name[name]

    def cardinality(self, name: str) -> int:
        """Embedding table size for a sparse feature."""
        return self._sparse_by_name[name].cardinality

    def sparse_on_side(self, *sides: str) -> list[str]:
        """Names of sparse features belonging to any of ``sides``."""
        return [f.name for f in self.sparse if f.side in sides]

    def input_width(self, embedding_dim: int, sparse_names: list[str] | None = None) -> int:
        """Width of the concatenated model input (eq. 2): k*q + m."""
        names = self.sparse_names if sparse_names is None else sparse_names
        return len(names) * embedding_dim + self.num_numeric

    # ------------------------------------------------------------------
    # Serialization (serving environment bundles)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        return {
            "sparse": [{"name": f.name, "cardinality": f.cardinality,
                        "side": f.side} for f in self.sparse],
            "numeric": [{"name": f.name, "side": f.side} for f in self.numeric],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FeatureSpec":
        """Rebuild a spec from :meth:`to_dict` output (e.g. a JSON bundle)."""
        return cls(
            sparse=[SparseFeature(**f) for f in payload["sparse"]],
            numeric=[NumericFeature(**f) for f in payload["numeric"]],
        )


def build_feature_spec(num_sub_categories: int, num_top_categories: int,
                       num_brands: int, num_user_segments: int,
                       num_query_buckets: int) -> FeatureSpec:
    """Construct the canonical schema used by the synthetic world.

    Sparse features:

    * ``query_sc`` / ``query_tc`` — query-level category ids (§4.1); the
      inference gate consumes ``query_sc``, the constraint gate ``query_tc``.
    * ``brand`` — item brand id (the sparse feature analyzed in Fig. 3).
    * ``item_sc`` — product-side category (only used in the "all features"
      gate ablation; the paper found it *hurts*).
    * ``user_segment`` — user feature for the Table 5 ablation.
    * ``query_bucket`` — hashed query id, the "query" gate feature in Table 5.
    """
    sparse = [
        SparseFeature("query_sc", num_sub_categories, Side.QUERY),
        SparseFeature("query_tc", num_top_categories, Side.QUERY),
        SparseFeature("brand", num_brands, Side.ITEM),
        SparseFeature("item_sc", num_sub_categories, Side.ITEM),
        SparseFeature("user_segment", num_user_segments, Side.USER),
        SparseFeature("query_bucket", num_query_buckets, Side.QUERY),
    ]
    numeric = [
        NumericFeature("price_z", Side.ITEM),
        NumericFeature("log_sales", Side.ITEM),
        NumericFeature("good_comments_ratio", Side.ITEM),
        NumericFeature("brand_popularity", Side.ITEM),
        NumericFeature("historical_ctr", Side.BOTH),
        NumericFeature("relevance", Side.BOTH),
    ]
    return FeatureSpec(sparse=sparse, numeric=numeric)
