"""``repro.nn`` — pure-numpy neural network substrate.

A compact deep-learning framework (tensors with reverse-mode autodiff,
layers, recurrent cells, losses, optimizers) sufficient to train every model
in the paper on CPU.  See DESIGN.md §3 for the inventory.
"""

from . import functional, gradcheck, infer, init, losses, optim
from .layers import MLP, Dropout, Embedding, Linear, ReLU, Sigmoid, Tanh
from .module import Module, ModuleList, Sequential
from .rnn import GRU, BiGRU, GRUCell
from .tensor import (Parameter, Tensor, as_tensor, concatenate, default_dtype,
                     get_default_dtype, is_grad_enabled, no_grad,
                     set_default_dtype, stack)

__all__ = [
    "Tensor",
    "Parameter",
    "as_tensor",
    "concatenate",
    "stack",
    "no_grad",
    "is_grad_enabled",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
    "Module",
    "ModuleList",
    "Sequential",
    "Linear",
    "Embedding",
    "Dropout",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "MLP",
    "GRUCell",
    "GRU",
    "BiGRU",
    "functional",
    "gradcheck",
    "infer",
    "init",
    "losses",
    "optim",
]
