"""Per-output-channel symmetric int8 weight quantization for serving plans.

The weight-streaming cost of single-request scoring is reading every
weight byte of every tower per request; int8 weights cut that traffic 4x.
The scheme is the standard inference recipe:

* **Per-output-channel symmetric**: each output column ``j`` of a Linear
  weight gets one float32 scale ``s[j] = max|W[:, j]| / 127``; the stored
  tensor is ``q = round(W / s)`` clipped to [-127, 127] as int8.
* **float32 accumulation**: the matmul runs in float32 via the identity
  ``x @ (q * s) == (x @ q) * s`` — activations are never quantized, so the
  only error source is the weight rounding.
* **Only Linear weights inside MLP towers quantize.**  Embeddings, GRU
  weights, gate weights, and every bias stay float32: they are small,
  their consumers read ``weight.data`` directly, and recurrent error
  compounds across timesteps.

Kernel layout
-------------
numpy has no int8 GEMM, so the compiled plan's quantized matmul casts the
weights to a float32 scratch **in cache-sized blocks** and feeds BLAS from
there.  Two details make this faster than full-precision in the
weight-streaming regime instead of slower:

* ``q`` is stored **transposed** ``(out, in)`` C-contiguous, so each block
  of output channels is one contiguous int8 read (a column block of the
  ``(in, out)`` layout is a strided read that wrecks the cast).
  ``np.matmul(x, block.T)`` hands BLAS the transpose flag for free.
* The scratch block is bounded (:data:`BLOCK_BYTES`) so it stays resident
  in L2 across the cast and the matmul; DRAM traffic is the int8 read
  only, a quarter of the float32 plan's.
"""

from __future__ import annotations

import numpy as np

from .layers import MLP, Linear
from .module import Module

__all__ = ["QuantizedWeight", "quantize_weight", "quantizable_weights",
           "quantize_module", "hydrate_quantized", "is_quantized_serving"]

# Upper bound on the float32 cast scratch (bytes) — small enough to stay
# L2-resident next to the activations, big enough to amortize the per-block
# Python dispatch.  Measured on the serving towers: 128K blocks leave ~10%
# on the table, >1M stops helping.
BLOCK_BYTES = 512 * 1024

QMAX = 127  # symmetric int8 range [-127, 127]; -128 is never produced


class QuantizedWeight:
    """A Linear weight as int8 + per-output-channel float32 scales.

    ``q`` is stored transposed, shape ``(out_features, in_features)``
    C-contiguous (see module docs); ``scales`` has shape ``(out_features,)``.
    Instances are read-only shareable: scorer workers and forked/spawned
    scorer processes may call :meth:`matmul_into` concurrently as long as
    each caller owns its ``out``/``scratch`` buffers (the compiled plans'
    buffer pools provide exactly that).
    """

    __slots__ = ("q", "scales", "block_rows")

    def __init__(self, q: np.ndarray, scales: np.ndarray):
        q = np.asarray(q)
        scales = np.asarray(scales, dtype=np.float32)
        if q.dtype != np.int8 or q.ndim != 2:
            raise ValueError("q must be a 2-D int8 array (out, in)")
        if scales.shape != (q.shape[0],):
            raise ValueError(f"scales shape {scales.shape} does not match "
                             f"{q.shape[0]} output channels")
        self.q = q
        self.scales = scales
        self.block_rows = min(q.shape[0],
                              max(16, BLOCK_BYTES // (4 * max(q.shape[1], 1))))

    @property
    def in_features(self) -> int:
        return self.q.shape[1]

    @property
    def out_features(self) -> int:
        return self.q.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        """Logical (in, out) shape of the Linear weight this replaces."""
        return (self.q.shape[1], self.q.shape[0])

    @property
    def nbytes(self) -> int:
        return self.q.nbytes + self.scales.nbytes

    def dequantize(self) -> np.ndarray:
        """Reconstruct the float32 ``(in, out)`` weight (tests/fallbacks)."""
        return np.ascontiguousarray(
            (self.q.astype(np.float32) * self.scales[:, None]).T)

    def scratch_shape(self) -> tuple[int, int]:
        """Shape of the cast scratch one :meth:`matmul_into` call needs."""
        return (self.block_rows, self.q.shape[1])

    def matmul_into(self, x: np.ndarray, out: np.ndarray,
                    scratch: np.ndarray) -> np.ndarray:
        """``out[:] = (x @ q.T) * scales`` with float32 accumulation.

        ``scratch`` must be float32 of :meth:`scratch_shape` (a plan scratch
        buffer); ``out`` must be float32 ``(x.shape[0], out_features)``.
        """
        q = self.q
        cout = q.shape[0]
        blk = self.block_rows
        for j0 in range(0, cout, blk):
            j1 = min(j0 + blk, cout)
            block = scratch[:j1 - j0]
            np.copyto(block, q[j0:j1], casting="unsafe")   # int8 -> f32
            np.matmul(x, block.T, out=out[:, j0:j1])
        out *= self.scales
        return out


def quantize_weight(weight: np.ndarray) -> QuantizedWeight:
    """Quantize one ``(in, out)`` Linear weight (see module docs).

    All-zero output channels get scale 1.0 so dequantization round-trips
    zeros exactly instead of dividing by zero.
    """
    weight = np.asarray(weight)
    if weight.ndim != 2:
        raise ValueError("quantize_weight expects a 2-D (in, out) weight")
    scales = (np.abs(weight).max(axis=0) / QMAX).astype(np.float32)
    scales[scales == 0.0] = 1.0
    q = np.clip(np.rint(weight / scales), -QMAX, QMAX).astype(np.int8)
    return QuantizedWeight(np.ascontiguousarray(q.T), scales)


def quantizable_weights(model: Module) -> dict[str, Linear]:
    """Map ``state_dict`` weight names -> Linear modules eligible for int8.

    Eligible means: a :class:`Linear` living inside an :class:`MLP` tower —
    exactly the layers the compiled Linear / fused linear+relu steps serve.
    Gate Linears, embeddings and GRU cells are excluded by construction
    (their scorers read ``weight.data`` directly).
    """
    eligible: dict[str, Linear] = {}
    for mlp_name, module in model.named_modules():
        if not isinstance(module, MLP):
            continue
        for name, sub in module.named_modules(prefix=mlp_name):
            if isinstance(sub, Linear):
                eligible[f"{name}.weight"] = sub
    return eligible


def quantize_module(model: Module) -> dict[str, QuantizedWeight]:
    """Quantize every eligible weight of ``model`` (non-mutating).

    Returns ``state_dict``-keyed :class:`QuantizedWeight` values — the
    payload :func:`repro.utils.serialization.save_checkpoint` persists in
    the ``.quant.npz`` sidecar.
    """
    if any(np.issubdtype(p.data.dtype, np.floating) and p.data.dtype != np.float32
           for p in model.parameters()):
        raise ValueError("int8 quantization requires a float32 model "
                         "(cast with model.astype(np.float32) first)")
    return {name: quantize_weight(linear.weight.data)
            for name, linear in quantizable_weights(model).items()}


def hydrate_quantized(model: Module, state: dict[str, np.ndarray],
                      quantized: dict[str, QuantizedWeight]) -> Module:
    """Attach a quantized checkpoint to a freshly built ``model``.

    ``state`` carries the full-precision passthrough parameters (possibly
    read-only memmap views — attached without copying, like
    ``load_state_dict(copy=False)``); ``quantized`` carries the int8
    tensors for the eligible Linear weights.  Together they must cover the
    model's parameters exactly.

    The replaced float32 weights are **not resident** afterwards: each
    quantized Linear's ``weight.data`` becomes a zero-memory broadcast of
    NaN, so any code path that bypasses the quantized kernels (Tensor
    forward, split-plan snapshots) poisons its output instead of silently
    serving garbage.  The model is inference-only from here.
    """
    linears = quantizable_weights(model)
    missing_q = set(quantized) - set(linears)
    if missing_q:
        raise KeyError(f"quantized tensors do not match this architecture: "
                       f"{sorted(missing_q)}")
    own = dict(model.named_parameters())
    expected_state = set(own) - set(quantized)
    if set(state) != expected_state:
        raise KeyError(
            f"quantized state mismatch: "
            f"missing={sorted(expected_state - set(state))}, "
            f"unexpected={sorted(set(state) - expected_state)}")
    for name, param in own.items():
        if name in quantized:
            continue
        value = np.asarray(state[name], dtype=param.data.dtype)
        if value.shape != param.shape:
            raise ValueError(f"shape mismatch for {name}: "
                             f"{value.shape} vs {param.shape}")
        param.data = value
    nan = np.float32(np.nan)
    for name, qw in quantized.items():
        linear = linears[name]
        if qw.shape != linear.weight.shape:
            raise ValueError(f"shape mismatch for {name}: "
                             f"{qw.shape} vs {linear.weight.shape}")
        linear.quantized = qw
        linear.weight.data = np.broadcast_to(nan, linear.weight.shape)
    object.__setattr__(model, "_quantized_serving", True)
    model.eval()
    return model


def is_quantized_serving(model: Module) -> bool:
    """True when ``model`` was hydrated by :func:`hydrate_quantized`."""
    return bool(getattr(model, "_quantized_serving", False))
