"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the ``repro.nn`` substrate: a small but
complete autograd engine in the style of PyTorch's eager autograd.  Every
operation used by the paper's models (MLP expert towers, embedding lookups,
noisy top-k gating, softmax distributions, GRU query classifier) is defined
here or in :mod:`repro.nn.functional`.

Design notes
------------
* Tensors wrap ``numpy.ndarray`` data.  ``float64`` is the default dtype so
  that finite-difference gradient checks in the test suite are tight; a
  ``float32`` fast mode is available via :func:`set_default_dtype` (or by
  passing ``dtype=`` per Tensor).  Promotion rules: Tensor-Tensor ops follow
  numpy promotion (f32 op f64 -> f64); Tensor-scalar/array ops adopt the
  Tensor's dtype so float32 graphs are not silently upcast by constants.
  :mod:`repro.nn.gradcheck` always forces float64 regardless of the mode.
* Gradients propagate through a dynamically built DAG.  Each differentiable
  op registers a backward closure on the output tensor; :meth:`Tensor.backward`
  runs them in reverse topological order.
* All binary ops are broadcasting-aware: gradients are "unbroadcast" (summed)
  back to each input's original shape.
* ``no_grad`` disables graph construction, used during evaluation.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "Parameter", "no_grad", "is_grad_enabled", "as_tensor",
           "get_default_dtype", "set_default_dtype", "default_dtype"]

_STATE = threading.local()

_SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))
_FLOAT64 = np.dtype(np.float64)


def get_default_dtype() -> np.dtype:
    """The dtype new tensors get when built from non-float data."""
    return getattr(_STATE, "default_dtype", _FLOAT64)


def set_default_dtype(dtype) -> None:
    """Set the default floating dtype (float32 or float64) for this thread.

    float32 roughly halves memory traffic on the numpy hot paths; float64
    stays the default so gradient checks remain tight.  The setting is
    thread-local (like grad mode) so a gradcheck forcing float64 in one
    thread cannot flip a training run in another.
    """
    dtype = np.dtype(dtype)
    if dtype not in _SUPPORTED_DTYPES:
        raise ValueError(f"default dtype must be float32 or float64, got {dtype}")
    _STATE.default_dtype = dtype


@contextlib.contextmanager
def default_dtype(dtype):
    """Context manager scoping :func:`set_default_dtype` to a block."""
    previous = get_default_dtype()
    set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)


def is_grad_enabled() -> bool:
    """Return True when autograd graph construction is enabled."""
    return getattr(_STATE, "grad_enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables autograd graph construction."""
    previous = is_grad_enabled()
    _STATE.grad_enabled = False
    try:
        yield
    finally:
        _STATE.grad_enabled = previous


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    numpy broadcasting aligns trailing dimensions; leading dimensions that
    were added are summed away, and dimensions of size 1 that were stretched
    are summed with ``keepdims``.
    """
    if grad.shape == shape:
        return grad
    # Sum away prepended broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum stretched size-1 dimensions.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic on a raw array: exact for large |x| in
    both directions.  Shared by :meth:`Tensor.sigmoid` and the fused BCE
    kernel so the stability numerics live in exactly one place."""
    return np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.clip(x, 0, None))),
                    np.exp(np.clip(x, None, 0)) / (1.0 + np.exp(np.clip(x, None, 0))))


def as_tensor(value, dtype=None) -> "Tensor":
    """Coerce ``value`` (Tensor, array, or scalar) to a :class:`Tensor`.

    Existing tensors pass through untouched (``dtype`` is ignored for them);
    everything else is wrapped, landing on ``dtype`` when given, the value's
    own float dtype when it already is a float array, or the default dtype.
    """
    if isinstance(value, Tensor):
        return value
    return Tensor(value, dtype=dtype)


class Tensor:
    """A numpy-backed tensor that records operations for autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "_op")

    def __init__(self, data, requires_grad: bool = False, _prev: Sequence["Tensor"] = (), _op: str = "",
                 dtype=None):
        if isinstance(data, Tensor):
            data = data.data
        elif isinstance(data, np.generic):
            # 0-d results (e.g. 1-D dot products) keep their float dtype.
            data = np.asarray(data)
        if dtype is not None:
            data = np.asarray(data, dtype=dtype)
        elif not (isinstance(data, np.ndarray) and data.dtype in _SUPPORTED_DTYPES):
            data = np.asarray(data, dtype=get_default_dtype())
        self.data = data
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Callable[[], None] | None = None
        self._prev: tuple = tuple(_prev) if is_grad_enabled() else ()
        self._op = _op

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying data array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        """Differentiable dtype cast; gradients are cast back on the way down."""
        dtype = np.dtype(dtype)
        if dtype == self.data.dtype:
            return self
        out = self._make_child(self.data.astype(dtype), (self,), "astype")
        if out.requires_grad:
            def _backward():
                self._accumulate(out.grad.astype(self.data.dtype))
            out._backward = _backward
        return out

    def _coerce(self, other) -> "Tensor":
        """Wrap a binary-op operand, adopting this tensor's dtype for raw
        scalars/arrays so constants don't upcast a float32 graph."""
        if isinstance(other, Tensor):
            return other
        return Tensor(other, dtype=self.data.dtype)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    def _make_child(self, data: np.ndarray, parents: Sequence["Tensor"], op: str) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _prev=parents if requires else (), _op=op)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Accumulate ``grad`` into ``self.grad``."""
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to ones (so scalar losses can call
            ``loss.backward()`` directly).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        # Iterative DFS to avoid recursion limits on deep graphs (e.g. GRUs).
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ------------------------------------------------------------------
    # Arithmetic ops
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out = self._make_child(self.data + other.data, (self, other), "add")
        if out.requires_grad:
            def _backward():
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad, other.shape))
            out._backward = _backward
        return out

    def __radd__(self, other) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        out = self._make_child(-self.data, (self,), "neg")
        if out.requires_grad:
            def _backward():
                self._accumulate(-out.grad)
            out._backward = _backward
        return out

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        out = self._make_child(self.data - other.data, (self, other), "sub")
        if out.requires_grad:
            def _backward():
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(-out.grad, other.shape))
            out._backward = _backward
        return out

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out = self._make_child(self.data * other.data, (self, other), "mul")
        if out.requires_grad:
            def _backward():
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad * self.data, other.shape))
            out._backward = _backward
        return out

    def __rmul__(self, other) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out = self._make_child(self.data / other.data, (self, other), "div")
        if out.requires_grad:
            def _backward():
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad / other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(-out.grad * self.data / (other.data ** 2), other.shape))
            out._backward = _backward
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = self._make_child(self.data ** exponent, (self,), "pow")
        if out.requires_grad:
            def _backward():
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))
            out._backward = _backward
        return out

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out = self._make_child(self.data @ other.data, (self, other), "matmul")
        if out.requires_grad:
            def _backward():
                a, b, g = self.data, other.data, out.grad
                if self.requires_grad:
                    if b.ndim == 1:
                        grad_a = np.outer(g, b) if a.ndim == 2 else g * b
                    else:
                        grad_a = g @ np.swapaxes(b, -1, -2)
                    if a.ndim == 1 and grad_a.ndim > 1:
                        grad_a = grad_a.sum(axis=tuple(range(grad_a.ndim - 1)))
                    self._accumulate(_unbroadcast(grad_a, a.shape))
                if other.requires_grad:
                    if a.ndim == 1:
                        grad_b = np.outer(a, g) if b.ndim == 2 else a * g
                    else:
                        grad_b = np.swapaxes(a, -1, -2) @ g
                    if b.ndim == 1 and grad_b.ndim > 1:
                        grad_b = grad_b.sum(axis=tuple(range(grad_b.ndim - 1)))
                    other._accumulate(_unbroadcast(grad_b, b.shape))
            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Elementwise transcendental ops
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out = self._make_child(np.exp(self.data), (self,), "exp")
        if out.requires_grad:
            def _backward():
                self._accumulate(out.grad * out.data)
            out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = self._make_child(np.log(self.data), (self,), "log")
        if out.requires_grad:
            def _backward():
                self._accumulate(out.grad / self.data)
            out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out = self._make_child(np.tanh(self.data), (self,), "tanh")
        if out.requires_grad:
            def _backward():
                self._accumulate(out.grad * (1.0 - out.data ** 2))
            out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        out = self._make_child(_stable_sigmoid(self.data), (self,), "sigmoid")
        if out.requires_grad:
            def _backward():
                self._accumulate(out.grad * out.data * (1.0 - out.data))
            out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        out = self._make_child(np.maximum(self.data, 0.0), (self,), "relu")
        if out.requires_grad:
            mask = self.data > 0
            def _backward():
                self._accumulate(out.grad * mask)
            out._backward = _backward
        return out

    def abs(self) -> "Tensor":
        out = self._make_child(np.abs(self.data), (self,), "abs")
        if out.requires_grad:
            sign = np.sign(self.data)
            def _backward():
                self._accumulate(out.grad * sign)
            out._backward = _backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to [low, high]; gradient passes only inside the range."""
        out = self._make_child(np.clip(self.data, low, high), (self,), "clip")
        if out.requires_grad:
            mask = (self.data >= low) & (self.data <= high)
            def _backward():
                self._accumulate(out.grad * mask)
            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make_child(self.data.sum(axis=axis, keepdims=keepdims), (self,), "sum")
        if out.requires_grad:
            def _backward():
                g = out.grad
                if axis is not None and not keepdims:
                    g = np.expand_dims(g, axis=axis)
                self._accumulate(np.broadcast_to(g, self.shape).copy())
            out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else np.prod(
            [self.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))])
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make_child(out_data, (self,), "max")
        if out.requires_grad:
            def _backward():
                g = out.grad
                o = out.data
                if axis is not None and not keepdims:
                    g = np.expand_dims(g, axis=axis)
                    o = np.expand_dims(o, axis=axis)
                mask = (self.data == o).astype(self.data.dtype)
                # Split gradient among ties to keep the op well-defined.
                denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
                self._accumulate(mask / denom * g)
            out._backward = _backward
        return out

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make_child(self.data.reshape(shape), (self,), "reshape")
        if out.requires_grad:
            def _backward():
                self._accumulate(out.grad.reshape(self.shape))
            out._backward = _backward
        return out

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def transpose(self, axes: Sequence[int] | None = None) -> "Tensor":
        out = self._make_child(np.transpose(self.data, axes), (self,), "transpose")
        if out.requires_grad:
            inverse = None if axes is None else tuple(np.argsort(axes))
            def _backward():
                self._accumulate(np.transpose(out.grad, inverse))
            out._backward = _backward
        return out

    def __getitem__(self, index) -> "Tensor":
        out = self._make_child(self.data[index], (self,), "getitem")
        if out.requires_grad:
            def _backward():
                grad = np.zeros_like(self.data)
                np.add.at(grad, index, out.grad)
                self._accumulate(grad)
            out._backward = _backward
        return out

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Row gather (embedding lookup): out[i] = self[indices[i]].

        Gradients are scatter-added back into the source rows, which is the
        standard sparse embedding backward.
        """
        indices = np.asarray(indices, dtype=np.int64)
        out = self._make_child(self.data[indices], (self,), "take_rows")
        if out.requires_grad:
            def _backward():
                grad = np.zeros_like(self.data)
                np.add.at(grad, indices, out.grad)
                self._accumulate(grad)
            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Comparison (returns plain numpy bool arrays — not differentiable)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other


class Parameter(Tensor):
    """A trainable tensor — always requires grad, registered by Modules."""

    __slots__ = ()

    def __init__(self, data, dtype=None):
        # Parameters always land on the default dtype (unless overridden) so
        # that set_default_dtype(float32) makes whole models compute in f32.
        super().__init__(data, requires_grad=True,
                         dtype=dtype if dtype is not None else get_default_dtype())
        # Parameters must stay trainable even if created inside no_grad().
        self.requires_grad = True

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape})"


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _prev=tuple(tensors) if requires else (), _op="concat")
    if requires:
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)
        def _backward():
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * out.grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate(out.grad[tuple(slicer)])
        out._backward = _backward
    return out


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _prev=tuple(tensors) if requires else (), _op="stack")
    if requires:
        def _backward():
            grads = np.split(out.grad, len(tensors), axis=axis)
            for tensor, g in zip(tensors, grads):
                if tensor.requires_grad:
                    tensor._accumulate(np.squeeze(g, axis=axis))
        out._backward = _backward
    return out
