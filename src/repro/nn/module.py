"""Module system: parameter registration, train/eval mode, state dicts.

A lightweight analogue of ``torch.nn.Module``: attributes that are
:class:`~repro.nn.tensor.Parameter` or :class:`Module` instances are
registered automatically, so ``parameters()`` walks the full model tree.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Parameter, Tensor

__all__ = ["Module", "ModuleList", "Sequential"]


class Module:
    """Base class for all neural network modules."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Parameter) -> None:
        """Explicitly register a parameter under ``name``."""
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    def add_module(self, name: str, module: "Module") -> None:
        """Explicitly register a child module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters in this module and its children."""
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield (qualified_name, parameter) pairs across the module tree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield (qualified_name, module) pairs across the module tree.

        Names compose exactly like :meth:`named_parameters`: a parameter
        ``p`` of the module named ``a.b`` appears there as ``a.b.p`` — the
        seam the quantizer uses to map quantized tensors back onto
        ``state_dict`` keys.
        """
        yield (prefix, self)
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_modules(prefix=child_prefix)

    def num_parameters(self) -> int:
        """Total number of scalar parameters in the tree."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Modes and gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout and gate noise)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def reseed(self, seed: "int | np.random.SeedSequence") -> "Module":
        """Re-derive every RNG held anywhere in the module tree from ``seed``.

        Walks ``modules()`` in deterministic registration order and hands
        each RNG-holding module (one exposing ``reseed(rng)`` or a plain
        ``_rng`` attribute) an independent generator spawned from one
        ``np.random.SeedSequence``.  This is the fork-safety seam for
        multi-process serving: a child process inherits (fork) or rebuilds
        (spawn) the parent's generators, so without an explicit per-child
        reseed every "independent" worker would draw the same noise stream.
        Same seed → same streams; different seeds → provably independent
        spawn keys.
        """
        sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)

        def _custom_reseed(module):
            # An RNG-holding module may expose its own ``reseed(rng)``
            # (e.g. NoisyTopKGate); the inherited Module.reseed takes a
            # *seed*, so only an override counts.
            if type(module).reseed is Module.reseed:
                return None
            return module.reseed

        holders = [module for module in self.modules()
                   if module is not self
                   and (hasattr(module, "_rng")
                        or _custom_reseed(module) is not None)]
        if hasattr(self, "_rng"):
            holders.insert(0, self)
        for module, child_seq in zip(holders, sequence.spawn(max(len(holders), 1))):
            rng = np.random.default_rng(child_seq)
            reseed = _custom_reseed(module) if module is not self else None
            if reseed is not None:
                reseed(rng)
            else:
                object.__setattr__(module, "_rng", rng)
        return self

    def astype(self, dtype) -> "Module":
        """Cast every parameter (and pending grad) in place to ``dtype``.

        This is how an already-built model enters float32 fast mode (or back
        to float64 for gradchecking).  Optimizer state does not follow —
        build the optimizer after casting.
        """
        dtype = np.dtype(dtype)
        for param in self.parameters():
            param.data = np.ascontiguousarray(param.data, dtype=dtype)
            if param.grad is not None:
                param.grad = param.grad.astype(dtype, copy=False)
        return self

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a flat name → array copy of all parameters."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray], copy: bool = True) -> None:
        """Load parameter values from :meth:`state_dict` output.

        With ``copy=False`` the provided arrays are attached directly when
        their dtype already matches (``np.asarray`` is then a no-op view).
        Multi-process serving uses this to back every parameter with a
        read-only ``np.load(..., mmap_mode="r")`` memmap: N processes map
        the same ``.npy`` files and the OS page cache keeps one physical
        copy of the weights.  Such a model is inference-only — optimizer
        steps would need writable buffers.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.shape}")
            param.data = value.copy() if copy else value

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def compiled(self):
        """Compile this module into a graph-free inference plan.

        Returns a :class:`repro.nn.infer.CompiledPlan` — a callable that
        runs the forward pass as plain-numpy closures (eval-mode semantics,
        preallocated scratch buffers, no autograd graph).  Parameters are
        read live, so optimizer steps and ``load_state_dict`` are picked up
        without recompiling.
        """
        from . import infer
        return infer.compile_module(self)


class ModuleList(Module):
    """Hold an ordered list of sub-modules, registering each one."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        index = len(self._items)
        self._items.append(module)
        self.add_module(str(index), module)

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


class Sequential(Module):
    """Chain modules, feeding each output to the next module."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._items = list(modules)
        for index, module in enumerate(self._items):
            self.add_module(str(index), module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._items:
            x = module(x)
        return x

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
