"""Loss functions.

The paper trains with per-example binary cross entropy on the purchase label
(eq. 13); the query-category classifier (§4.1) uses multi-class cross entropy.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .tensor import Tensor, as_tensor

__all__ = ["bce_with_logits", "binary_cross_entropy", "cross_entropy", "mse_loss"]


def bce_with_logits(logits: Tensor, targets, reduction: str = "mean") -> Tensor:
    """Numerically stable binary cross entropy on raw logits.

    Uses the identity ``BCE(x, y) = max(x, 0) - x*y + log(1 + exp(-|x|))``
    which never overflows, unlike composing sigmoid + log.  Backed by the
    fused kernel :func:`repro.nn.functional.bce_with_logits_fused` (single
    graph node, closed-form backward).
    """
    return F.bce_with_logits_fused(logits, targets, reduction=reduction)


def binary_cross_entropy(probs: Tensor, targets, reduction: str = "mean",
                         eps: float = 1e-12) -> Tensor:
    """Binary cross entropy on probabilities (eq. 13).

    The MoE ensemble output :math:`\\hat y` is already a probability
    (a gate-weighted sum of sigmoid expert outputs), so the paper's CE term
    operates on probabilities rather than logits.  ``eps`` clamps the input
    away from {0, 1} for numerical safety.
    """
    probs = as_tensor(probs).clip(eps, 1.0 - eps)
    targets = as_tensor(targets)
    loss = -(targets * probs.log() + (1.0 - targets) * (1.0 - probs).log())
    return _reduce(loss, reduction)


def cross_entropy(logits: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Multi-class cross entropy from logits and integer class targets.

    Backed by the fused kernel
    :func:`repro.nn.functional.softmax_cross_entropy` whose backward is the
    closed-form ``softmax - onehot``.
    """
    loss = F.softmax_cross_entropy(logits, targets, reduction=reduction)
    if reduction == "none":
        # The fused kernel yields (n,); this wrapper has always returned the
        # per-example column (n, 1), so keep that contract for callers that
        # broadcast weights against it.
        return loss.reshape(-1, 1)
    return loss


def mse_loss(prediction: Tensor, target, reduction: str = "mean") -> Tensor:
    """Mean squared error."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    loss = (prediction - target) ** 2
    return _reduce(loss, reduction)


def _reduce(loss: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    if reduction == "none":
        return loss
    raise ValueError(f"unknown reduction {reduction!r}")
