"""Weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so that every
experiment in the benchmark harness is reproducible from a single seed.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "he_uniform", "he_normal", "normal", "uniform", "zeros", "ones"]


def _fan(shape: tuple[int, ...]) -> tuple[int, int]:
    """Return (fan_in, fan_out) for a weight shape."""
    if len(shape) < 1:
        raise ValueError("cannot compute fan of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = shape[0]
    fan_out = shape[1]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return fan_in * receptive, fan_out * receptive


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot & Bengio (2010) uniform initializer."""
    fan_in, fan_out = _fan(shape)
    limit = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot & Bengio (2010) normal initializer."""
    fan_in, fan_out = _fan(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He et al. (2015) uniform initializer, suited to ReLU towers."""
    fan_in, _ = _fan(shape)
    limit = math.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He et al. (2015) normal initializer, suited to ReLU towers."""
    fan_in, _ = _fan(shape)
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    """Zero-mean Gaussian initializer (default for embeddings)."""
    return rng.normal(0.0, std, size=shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, low: float = -0.05, high: float = 0.05) -> np.ndarray:
    """Uniform initializer."""
    return rng.uniform(low, high, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initializer (default for biases)."""
    return np.zeros(shape)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    """All-ones initializer."""
    return np.ones(shape)
