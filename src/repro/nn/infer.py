"""Graph-free inference engine: compile modules into plain-numpy plans.

Training rides the autograd :class:`~repro.nn.tensor.Tensor` graph, but a
prediction has no use for the node closures that graph allocates — they are
built and immediately thrown away.  This module compiles a
:class:`~repro.nn.module.Module` tree into a flat plan of plain-numpy
closures that reuse the fused kernels' *forward* math (``linear_relu``'s
matmul+bias+relu collapse, ``gru_sequence``'s hoisted input projection and
in-loop masking) with no Tensor wrappers, no graph bookkeeping, and
preallocated per-batch-size scratch buffers:

>>> plan = model.compiled()          # Module.compiled() -> CompiledPlan
>>> probs = plan(x)                  # plain ndarray in, plain ndarray out

Semantics
---------
* Plans always run in **inference mode**: Dropout compiles to the identity
  and recurrent scans use the parameters' dtype throughout.  Modules whose
  eval-mode forward differs from their train-mode forward get eval-mode
  behaviour.
* Plans read parameters through the live :class:`Parameter` objects at call
  time, so an optimizer step, ``load_state_dict`` or ``astype`` is picked up
  without recompiling.  (Buffers are keyed by shape *and* dtype, so a dtype
  flip simply allocates a fresh set.)
* Returned arrays are **owned by the plan** and overwritten by the next
  call with the same batch size — ``.copy()`` them to retain results.
* Plans are **not thread-safe** (the scratch buffers are shared state);
  :class:`repro.serving.BatchScorer` serializes calls through one worker.
* :class:`~repro.nn.rnn.GRU` compiles to its serving-relevant output — the
  final hidden state ``(batch, hidden)`` — rather than the per-step output
  list the Tensor path returns.  ``BiGRU`` returns the same concatenated
  final states as its Tensor forward.
* Unknown module types fall back to the module's Tensor forward under
  ``no_grad`` so custom models still compile; only the types registered
  here get the fast closures.
* **Packed ragged scans**: a compiled GRU/BiGRU whose cell has
  ``packed=True`` (the default) automatically routes ragged batches
  through a sort-by-length packed scan (the serving mirror of
  ``gru_sequence_packed``) — each timestep only computes the still-valid
  prefix.  Uniform batches keep the masked scan.
* **int8 quantized lane**: a Linear carrying a
  :class:`~repro.nn.quantize.QuantizedWeight` (see ``hydrate_quantized``)
  compiles to the blocked int8→f32 matmul with f32 accumulation instead
  of the full-precision step; biases, activations, GRU and embedding
  steps stay float32.

Numerics match the Tensor path operation for operation (same kernels, same
evaluation order), so compiled scoring is bit-comparable to ``no_grad``
evaluation — the parity suite pins ≤1e-12 in float64 and ≤1e-6 in float32.
"""

from __future__ import annotations

import threading
from typing import Callable

import numpy as np

from .functional import _packed_order
from .layers import (MLP, Dropout, Embedding, Linear, ReLU, Sigmoid, Tanh,
                     check_embedding_ids)
from .module import Module, Sequential
from .rnn import GRU, BiGRU, GRUCell
from .tensor import Tensor, _stable_sigmoid, no_grad

__all__ = ["CompiledPlan", "BufferPool", "compile_module", "register_compiler",
           "softmax_array", "masked_softmax_array", "sigmoid_array",
           "SplitMLP", "PrefixMemo"]


# ----------------------------------------------------------------------
# Plain-numpy math shared with the serving scorers
# ----------------------------------------------------------------------
def sigmoid_array(x: np.ndarray) -> np.ndarray:
    """Stable logistic on a raw array (same numerics as Tensor.sigmoid)."""
    return _stable_sigmoid(x)


def softmax_array(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Plain-numpy softmax mirroring :func:`repro.nn.functional.softmax`.

    Keeps the exact forward numerics (max-shift, zero-total guard) so
    compiled scores match the Tensor path to float rounding.
    """
    shifted = x - np.max(x, axis=axis, keepdims=True)
    with np.errstate(invalid="ignore"):
        exps = np.exp(shifted)
    total = exps.sum(axis=axis, keepdims=True)
    return np.where(total > 0, exps / np.where(total == 0, 1.0, total), 0.0)


def masked_softmax_array(x: np.ndarray, mask: np.ndarray, axis: int = -1) -> np.ndarray:
    """Plain-numpy masked softmax mirroring ``functional.masked_softmax``."""
    mask = np.asarray(mask, dtype=bool)
    return softmax_array(np.where(mask, x, -np.inf), axis=axis)


# ----------------------------------------------------------------------
# Buffer pool
# ----------------------------------------------------------------------
class BufferPool:
    """Preallocated scratch arrays keyed by (step id, shape, dtype).

    Each compiled step reserves an id at compile time and fetches its
    output buffer per call; the first call at a given batch size allocates,
    every later call reuses.  The pool is LRU-bounded (``max_buffers``):
    a long-running service whose micro-batches arrive in many distinct
    sizes evicts cold entries instead of growing without bound.  ``nbytes``
    reports the pool's footprint.
    """

    def __init__(self, max_buffers: int = 512):
        if max_buffers <= 0:
            raise ValueError("max_buffers must be positive")
        self._buffers: dict[tuple, np.ndarray] = {}
        self._max_buffers = max_buffers
        self._next_id = 0

    def reserve(self) -> int:
        """Hand out a unique step id."""
        self._next_id += 1
        return self._next_id

    def get(self, step: int, shape: tuple, dtype) -> np.ndarray:
        key = (step, shape, np.dtype(dtype))
        buffer = self._buffers.pop(key, None)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)
            if len(self._buffers) >= self._max_buffers:
                # dicts preserve insertion order; re-inserting on every hit
                # (the pop above) makes the first key the least recent.
                self._buffers.pop(next(iter(self._buffers)))
        self._buffers[key] = buffer
        return buffer

    @property
    def nbytes(self) -> int:
        return sum(buffer.nbytes for buffer in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)


# ----------------------------------------------------------------------
# Compiler registry
# ----------------------------------------------------------------------
_COMPILERS: dict[type, Callable] = {}


def register_compiler(module_type: type):
    """Decorator registering a compile function for a Module subclass.

    The compile function receives ``(module, pool)`` and returns the step
    closure.  Lookup walks the module's MRO, so subclasses inherit their
    parent's compiler unless they register their own.
    """
    def decorate(fn):
        _COMPILERS[module_type] = fn
        return fn
    return decorate


def _compile(module: Module, pool: BufferPool) -> Callable:
    for cls in type(module).__mro__:
        compiler = _COMPILERS.get(cls)
        if compiler is not None:
            return compiler(module, pool)
    return _compile_generic(module, pool)


def _compile_generic(module: Module, pool: BufferPool) -> Callable:
    """Fallback for unregistered types: Tensor forward under no_grad."""
    def run(*args, **kwargs):
        with no_grad():
            out = module(*args, **kwargs)
        return out.data if isinstance(out, Tensor) else out
    return run


class CompiledPlan:
    """A compiled, graph-free forward for one module tree.

    Call it like the module; inputs may be plain arrays or Tensors (the
    data is used).  Float inputs are cast once at entry to the plan's
    parameter dtype, so a float64 feed into a float32 model does not
    silently promote the whole plan.
    """

    def __init__(self, module: Module, fn: Callable, pool: BufferPool):
        self.module = module
        self.pool = pool
        self._fn = fn

    @property
    def dtype(self) -> np.dtype | None:
        """The parameter dtype the plan computes in (None if parameterless)."""
        for param in self.module.parameters():
            return param.data.dtype
        return None

    def __call__(self, x, *args, **kwargs):
        if isinstance(x, Tensor):
            x = x.data
        x = np.asarray(x)
        dtype = self.dtype
        if dtype is not None and np.issubdtype(x.dtype, np.floating) and x.dtype != dtype:
            x = x.astype(dtype)
        return self._fn(x, *args, **kwargs)

    def __repr__(self) -> str:
        return (f"CompiledPlan({type(self.module).__name__}, "
                f"buffers={len(self.pool)}, nbytes={self.pool.nbytes})")


def compile_module(module: Module) -> CompiledPlan:
    """Compile ``module`` into a :class:`CompiledPlan` (see module docs)."""
    pool = BufferPool()
    return CompiledPlan(module, _compile(module, pool), pool)


# ----------------------------------------------------------------------
# Split-plan precompute: query-independent prefix + per-request suffix
# ----------------------------------------------------------------------
class SplitMLP:
    """Column-split compiled MLP: a precomputable prefix plus a suffix.

    The first ``Linear`` of an MLP is a sum over input columns —
    ``x @ W == x[:, a] @ W[a, :] + x[:, b] @ W[b, :]`` for any partition
    ``(a, b)`` of the columns — so when some columns are query-independent
    (item embeddings, numeric item features), their contribution to the
    first hidden layer can be computed **once per item** and reused across
    every request that scores that item.  ``prefix(x_static)`` computes
    that contribution; calling the split plan with a looked-up prefix and
    the dynamic (query-side) columns finishes the first layer (dynamic
    matmul + prefix + bias + fused relu) and runs the remaining compiled
    steps.

    Unlike :class:`CompiledPlan`, the first layer's weights are
    **snapshotted at construction**: a memoized prefix is only valid
    against the exact weights it was computed with, so the split plan
    pins them.  Serving models are frozen per checkpoint version (a hot
    reload builds a new model object, hence a new split plan), which is
    exactly the granularity the memo needs.  Do not use a split plan on
    a model still being trained.

    Numerics: the column split changes the first matmul's summation
    order, so split scores match the unsplit plan to float rounding
    (≤1e-10 in float64), **not** bit-for-bit — the result cache, which
    stores computed arrays verbatim, is the bit-identical layer.
    """

    def __init__(self, module: MLP, static_columns, dynamic_columns):
        if not module._plan:
            raise ValueError("cannot split an empty MLP")
        kind, first = module._plan[0]
        if not isinstance(first, Linear):
            raise ValueError("split requires the MLP to start with a Linear "
                             f"layer, got {type(first).__name__}")
        if getattr(first, "quantized", None) is not None:
            # The snapshot below would capture the NaN placeholder a
            # quantized hydration leaves in weight.data.
            raise ValueError("split plans snapshot the full-precision first "
                             "layer; quantized models cannot be split")
        static_columns = np.asarray(static_columns, dtype=np.intp).reshape(-1)
        dynamic_columns = np.asarray(dynamic_columns, dtype=np.intp).reshape(-1)
        weight = first.weight.data
        claimed = np.zeros(weight.shape[0], dtype=np.int64)
        np.add.at(claimed, static_columns, 1)
        np.add.at(claimed, dynamic_columns, 1)
        if not np.all(claimed == 1):
            raise ValueError("static/dynamic columns must partition the "
                             f"{weight.shape[0]} input columns exactly once")
        self._w_static = np.ascontiguousarray(weight[static_columns, :])
        self._w_dynamic = np.ascontiguousarray(weight[dynamic_columns, :])
        self._bias = None if first.bias is None else first.bias.data.copy()
        self._fused_relu = kind == "linear_relu"
        self._pool = BufferPool()
        self._head_step = self._pool.reserve()
        self._tail = []
        for tail_kind, sub in module._plan[1:]:
            if tail_kind == "linear_relu":
                self._tail.append(_linear_relu_step(sub, self._pool))
            else:
                self._tail.append(_compile(sub, self._pool))

    @property
    def prefix_width(self) -> int:
        """Width of one prefix row (the first hidden layer's size)."""
        return self._w_static.shape[1]

    @property
    def dtype(self) -> np.dtype:
        return self._w_static.dtype

    def prefix(self, x_static: np.ndarray) -> np.ndarray:
        """Query-independent first-layer contribution (caller-owned)."""
        x_static = np.asarray(x_static, dtype=self._w_static.dtype)
        return x_static @ self._w_static

    def __call__(self, prefix: np.ndarray, x_dynamic: np.ndarray) -> np.ndarray:
        """Finish the forward: dynamic columns + looked-up prefix rows.

        Returns a plan-owned array (same ownership contract as
        :class:`CompiledPlan` — copy to retain).  Not thread-safe; hand
        each worker its own instance.
        """
        x_dynamic = np.asarray(x_dynamic, dtype=self._w_dynamic.dtype)
        out = self._pool.get(self._head_step,
                             (x_dynamic.shape[0], self._w_dynamic.shape[1]),
                             self._w_dynamic.dtype)
        np.matmul(x_dynamic, self._w_dynamic, out=out)
        out += prefix
        if self._bias is not None:
            out += self._bias
        if self._fused_relu:
            np.maximum(out, 0.0, out=out)
        for step in self._tail:
            out = step(out)
        return out


class PrefixMemo:
    """Thread-safe bounded LRU of precomputed per-item prefix rows.

    Keys are per-row digests of the item-side input features (see
    :meth:`FeatureEmbedder.item_row_keys`); values are the matching
    :meth:`SplitMLP.prefix` rows.  One memo serves every worker of one
    ``(model, version)`` scorer pool — **never** share a memo across
    model versions (the prefixes are weight snapshots; see
    :class:`SplitMLP`).
    """

    def __init__(self, max_items: int = 8192):
        if max_items <= 0:
            raise ValueError("max_items must be positive")
        self.max_items = int(max_items)
        self._lock = threading.Lock()
        self._rows: dict[bytes, np.ndarray] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def lookup(self, keys: list[bytes], compute) -> np.ndarray:
        """Stacked prefix rows for ``keys``, computing the missing ones.

        ``compute(positions)`` receives the positional indices (into
        ``keys``) of the rows not in the memo and returns the matching
        ``(len(positions), width)`` block.  Duplicate missing keys within
        one batch are computed per position (correct, marginally
        redundant).  Returns a caller-owned ``(len(keys), width)`` array.
        """
        with self._lock:
            found: list[np.ndarray | None] = []
            for key in keys:
                row = self._rows.pop(key, None)
                if row is not None:
                    self._rows[key] = row   # reinsert: most recently used
                    self._hits += 1
                found.append(row)
        missing = [i for i, row in enumerate(found) if row is None]
        if missing:
            computed = np.asarray(compute(np.asarray(missing, dtype=np.intp)))
            with self._lock:
                self._misses += len(missing)
                for j, i in enumerate(missing):
                    row = np.ascontiguousarray(computed[j])
                    found[i] = row
                    self._rows.pop(keys[i], None)
                    self._rows[keys[i]] = row
                while len(self._rows) > self.max_items:
                    self._rows.pop(next(iter(self._rows)))
                    self._evictions += 1
        return np.stack(found, axis=0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    def snapshot(self) -> dict:
        with self._lock:
            return {"items": len(self._rows), "max_items": self.max_items,
                    "hits": self._hits, "misses": self._misses,
                    "evictions": self._evictions}


# ----------------------------------------------------------------------
# Layer compilers
# ----------------------------------------------------------------------
def _quantized_linear_step(module: Linear, pool: BufferPool,
                           relu: bool) -> Callable:
    """int8 plan lane: blocked-cast matmul, f32 accumulation, f32 bias/relu.

    Selected when the Linear carries a
    :class:`~repro.nn.quantize.QuantizedWeight` (attached by
    ``hydrate_quantized`` for serving, or transiently during calibration).
    The cast scratch comes from the plan's buffer pool, so the shared
    read-only ``QuantizedWeight`` never holds per-call state — one mmap'd
    int8 tensor safely feeds every scorer worker and process shard.
    """
    step = pool.reserve()
    scratch_step = pool.reserve()
    qw = module.quantized
    bias = module.bias

    def run(x):
        out = pool.get(step, (x.shape[0], qw.out_features), np.float32)
        scratch = pool.get(scratch_step, qw.scratch_shape(), np.float32)
        qw.matmul_into(x, out, scratch)
        if bias is not None:
            out += bias.data
        if relu:
            np.maximum(out, 0.0, out=out)
        return out
    return run


@register_compiler(Linear)
def _compile_linear(module: Linear, pool: BufferPool) -> Callable:
    # The quantized attribute is sampled at compile time (unlike weights,
    # which are read live): hydration happens before any plan is built and
    # a hot reload compiles fresh plans for the new model object.
    if getattr(module, "quantized", None) is not None:
        return _quantized_linear_step(module, pool, relu=False)
    step = pool.reserve()
    weight, bias = module.weight, module.bias

    def run(x):
        w = weight.data
        out = pool.get(step, (x.shape[0], w.shape[1]), w.dtype)
        np.matmul(x, w, out=out)
        if bias is not None:
            out += bias.data
        return out
    return run


def _linear_relu_step(module: Linear, pool: BufferPool) -> Callable:
    """The fused kernel's forward math: matmul + bias + in-place relu."""
    if getattr(module, "quantized", None) is not None:
        return _quantized_linear_step(module, pool, relu=True)
    step = pool.reserve()
    weight, bias = module.weight, module.bias

    def run(x):
        w = weight.data
        out = pool.get(step, (x.shape[0], w.shape[1]), w.dtype)
        np.matmul(x, w, out=out)
        if bias is not None:
            out += bias.data
        np.maximum(out, 0.0, out=out)
        return out
    return run


@register_compiler(ReLU)
def _compile_relu(module: ReLU, pool: BufferPool) -> Callable:
    step = pool.reserve()

    def run(x):
        out = pool.get(step, x.shape, x.dtype)
        np.maximum(x, 0.0, out=out)
        return out
    return run


@register_compiler(Sigmoid)
def _compile_sigmoid(module: Sigmoid, pool: BufferPool) -> Callable:
    def run(x):
        return _stable_sigmoid(x)
    return run


@register_compiler(Tanh)
def _compile_tanh(module: Tanh, pool: BufferPool) -> Callable:
    step = pool.reserve()

    def run(x):
        out = pool.get(step, x.shape, x.dtype)
        np.tanh(x, out=out)
        return out
    return run


@register_compiler(Dropout)
def _compile_dropout(module: Dropout, pool: BufferPool) -> Callable:
    # Inference mode: inverted dropout is the identity in eval.
    def run(x):
        return x
    return run


@register_compiler(Sequential)
def _compile_sequential(module: Sequential, pool: BufferPool) -> Callable:
    steps = [_compile(child, pool) for child in module]

    def run(x):
        for step in steps:
            x = step(x)
        return x
    return run


@register_compiler(MLP)
def _compile_mlp(module: MLP, pool: BufferPool) -> Callable:
    # Mirror the module's fast-path plan: adjacent Linear+ReLU pairs become
    # one fused step (matching F.linear_relu's forward exactly).
    steps = []
    for kind, sub in module._plan:
        if kind == "linear_relu":
            steps.append(_linear_relu_step(sub, pool))
        else:
            steps.append(_compile(sub, pool))

    def run(x):
        for step in steps:
            x = step(x)
        return x
    return run


@register_compiler(Embedding)
def _compile_embedding(module: Embedding, pool: BufferPool) -> Callable:
    step = pool.reserve()
    weight = module.weight

    def run(ids):
        w = weight.data
        ids = check_embedding_ids(ids, w.shape[0])
        out = pool.get(step, ids.shape + (w.shape[1],), w.dtype)
        np.take(w, ids, axis=0, out=out)
        return out
    return run


# ----------------------------------------------------------------------
# Recurrent compilers — gru_sequence's forward math, no graph
# ----------------------------------------------------------------------
def _gru_scan(cell: GRUCell, pool: BufferPool, reverse: bool) -> Callable:
    """Compile one direction of a GRU scan to plain numpy.

    Follows :func:`repro.nn.functional.gru_sequence` step for step: the
    input projection is one (B·T, 3H) matmul hoisted out of the loop, each
    step computes the fused cell's forward, and steps where every example
    is valid skip the mask.  Returns the final hidden state.

    When the batch is ragged and ``cell.packed`` is set (the default), the
    scan packs instead — the serving mirror of
    :func:`repro.nn.functional.gru_sequence_packed`: sort rows by length
    once (``_packed_order``'s early-exits apply), project only the valid
    (example, step) positions, update only the still-valid prefix at each
    step, and unsort the final state.
    """
    step_proj = pool.reserve()
    step_gates = pool.reserve()
    step_pack = pool.reserve()
    step_out = pool.reserve()

    def run_packed(x, lens):
        w_ih, w_hh = cell.weight_ih.data, cell.weight_hh.data
        b_ih, b_hh = cell.bias_ih.data, cell.bias_hh.data
        batch, time, features = x.shape
        hs = w_hh.shape[0]
        order = _packed_order(lens)
        sorted_lens = lens if order is None else lens[order]
        batch_sizes = (sorted_lens[:, None] > np.arange(time)[None, :]).sum(axis=0)
        offsets = np.zeros(time + 1, dtype=np.int64)
        np.cumsum(batch_sizes, out=offsets[1:])
        total = int(offsets[-1])
        ord_rows = order if order is not None else np.arange(batch, dtype=np.int64)
        flat_index = np.empty(total, dtype=np.int64)
        for t in range(time):
            nt = int(batch_sizes[t])
            if nt:
                flat_index[offsets[t]:offsets[t + 1]] = ord_rows[:nt] * time + t
        # Hoisted projection over the valid rows only.
        packed = pool.get(step_pack, (total, features), x.dtype)
        np.take(x.reshape(batch * time, features), flat_index, axis=0,
                out=packed)
        proj = pool.get(step_proj, (total, 3 * hs), w_ih.dtype)
        np.matmul(packed, w_ih, out=proj)
        proj += b_ih
        h = pool.get(step_out, (batch, hs), w_hh.dtype)
        h[:] = 0.0
        gates_buf = pool.get(step_gates, (batch, 3 * hs), w_hh.dtype)
        steps = range(time - 1, -1, -1) if reverse else range(time)
        for t in steps:
            nt = int(batch_sizes[t])
            if nt == 0:
                continue
            hp = h[:nt]
            gates = gates_buf[:nt]
            np.matmul(hp, w_hh, out=gates)
            gates += b_hh
            xg = proj[offsets[t]:offsets[t + 1]]
            r = _stable_sigmoid(xg[:, :hs] + gates[:, :hs])
            z = _stable_sigmoid(xg[:, hs:2 * hs] + gates[:, hs:2 * hs])
            n = np.tanh(xg[:, 2 * hs:] + r * gates[:, 2 * hs:])
            h[:nt] = (1.0 - z) * n + z * hp
        if order is None:
            return h
        inverse = np.empty(batch, dtype=np.int64)
        inverse[order] = np.arange(batch, dtype=np.int64)
        return h[inverse]

    def run(x, lengths=None):
        w_ih, w_hh = cell.weight_ih.data, cell.weight_hh.data
        b_ih, b_hh = cell.bias_ih.data, cell.bias_hh.data
        batch, time, features = x.shape
        hs = w_hh.shape[0]
        if lengths is not None and cell.packed:
            lens = np.clip(np.asarray(lengths), 0, time)
            # Same dispatch rule as nn.rnn.GRU: packing only pays for
            # itself when there are padded positions to skip.
            if lens.size and lens.min() < time:
                return run_packed(x, lens)
        proj = pool.get(step_proj, (batch * time, 3 * hs), w_ih.dtype)
        np.matmul(x.reshape(batch * time, features), w_ih, out=proj)
        proj += b_ih
        proj = proj.reshape(batch, time, 3 * hs)
        if lengths is not None:
            valid = np.asarray(lengths).reshape(-1, 1) > np.arange(time)[None, :]
            masks = valid.astype(w_hh.dtype)
            full_steps = valid.all(axis=0)
        h = np.zeros((batch, hs), dtype=w_hh.dtype)
        gates = pool.get(step_gates, (batch, 3 * hs), w_hh.dtype)
        steps = range(time - 1, -1, -1) if reverse else range(time)
        for t in steps:
            np.matmul(h, w_hh, out=gates)
            gates += b_hh
            xg = proj[:, t, :]
            r = _stable_sigmoid(xg[:, :hs] + gates[:, :hs])
            z = _stable_sigmoid(xg[:, hs:2 * hs] + gates[:, hs:2 * hs])
            n = np.tanh(xg[:, 2 * hs:] + r * gates[:, 2 * hs:])
            h_new = (1.0 - z) * n + z * h
            if lengths is not None and not full_steps[t]:
                m = masks[:, t:t + 1]
                h_new = m * h_new + (1.0 - m) * h
            h = h_new
        return h
    return run


@register_compiler(GRUCell)
def _compile_gru_cell(module: GRUCell, pool: BufferPool) -> Callable:
    def run(x, h):
        w_ih, w_hh = module.weight_ih.data, module.weight_hh.data
        hs = module.hidden_size
        if isinstance(h, Tensor):
            h = h.data
        x_gates = x @ w_ih + module.bias_ih.data
        gates_h = h @ w_hh + module.bias_hh.data
        r = _stable_sigmoid(x_gates[:, :hs] + gates_h[:, :hs])
        z = _stable_sigmoid(x_gates[:, hs:2 * hs] + gates_h[:, hs:2 * hs])
        n = np.tanh(x_gates[:, 2 * hs:] + r * gates_h[:, 2 * hs:])
        return (1.0 - z) * n + z * h
    return run


@register_compiler(GRU)
def _compile_gru(module: GRU, pool: BufferPool) -> Callable:
    # Serving output: the final hidden state (B, H) — not the per-step list.
    return _gru_scan(module.cell, pool, module.reverse)


@register_compiler(BiGRU)
def _compile_bigru(module: BiGRU, pool: BufferPool) -> Callable:
    forward = _gru_scan(module.forward_gru.cell, pool, reverse=False)
    backward = _gru_scan(module.backward_gru.cell, pool, reverse=True)
    step = pool.reserve()
    hs = module.hidden_size

    def run(x, lengths=None):
        h_forward = forward(x, lengths=lengths)
        h_backward = backward(x, lengths=lengths)
        out = pool.get(step, (x.shape[0], 2 * hs), h_forward.dtype)
        out[:, :hs] = h_forward
        out[:, hs:] = h_backward
        return out
    return run
