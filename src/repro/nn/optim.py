"""Optimizers: SGD, Adam, and AdamW.

The paper trains every model with AdamW (Loshchilov & Hutter 2017) at a
learning rate of 1e-4 (§5.1.4); AdamW's decoupled weight decay is implemented
exactly (decay applied to the weights directly, not folded into the gradient).

All update steps are allocation-free: each optimizer owns per-parameter
scratch buffers (same dtype as the parameter, so float32 models keep float32
state) and every arithmetic step writes into them with ufunc ``out=``.  On
the training hot loop this removes ~6 temporary arrays per parameter per
step relative to the naive expression form.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from .tensor import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "clip_grad_norm",
           "LRScheduler", "StepLR", "CosineAnnealingLR"]


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.step_count = 0

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]
        self._buf = [np.empty_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.step_count += 1
        for param, velocity, buf in zip(self.parameters, self._velocity, self._buf):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                np.multiply(param.data, self.weight_decay, out=buf)
                buf += grad
                grad = buf
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            if grad is buf:
                buf *= self.lr
            else:
                np.multiply(grad, self.lr, out=buf)
            param.data -= buf


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._buf = [np.empty_like(p.data) for p in self.parameters]
        # Second scratch for the L2-coupled gradient; allocated lazily in
        # step() so enabling decay after construction still works.
        self._gbuf: list[np.ndarray] | None = None

    def _update(self, m: np.ndarray, v: np.ndarray, grad: np.ndarray,
                buf: np.ndarray) -> np.ndarray:
        """Write the (bias-corrected) Adam step into ``buf`` and return it."""
        beta1, beta2 = self.betas
        m *= beta1
        np.multiply(grad, 1.0 - beta1, out=buf)
        m += buf
        v *= beta2
        np.multiply(grad, grad, out=buf)
        buf *= 1.0 - beta2
        v += buf
        # buf <- lr/(1-b1^t) * m / (sqrt(v/(1-b2^t)) + eps), algebraically the
        # classic lr * m_hat / (sqrt(v_hat) + eps).
        np.divide(v, 1.0 - beta2 ** self.step_count, out=buf)
        np.sqrt(buf, out=buf)
        buf += self.eps
        np.divide(m, buf, out=buf)
        buf *= self.lr / (1.0 - beta1 ** self.step_count)
        return buf

    def step(self) -> None:
        self.step_count += 1
        for index, (param, m, v, buf) in enumerate(zip(self.parameters, self._m, self._v, self._buf)):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                # Classic (L2-coupled) Adam: decay enters the gradient.
                if self._gbuf is None:
                    self._gbuf = [np.empty_like(p.data) for p in self.parameters]
                gbuf = self._gbuf[index]
                np.multiply(param.data, self.weight_decay, out=gbuf)
                gbuf += grad
                grad = gbuf
            param.data -= self._update(m, v, grad, buf)


class AdamW(Adam):
    """AdamW — Adam with *decoupled* weight decay (the paper's optimizer)."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-4,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.01):
        super().__init__(parameters, lr=lr, betas=betas, eps=eps, weight_decay=0.0)
        self.decoupled_weight_decay = weight_decay

    def step(self) -> None:
        self.step_count += 1
        # p <- p*(1 - lr*wd) - adam_step  ==  p - (adam_step + lr*wd*p).
        decay = 1.0 - self.lr * self.decoupled_weight_decay
        for param, m, v, buf in zip(self.parameters, self._m, self._v, self._buf):
            if param.grad is None:
                continue
            update = self._update(m, v, param.grad, buf)
            if self.decoupled_weight_decay:
                param.data *= decay
            param.data -= update


class LRScheduler:
    """Base learning-rate scheduler; call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.get_lr()
        return self.optimizer.lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base rate to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def get_lr(self) -> float:
        progress = min(self.epoch / self.total_epochs, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip the global L2 norm of all gradients in place; returns the norm."""
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = math.sqrt(sum(float(np.dot(g, g)) for g in (p.grad.ravel() for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total
