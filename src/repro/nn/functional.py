"""Functional neural-network operations built on :class:`repro.nn.tensor.Tensor`.

These cover everything the paper's models need: stable (masked) softmax for
the noisy top-k gate, log-softmax/cross-entropy for the query classifier,
dropout, and axis-wise gathers used to pick top-K expert weights per example.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor, is_grad_enabled

__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "masked_softmax",
    "dropout",
    "take_along_axis",
    "scatter_topk_mask",
    "one_hot",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return as_tensor(x).relu()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return as_tensor(x).tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    Implemented as a primitive with the analytic Jacobian-vector product
    ``dx = y * (g - sum(g * y, axis))`` which is both faster and more stable
    than composing exp/sum ops.  Entries equal to ``-inf`` receive probability
    exactly 0 and zero gradient, which the top-K gate relies on (eq. 6-7).
    """
    x = as_tensor(x)
    shifted = x.data - np.max(x.data, axis=axis, keepdims=True)
    # exp(-inf - max) -> exp(-inf) = 0 handled naturally; guard NaN from
    # all -inf rows by treating them as uniform-zero.
    with np.errstate(invalid="ignore"):
        exps = np.exp(shifted)
    total = exps.sum(axis=axis, keepdims=True)
    probs = np.where(total > 0, exps / np.where(total == 0, 1.0, total), 0.0)
    out = x._make_child(probs, (x,), "softmax")
    if out.requires_grad:
        def _backward():
            g = out.grad
            y = out.data
            dot = (g * y).sum(axis=axis, keepdims=True)
            x._accumulate(y * (g - dot))
        out._backward = _backward
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - np.max(x.data, axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    value = shifted - log_z
    out = x._make_child(value, (x,), "log_softmax")
    if out.requires_grad:
        def _backward():
            g = out.grad
            softmax_vals = np.exp(out.data)
            x._accumulate(g - softmax_vals * g.sum(axis=axis, keepdims=True))
        out._backward = _backward
    return out


def masked_softmax(x: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax over positions where ``mask`` is True; masked entries get 0.

    This is the paper's eq. (6)-(7): non-top-K gate logits are set to
    :math:`-\\infty` before the softmax so only the selected experts receive
    positive probability (and gradient).
    """
    x = as_tensor(x)
    mask = np.asarray(mask, dtype=bool)
    neg_inf = np.full_like(x.data, -np.inf)
    masked_data = np.where(mask, x.data, neg_inf)
    masked = x._make_child(masked_data, (x,), "mask_fill")
    if masked.requires_grad:
        mask_f = mask.astype(np.float64)
        def _backward():
            x._accumulate(masked.grad * mask_f)
        masked._backward = _backward
    return softmax(masked, axis=axis)


def dropout(x: Tensor, p: float, training: bool = True, rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout: scales kept activations by 1/(1-p) during training."""
    x = as_tensor(x)
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    return x * Tensor(mask)


def take_along_axis(x: Tensor, indices: np.ndarray, axis: int) -> Tensor:
    """Differentiable ``np.take_along_axis`` (gather along an axis).

    Used to pull out per-example top-K gate values or expert predictions.
    """
    x = as_tensor(x)
    indices = np.asarray(indices, dtype=np.int64)
    out_data = np.take_along_axis(x.data, indices, axis=axis)
    out = x._make_child(out_data, (x,), "take_along_axis")
    if out.requires_grad:
        def _backward():
            grad = np.zeros_like(x.data)
            # np.put_along_axis overwrites on duplicate indices; use explicit
            # scatter-add to stay correct when an index repeats.
            expanded = np.indices(indices.shape)
            idx = list(expanded)
            idx[axis] = indices
            np.add.at(grad, tuple(idx), out.grad)
            x._accumulate(grad)
        out._backward = _backward
    return out


def scatter_topk_mask(logits: np.ndarray, k: int) -> np.ndarray:
    """Boolean mask of the top-``k`` entries per row of a 2-D array.

    Ties are broken by index order (``argpartition`` semantics), matching the
    behaviour of a "keep the K largest gate values" rule.
    """
    logits = np.asarray(logits)
    if logits.ndim != 2:
        raise ValueError("scatter_topk_mask expects a 2-D array")
    n = logits.shape[1]
    if not 0 < k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if k == n:
        return np.ones_like(logits, dtype=bool)
    idx = np.argpartition(-logits, k - 1, axis=1)[:, :k]
    mask = np.zeros_like(logits, dtype=bool)
    np.put_along_axis(mask, idx, True, axis=1)
    return mask


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Plain numpy one-hot encoding (labels are never differentiated)."""
    indices = np.asarray(indices, dtype=np.int64)
    if indices.min(initial=0) < 0 or (indices.size and indices.max() >= num_classes):
        raise ValueError("index out of range for one_hot")
    out = np.zeros((indices.size, num_classes), dtype=np.float64)
    out[np.arange(indices.size), indices.reshape(-1)] = 1.0
    return out.reshape(*indices.shape, num_classes)
