"""Functional neural-network operations built on :class:`repro.nn.tensor.Tensor`.

These cover everything the paper's models need: stable (masked) softmax for
the noisy top-k gate, log-softmax/cross-entropy for the query classifier,
dropout, and axis-wise gathers used to pick top-K expert weights per example.

Fused fast-path kernels
-----------------------
``linear_relu``, ``softmax_cross_entropy`` and ``bce_with_logits_fused``
collapse what would be a 3-5 node autograd chain into one graph node with a
single analytic backward closure.  That removes per-node Python dispatch,
intermediate array allocations, and redundant mask/exp recomputation — the
dominant costs of the pure-numpy engine on MLP towers and losses.  Every op
here must pass :func:`repro.nn.gradcheck.check_grad` in float64 (the test
suite sweeps ``__all__``).
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, _stable_sigmoid, _unbroadcast, as_tensor, is_grad_enabled

__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "masked_softmax",
    "dropout",
    "take_along_axis",
    "scatter_topk_mask",
    "one_hot",
    "linear_relu",
    "softmax_cross_entropy",
    "bce_with_logits_fused",
]

def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return as_tensor(x).relu()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return as_tensor(x).tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    Implemented as a primitive with the analytic Jacobian-vector product
    ``dx = y * (g - sum(g * y, axis))`` which is both faster and more stable
    than composing exp/sum ops.  Entries equal to ``-inf`` receive probability
    exactly 0 and zero gradient, which the top-K gate relies on (eq. 6-7).
    """
    x = as_tensor(x)
    shifted = x.data - np.max(x.data, axis=axis, keepdims=True)
    # exp(-inf - max) -> exp(-inf) = 0 handled naturally; guard NaN from
    # all -inf rows by treating them as uniform-zero.
    with np.errstate(invalid="ignore"):
        exps = np.exp(shifted)
    total = exps.sum(axis=axis, keepdims=True)
    probs = np.where(total > 0, exps / np.where(total == 0, 1.0, total), 0.0)
    out = x._make_child(probs, (x,), "softmax")
    if out.requires_grad:
        def _backward():
            g = out.grad
            y = out.data
            dot = (g * y).sum(axis=axis, keepdims=True)
            x._accumulate(y * (g - dot))
        out._backward = _backward
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - np.max(x.data, axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    value = shifted - log_z
    out = x._make_child(value, (x,), "log_softmax")
    if out.requires_grad:
        def _backward():
            g = out.grad
            softmax_vals = np.exp(out.data)
            x._accumulate(g - softmax_vals * g.sum(axis=axis, keepdims=True))
        out._backward = _backward
    return out


def masked_softmax(x: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax over positions where ``mask`` is True; masked entries get 0.

    This is the paper's eq. (6)-(7): non-top-K gate logits are set to
    :math:`-\\infty` before the softmax so only the selected experts receive
    positive probability (and gradient).
    """
    x = as_tensor(x)
    mask = np.asarray(mask, dtype=bool)
    neg_inf = np.full_like(x.data, -np.inf)
    masked_data = np.where(mask, x.data, neg_inf)
    masked = x._make_child(masked_data, (x,), "mask_fill")
    if masked.requires_grad:
        def _backward():
            x._accumulate(masked.grad * mask)
        masked._backward = _backward
    return softmax(masked, axis=axis)


def dropout(x: Tensor, p: float, training: bool = True, rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout: scales kept activations by 1/(1-p) during training."""
    x = as_tensor(x)
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(x.dtype) / np.asarray(1.0 - p, dtype=x.dtype)
    return x * Tensor(mask)


def take_along_axis(x: Tensor, indices: np.ndarray, axis: int) -> Tensor:
    """Differentiable ``np.take_along_axis`` (gather along an axis).

    Used to pull out per-example top-K gate values or expert predictions.
    """
    x = as_tensor(x)
    indices = np.asarray(indices, dtype=np.int64)
    out_data = np.take_along_axis(x.data, indices, axis=axis)
    out = x._make_child(out_data, (x,), "take_along_axis")
    if out.requires_grad:
        def _backward():
            grad = np.zeros_like(x.data)
            # np.put_along_axis overwrites on duplicate indices; use explicit
            # scatter-add to stay correct when an index repeats.
            expanded = np.indices(indices.shape)
            idx = list(expanded)
            idx[axis] = indices
            np.add.at(grad, tuple(idx), out.grad)
            x._accumulate(grad)
        out._backward = _backward
    return out


def linear_relu(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Fused ``relu(x @ W + b)`` — one graph node instead of three.

    The backward closure computes all input gradients from the shared
    post-activation mask: ``gh = g * (y > 0)``, then ``gx = gh Wᵀ``,
    ``gW = xᵀ gh``, ``gb = Σ gh``.  Only 2-D ``x`` (batch, features) is
    supported; callers with exotic shapes should compose the unfused ops.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    bias = as_tensor(bias) if bias is not None else None
    if x.ndim != 2 or weight.ndim != 2:
        raise ValueError("linear_relu expects 2-D x and weight")
    if x.shape[1] != weight.shape[0]:
        raise ValueError(f"linear_relu shape mismatch: x has {x.shape[1]} features, "
                         f"weight expects {weight.shape[0]}")
    h = x.data @ weight.data
    if bias is not None:
        h += bias.data
    np.maximum(h, 0.0, out=h)
    parents = (x, weight) if bias is None else (x, weight, bias)
    out = x._make_child(h, parents, "linear_relu")
    if out.requires_grad:
        def _backward():
            gh = out.grad * (out.data > 0)
            if x.requires_grad:
                x._accumulate(gh @ weight.data.T)
            if weight.requires_grad:
                weight._accumulate(x.data.T @ gh)
            if bias is not None and bias.requires_grad:
                bias._accumulate(gh.sum(axis=0))
        out._backward = _backward
    return out


def softmax_cross_entropy(logits: Tensor, targets: np.ndarray,
                          reduction: str = "mean") -> Tensor:
    """Fused log-softmax + negative log likelihood from integer targets.

    Replaces the log_softmax -> take_along_axis -> neg -> mean chain with a
    single node whose backward is the classic ``(softmax - onehot) * g``.
    """
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError("softmax_cross_entropy expects 2-D logits (batch, classes)")
    if targets.shape != (logits.shape[0],):
        raise ValueError("targets must be a 1-D array of class indices matching the batch")
    z = logits.data
    n = z.shape[0]
    shifted = z - z.max(axis=1, keepdims=True)
    exps = np.exp(shifted)
    total = exps.sum(axis=1, keepdims=True)
    rows = np.arange(n)
    nll = np.log(total[:, 0]) - shifted[rows, targets]
    if reduction == "mean":
        value = nll.mean()
    elif reduction == "sum":
        value = nll.sum()
    elif reduction == "none":
        value = nll
    else:
        raise ValueError(f"unknown reduction {reduction!r}")
    out = logits._make_child(np.asarray(value), (logits,), "softmax_xent")
    if out.requires_grad:
        probs = exps / total
        def _backward():
            if reduction == "none":
                per_row = out.grad
            elif reduction == "mean":
                per_row = np.broadcast_to(out.grad / n, (n,))
            else:
                per_row = np.broadcast_to(out.grad, (n,))
            grad = probs * per_row[:, None]
            grad[rows, targets] -= per_row
            logits._accumulate(grad)
        out._backward = _backward
    return out


def bce_with_logits_fused(logits: Tensor, targets, reduction: str = "mean") -> Tensor:
    """Fused stable binary cross entropy on raw logits.

    Forward uses ``max(x, 0) - x*y + log1p(exp(-|x|))`` (never overflows);
    backward is the closed form ``gx = g * (sigmoid(x) - y)``, ``gy = -g * x``
    — one node instead of the 8-node relu/abs/exp/log chain.
    """
    logits = as_tensor(logits)
    # Targets follow the logits dtype (the documented contract): raw arrays
    # are wrapped at that dtype, and Tensor targets — which as_tensor passes
    # through untouched — get a differentiable cast.
    targets = as_tensor(targets, dtype=logits.dtype).astype(logits.dtype)
    x = logits.data
    y = targets.data
    loss = np.maximum(x, 0.0) - x * y + np.log1p(np.exp(-np.abs(x)))
    if reduction == "mean":
        value = loss.mean()
    elif reduction == "sum":
        value = loss.sum()
    elif reduction == "none":
        value = loss
    else:
        raise ValueError(f"unknown reduction {reduction!r}")
    out = logits._make_child(np.asarray(value), (logits, targets), "bce_logits")
    if out.requires_grad:
        # Guard size 0: mean of an empty batch is nan (as the unfused path
        # produced) rather than a ZeroDivisionError at node creation.
        scale = 1.0 / loss.size if reduction == "mean" and loss.size else 1.0
        def _backward():
            g = out.grad if reduction == "none" else out.grad * scale
            if logits.requires_grad:
                gx = g * (_stable_sigmoid(x) - y)
                logits._accumulate(_unbroadcast(np.broadcast_to(gx, loss.shape), x.shape))
            if targets.requires_grad:
                gy = g * (-x)
                targets._accumulate(_unbroadcast(np.broadcast_to(gy, loss.shape), y.shape))
        out._backward = _backward
    return out


def scatter_topk_mask(logits: np.ndarray, k: int) -> np.ndarray:
    """Boolean mask of the top-``k`` entries per row of a 2-D array.

    Ties are broken by index order (``argpartition`` semantics), matching the
    behaviour of a "keep the K largest gate values" rule.
    """
    logits = np.asarray(logits)
    if logits.ndim != 2:
        raise ValueError("scatter_topk_mask expects a 2-D array")
    n = logits.shape[1]
    if not 0 < k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if k == n:
        return np.ones_like(logits, dtype=bool)
    idx = np.argpartition(-logits, k - 1, axis=1)[:, :k]
    mask = np.zeros_like(logits, dtype=bool)
    np.put_along_axis(mask, idx, True, axis=1)
    return mask


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Plain numpy one-hot encoding (labels are never differentiated)."""
    indices = np.asarray(indices, dtype=np.int64)
    if indices.min(initial=0) < 0 or (indices.size and indices.max() >= num_classes):
        raise ValueError("index out of range for one_hot")
    out = np.zeros((indices.size, num_classes), dtype=np.float64)
    out[np.arange(indices.size), indices.reshape(-1)] = 1.0
    return out.reshape(*indices.shape, num_classes)
