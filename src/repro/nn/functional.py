"""Functional neural-network operations built on :class:`repro.nn.tensor.Tensor`.

These cover everything the paper's models need: stable (masked) softmax for
the noisy top-k gate, log-softmax/cross-entropy for the query classifier,
dropout, and axis-wise gathers used to pick top-K expert weights per example.

Fused fast-path kernels
-----------------------
``linear_relu``, ``softmax_cross_entropy`` and ``bce_with_logits_fused``
collapse what would be a 3-5 node autograd chain into one graph node with a
single analytic backward closure.  That removes per-node Python dispatch,
intermediate array allocations, and redundant mask/exp recomputation — the
dominant costs of the pure-numpy engine on MLP towers and losses.  Every op
here must pass :func:`repro.nn.gradcheck.check_grad` in float64 (the test
suite sweeps ``__all__``).

Fused recurrent kernels
-----------------------
``gru_cell_fused`` is one graph node per GRU timestep: the backward closure
computes every gate gradient analytically from cached forward activations
(``r``, ``z``, ``n``, the hidden gate pre-activations), and the optional
length mask is applied *inside* the kernel instead of via four extra
mul/add nodes.  ``gru_sequence`` drives a whole (batch, time, features)
scan: the input projection ``x @ W_ih + b_ih`` is hoisted out of the time
loop into a single (B·T, 3H) matmul, sliced per step through lightweight
view nodes whose backwards write into one shared gradient buffer.  Weight
gradients accumulate across steps into the parameter's single ``.grad``
buffer (allocated once on the first step's backward).

Packed ragged scans
-------------------
``gru_sequence_packed`` removes the *wasted FLOPs* the masked scan still
pays on ragged batches: examples are sorted by length once (descending,
stable — with an early exit when the batch arrives already sorted either
way, as the querycat length-bucketed loader produces), the input
projection runs over only the valid (example, step) pairs, and each
timestep updates only the still-valid prefix of the sorted batch — the
cuDNN/PackedSequence trick.  The fused backward accumulates into the same
shared gradient buffers as the masked path, so the two are numerically
interchangeable (pinned in f64 by the parity tests).
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, _stable_sigmoid, _unbroadcast, as_tensor, is_grad_enabled

__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "masked_softmax",
    "dropout",
    "take_along_axis",
    "scatter_topk_mask",
    "one_hot",
    "linear_relu",
    "softmax_cross_entropy",
    "bce_with_logits_fused",
    "gru_cell_fused",
    "gru_sequence",
    "gru_sequence_packed",
]

def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return as_tensor(x).relu()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return as_tensor(x).tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    Implemented as a primitive with the analytic Jacobian-vector product
    ``dx = y * (g - sum(g * y, axis))`` which is both faster and more stable
    than composing exp/sum ops.  Entries equal to ``-inf`` receive probability
    exactly 0 and zero gradient, which the top-K gate relies on (eq. 6-7).
    """
    x = as_tensor(x)
    shifted = x.data - np.max(x.data, axis=axis, keepdims=True)
    # exp(-inf - max) -> exp(-inf) = 0 handled naturally; guard NaN from
    # all -inf rows by treating them as uniform-zero.
    with np.errstate(invalid="ignore"):
        exps = np.exp(shifted)
    total = exps.sum(axis=axis, keepdims=True)
    probs = np.where(total > 0, exps / np.where(total == 0, 1.0, total), 0.0)
    out = x._make_child(probs, (x,), "softmax")
    if out.requires_grad:
        def _backward():
            g = out.grad
            y = out.data
            dot = (g * y).sum(axis=axis, keepdims=True)
            x._accumulate(y * (g - dot))
        out._backward = _backward
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - np.max(x.data, axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    value = shifted - log_z
    out = x._make_child(value, (x,), "log_softmax")
    if out.requires_grad:
        def _backward():
            g = out.grad
            softmax_vals = np.exp(out.data)
            x._accumulate(g - softmax_vals * g.sum(axis=axis, keepdims=True))
        out._backward = _backward
    return out


def masked_softmax(x: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax over positions where ``mask`` is True; masked entries get 0.

    This is the paper's eq. (6)-(7): non-top-K gate logits are set to
    :math:`-\\infty` before the softmax so only the selected experts receive
    positive probability (and gradient).
    """
    x = as_tensor(x)
    mask = np.asarray(mask, dtype=bool)
    neg_inf = np.full_like(x.data, -np.inf)
    masked_data = np.where(mask, x.data, neg_inf)
    masked = x._make_child(masked_data, (x,), "mask_fill")
    if masked.requires_grad:
        def _backward():
            x._accumulate(masked.grad * mask)
        masked._backward = _backward
    return softmax(masked, axis=axis)


def dropout(x: Tensor, p: float, training: bool = True, rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout: scales kept activations by 1/(1-p) during training."""
    x = as_tensor(x)
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(x.dtype) / np.asarray(1.0 - p, dtype=x.dtype)
    return x * Tensor(mask)


def take_along_axis(x: Tensor, indices: np.ndarray, axis: int) -> Tensor:
    """Differentiable ``np.take_along_axis`` (gather along an axis).

    Used to pull out per-example top-K gate values or expert predictions.
    """
    x = as_tensor(x)
    indices = np.asarray(indices, dtype=np.int64)
    out_data = np.take_along_axis(x.data, indices, axis=axis)
    out = x._make_child(out_data, (x,), "take_along_axis")
    if out.requires_grad:
        def _backward():
            grad = np.zeros_like(x.data)
            # np.put_along_axis overwrites on duplicate indices; use explicit
            # scatter-add to stay correct when an index repeats.
            expanded = np.indices(indices.shape)
            idx = list(expanded)
            idx[axis] = indices
            np.add.at(grad, tuple(idx), out.grad)
            x._accumulate(grad)
        out._backward = _backward
    return out


def linear_relu(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Fused ``relu(x @ W + b)`` — one graph node instead of three.

    The backward closure computes all input gradients from the shared
    post-activation mask: ``gh = g * (y > 0)``, then ``gx = gh Wᵀ``,
    ``gW = xᵀ gh``, ``gb = Σ gh``.  Only 2-D ``x`` (batch, features) is
    supported; callers with exotic shapes should compose the unfused ops.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    bias = as_tensor(bias) if bias is not None else None
    if x.ndim != 2 or weight.ndim != 2:
        raise ValueError("linear_relu expects 2-D x and weight")
    if x.shape[1] != weight.shape[0]:
        raise ValueError(f"linear_relu shape mismatch: x has {x.shape[1]} features, "
                         f"weight expects {weight.shape[0]}")
    h = x.data @ weight.data
    if bias is not None:
        h += bias.data
    np.maximum(h, 0.0, out=h)
    parents = (x, weight) if bias is None else (x, weight, bias)
    out = x._make_child(h, parents, "linear_relu")
    if out.requires_grad:
        def _backward():
            gh = out.grad * (out.data > 0)
            if x.requires_grad:
                x._accumulate(gh @ weight.data.T)
            if weight.requires_grad:
                weight._accumulate(x.data.T @ gh)
            if bias is not None and bias.requires_grad:
                bias._accumulate(gh.sum(axis=0))
        out._backward = _backward
    return out


def softmax_cross_entropy(logits: Tensor, targets: np.ndarray,
                          reduction: str = "mean") -> Tensor:
    """Fused log-softmax + negative log likelihood from integer targets.

    Replaces the log_softmax -> take_along_axis -> neg -> mean chain with a
    single node whose backward is the classic ``(softmax - onehot) * g``.
    """
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError("softmax_cross_entropy expects 2-D logits (batch, classes)")
    if targets.shape != (logits.shape[0],):
        raise ValueError("targets must be a 1-D array of class indices matching the batch")
    z = logits.data
    n = z.shape[0]
    shifted = z - z.max(axis=1, keepdims=True)
    exps = np.exp(shifted)
    total = exps.sum(axis=1, keepdims=True)
    rows = np.arange(n)
    nll = np.log(total[:, 0]) - shifted[rows, targets]
    if reduction == "mean":
        value = nll.mean()
    elif reduction == "sum":
        value = nll.sum()
    elif reduction == "none":
        value = nll
    else:
        raise ValueError(f"unknown reduction {reduction!r}")
    out = logits._make_child(np.asarray(value), (logits,), "softmax_xent")
    if out.requires_grad:
        probs = exps / total
        def _backward():
            if reduction == "none":
                per_row = out.grad
            elif reduction == "mean":
                per_row = np.broadcast_to(out.grad / n, (n,))
            else:
                per_row = np.broadcast_to(out.grad, (n,))
            grad = probs * per_row[:, None]
            grad[rows, targets] -= per_row
            logits._accumulate(grad)
        out._backward = _backward
    return out


def bce_with_logits_fused(logits: Tensor, targets, reduction: str = "mean") -> Tensor:
    """Fused stable binary cross entropy on raw logits.

    Forward uses ``max(x, 0) - x*y + log1p(exp(-|x|))`` (never overflows);
    backward is the closed form ``gx = g * (sigmoid(x) - y)``, ``gy = -g * x``
    — one node instead of the 8-node relu/abs/exp/log chain.
    """
    logits = as_tensor(logits)
    # Targets follow the logits dtype (the documented contract): raw arrays
    # are wrapped at that dtype, and Tensor targets — which as_tensor passes
    # through untouched — get a differentiable cast.
    targets = as_tensor(targets, dtype=logits.dtype).astype(logits.dtype)
    x = logits.data
    y = targets.data
    loss = np.maximum(x, 0.0) - x * y + np.log1p(np.exp(-np.abs(x)))
    if reduction == "mean":
        value = loss.mean()
    elif reduction == "sum":
        value = loss.sum()
    elif reduction == "none":
        value = loss
    else:
        raise ValueError(f"unknown reduction {reduction!r}")
    out = logits._make_child(np.asarray(value), (logits, targets), "bce_logits")
    if out.requires_grad:
        # Guard size 0: mean of an empty batch is nan (as the unfused path
        # produced) rather than a ZeroDivisionError at node creation.
        scale = 1.0 / loss.size if reduction == "mean" and loss.size else 1.0
        def _backward():
            g = out.grad if reduction == "none" else out.grad * scale
            if logits.requires_grad:
                gx = g * (_stable_sigmoid(x) - y)
                logits._accumulate(_unbroadcast(np.broadcast_to(gx, loss.shape), x.shape))
            if targets.requires_grad:
                gy = g * (-x)
                targets._accumulate(_unbroadcast(np.broadcast_to(gy, loss.shape), y.shape))
        out._backward = _backward
    return out


def gru_cell_fused(x_gates: Tensor, h: Tensor, weight_hh: Tensor,
                   bias_hh: Tensor, mask: np.ndarray | None = None) -> Tensor:
    """Fused GRU step (Cho et al. 2014) — one graph node per timestep.

    Parameters
    ----------
    x_gates:
        Precomputed input projection ``x @ W_ih + b_ih`` of shape (B, 3H),
        gate columns ordered ``[r | z | n]``.  Hoisting this matmul out of
        the kernel lets :func:`gru_sequence` batch it over all timesteps.
    h:
        Previous hidden state, shape (B, H).
    weight_hh, bias_hh:
        Recurrent weights (H, 3H) and bias (3H,).
    mask:
        Optional plain-numpy (B, 1) float mask.  Rows with mask 0 keep
        their previous state (``h' = m*h_new + (1-m)*h``) — the masked
        update runs *inside* the kernel, replacing the per-op path's four
        extra mul/add graph nodes per step.  Not differentiated.

    Replaces the ~10-node per-op chain (two matmuls, three slices, two
    sigmoids, tanh, and the convex state blend) with a single node whose
    backward computes all gate gradients analytically from the cached
    forward activations ``r``, ``z``, ``n`` and the hidden gate
    pre-activations.
    """
    x_gates = as_tensor(x_gates)
    h = as_tensor(h)
    weight_hh = as_tensor(weight_hh)
    bias_hh = as_tensor(bias_hh)
    if x_gates.ndim != 2 or h.ndim != 2:
        raise ValueError("gru_cell_fused expects 2-D x_gates and h")
    hs = h.shape[1]
    if x_gates.shape != (h.shape[0], 3 * hs) or weight_hh.shape != (hs, 3 * hs):
        raise ValueError(
            f"gru_cell_fused shape mismatch: h {h.shape}, x_gates {x_gates.shape}, "
            f"weight_hh {weight_hh.shape}")
    if mask is not None:
        mask = np.asarray(mask)
        if mask.shape != (h.shape[0], 1):
            raise ValueError(f"mask must have shape ({h.shape[0]}, 1), got {mask.shape}")
        if mask.dtype != h.dtype:
            mask = mask.astype(h.dtype)

    gates_h = h.data @ weight_hh.data + bias_hh.data
    r = _stable_sigmoid(x_gates.data[:, :hs] + gates_h[:, :hs])
    z = _stable_sigmoid(x_gates.data[:, hs:2 * hs] + gates_h[:, hs:2 * hs])
    hn = gates_h[:, 2 * hs:]
    n = np.tanh(x_gates.data[:, 2 * hs:] + r * hn)
    h_new = (1.0 - z) * n + z * h.data
    if mask is not None:
        h_new = mask * h_new + (1.0 - mask) * h.data

    out = h._make_child(h_new, (x_gates, h, weight_hh, bias_hh), "gru_cell")
    if out.requires_grad:
        h_prev = h.data
        def _backward():
            g = out.grad if mask is None else out.grad * mask
            dn = g * (1.0 - z)
            dz = g * (h_prev - n)
            dn_pre = dn * (1.0 - n * n)
            dz_pre = dz * (z * (1.0 - z))
            dr = dn_pre * hn
            dr_pre = dr * (r * (1.0 - r))
            # Gate-preactivation gradients, columns [r | z | n]: the input
            # and hidden branches share dr_pre/dz_pre, but the n column
            # differs (the reset gate multiplies only the hidden branch).
            d_gates_h = np.concatenate([dr_pre, dz_pre, dn_pre * r], axis=1)
            if x_gates.requires_grad:
                x_gates._accumulate(np.concatenate([dr_pre, dz_pre, dn_pre], axis=1))
            if weight_hh.requires_grad:
                weight_hh._accumulate(h_prev.T @ d_gates_h)
            if bias_hh.requires_grad:
                bias_hh._accumulate(d_gates_h.sum(axis=0))
            if h.requires_grad:
                dh = d_gates_h @ weight_hh.data.T
                dh += g * z
                if mask is not None:
                    dh += out.grad * (1.0 - mask)
                h._accumulate(dh)
        out._backward = _backward
    return out


def _time_slice(x_proj: Tensor, t: int) -> Tensor:
    """Internal: slice timestep ``t`` from a (B, T, C) tensor.

    Unlike ``Tensor.__getitem__`` (whose backward allocates a full-size
    zeros array and ``np.add.at``s into it — O(B·T·C) per step), this
    node's backward writes directly into the parent's shared gradient
    buffer at O(B·C) per step.
    """
    out = x_proj._make_child(x_proj.data[:, t, :], (x_proj,), "time_slice")
    if out.requires_grad:
        def _backward():
            if x_proj.grad is None:
                x_proj.grad = np.zeros_like(x_proj.data)
            x_proj.grad[:, t, :] += out.grad
        out._backward = _backward
    return out


def gru_sequence(x: Tensor, weight_ih: Tensor, weight_hh: Tensor,
                 bias_ih: Tensor, bias_hh: Tensor, h0: Tensor | None = None,
                 lengths: np.ndarray | None = None, reverse: bool = False
                 ) -> tuple[list[Tensor], Tensor]:
    """Fused GRU scan over a (batch, time, features) sequence.

    The input projection for *every* timestep is computed as one
    (B·T, 3H) matmul before the time loop; each step then runs a single
    :func:`gru_cell_fused` node on a cheap per-step view.  With ``lengths``
    the validity mask is precomputed for all steps and applied in-kernel
    (steps where every example is valid skip the mask entirely).

    Returns ``(outputs, final_state)`` in original time order, matching
    :meth:`repro.nn.GRU.forward`.
    """
    x = as_tensor(x)
    weight_ih = as_tensor(weight_ih)
    weight_hh = as_tensor(weight_hh)
    bias_ih = as_tensor(bias_ih)
    bias_hh = as_tensor(bias_hh)
    if x.ndim != 3:
        raise ValueError("gru_sequence expects (batch, time, features) input")
    batch, time, features = x.shape
    hs = weight_hh.shape[0]
    if weight_ih.shape != (features, 3 * hs):
        raise ValueError(f"weight_ih shape {weight_ih.shape} does not match "
                         f"input features {features} / hidden size {hs}")

    # Hoisted input projection: one matmul for the whole sequence.
    x_proj = (x.reshape(batch * time, features) @ weight_ih + bias_ih) \
        .reshape(batch, time, 3 * hs)

    if lengths is not None:
        valid = np.asarray(lengths).reshape(-1, 1) > np.arange(time)[None, :]
        masks = valid.astype(x_proj.dtype)          # (B, T), plain numpy
        full_steps = valid.all(axis=0)              # steps needing no mask
    h = h0 if h0 is not None else Tensor(np.zeros((batch, hs), dtype=x_proj.dtype))
    steps = range(time - 1, -1, -1) if reverse else range(time)
    outputs: list[Tensor] = [None] * time  # type: ignore[list-item]
    for t in steps:
        mask = None
        if lengths is not None and not full_steps[t]:
            mask = masks[:, t:t + 1]
        h = gru_cell_fused(_time_slice(x_proj, t), h, weight_hh, bias_hh, mask=mask)
        outputs[t] = h
    return outputs, h


# Introspection counters for the packed scan (read by the regression tests
# and the benchmark harness; not part of the functional API).  ``presorted``
# counts calls that skipped the argsort because the batch arrived sorted by
# length in either direction — the querycat length-bucketed loader produces
# ascending batches, which must hit this fast path.
packed_scan_counters = {"calls": 0, "argsort": 0, "presorted": 0}


def reset_packed_scan_counters() -> None:
    for key in packed_scan_counters:
        packed_scan_counters[key] = 0


def _packed_order(lengths: np.ndarray) -> np.ndarray | None:
    """Row order making ``lengths`` non-increasing; ``None`` for identity.

    Early-exits on already-sorted input: a non-increasing batch needs no
    reorder at all, and a non-decreasing one (length-bucketed loaders sort
    ascending) just reverses — neither pays the O(B log B) argsort.
    """
    packed_scan_counters["calls"] += 1
    diffs = np.diff(lengths)
    if not (diffs > 0).any():               # already non-increasing
        packed_scan_counters["presorted"] += 1
        return None
    if not (diffs < 0).any():               # non-decreasing: reverse it
        packed_scan_counters["presorted"] += 1
        return np.arange(lengths.shape[0] - 1, -1, -1, dtype=np.int64)
    packed_scan_counters["argsort"] += 1
    # Stable descending sort: ties keep their original relative order, so
    # the packing is deterministic for a given batch.
    return np.argsort(-lengths, kind="stable")


def _permute_rows(x: Tensor, index: np.ndarray, inverse: np.ndarray,
                  op: str = "permute_rows") -> Tensor:
    """Row permutation ``out[j] = x[index[j]]`` with O(B) backward.

    ``inverse`` must be the inverse permutation of ``index`` — the backward
    is then a plain gather ``dx = g[inverse]`` instead of a scatter-add.
    """
    out = x._make_child(x.data[index], (x,), op)
    if out.requires_grad:
        def _backward():
            x._accumulate(out.grad[inverse])
        out._backward = _backward
    return out


def _pack_rows(x: Tensor, flat_index: np.ndarray, time: int) -> Tensor:
    """Gather valid (example, step) rows of a (B, T, F) tensor.

    ``flat_index`` holds *unique* flattened ``(b, t)`` positions, so the
    backward can write straight into the parent's shared gradient buffer
    with a fancy-indexed ``+=`` — no ``np.add.at`` scatter needed.
    """
    batch, _, features = x.shape
    flat = x.data.reshape(batch * time, features)
    out = x._make_child(flat[flat_index], (x,), "pack_rows")
    if out.requires_grad:
        def _backward():
            if x.grad is None:
                x.grad = np.zeros_like(x.data)
            grad_flat = x.grad.reshape(batch * time, features)
            grad_flat[flat_index] += out.grad
        out._backward = _backward
    return out


def _row_slice(packed: Tensor, start: int, stop: int) -> Tensor:
    """Slice rows [start, stop) of a packed (total, C) tensor.

    Like :func:`_time_slice`, the backward writes into the parent's shared
    gradient buffer at O(rows·C) instead of allocating a full-size scatter
    target per step.
    """
    out = packed._make_child(packed.data[start:stop], (packed,), "row_slice")
    if out.requires_grad:
        def _backward():
            if packed.grad is None:
                packed.grad = np.zeros_like(packed.data)
            packed.grad[start:stop] += out.grad
        out._backward = _backward
    return out


def _gru_cell_prefix(x_gates: Tensor, h: Tensor, weight_hh: Tensor,
                     bias_hh: Tensor, active: int) -> Tensor:
    """Fused GRU step over the first ``active`` rows of ``h``.

    Rows past ``active`` (examples already finished at this timestep, in
    length-sorted order) are carried through untouched — forward copies
    them, backward passes their gradient straight through.  The gate math
    and the analytic backward are exactly :func:`gru_cell_fused`, just on
    the prefix, so the per-step FLOPs shrink with the surviving batch.
    """
    hs = h.shape[1]
    h_prev = h.data
    hp = h_prev[:active]
    gates_h = hp @ weight_hh.data + bias_hh.data
    r = _stable_sigmoid(x_gates.data[:, :hs] + gates_h[:, :hs])
    z = _stable_sigmoid(x_gates.data[:, hs:2 * hs] + gates_h[:, hs:2 * hs])
    hn = gates_h[:, 2 * hs:]
    n = np.tanh(x_gates.data[:, 2 * hs:] + r * hn)
    h_new = h_prev.copy()
    h_new[:active] = (1.0 - z) * n + z * hp
    out = h._make_child(h_new, (x_gates, h, weight_hh, bias_hh), "gru_cell_prefix")
    if out.requires_grad:
        def _backward():
            g = out.grad[:active]
            dn = g * (1.0 - z)
            dz = g * (hp - n)
            dn_pre = dn * (1.0 - n * n)
            dz_pre = dz * (z * (1.0 - z))
            dr = dn_pre * hn
            dr_pre = dr * (r * (1.0 - r))
            d_gates_h = np.concatenate([dr_pre, dz_pre, dn_pre * r], axis=1)
            if x_gates.requires_grad:
                x_gates._accumulate(np.concatenate([dr_pre, dz_pre, dn_pre], axis=1))
            if weight_hh.requires_grad:
                weight_hh._accumulate(hp.T @ d_gates_h)
            if bias_hh.requires_grad:
                bias_hh._accumulate(d_gates_h.sum(axis=0))
            if h.requires_grad:
                dh = np.empty_like(out.grad)
                dh[:active] = d_gates_h @ weight_hh.data.T
                dh[:active] += g * z
                dh[active:] = out.grad[active:]
                h._accumulate(dh)
        out._backward = _backward
    return out


def gru_sequence_packed(x: Tensor, weight_ih: Tensor, weight_hh: Tensor,
                        bias_ih: Tensor, bias_hh: Tensor,
                        h0: Tensor | None = None,
                        lengths: np.ndarray | None = None,
                        reverse: bool = False) -> tuple[list[Tensor], Tensor]:
    """Packed ragged GRU scan — :func:`gru_sequence` minus the wasted FLOPs.

    Examples are sorted by length once (descending, stable; identity /
    reversal fast paths for already-sorted batches), the hoisted input
    projection runs over only the valid (example, step) rows, and each
    timestep updates only the still-valid prefix of the sorted batch.
    Outputs and the final state are unsorted back to the original row
    order, so the returned values are drop-in interchangeable with the
    masked scan (parity pinned in f64 by the equivalence tests).

    With uniform full lengths the packing degenerates to the masked path
    plus gather overhead — callers (``GRU.forward``, the compiled scan)
    only select it when lengths are actually ragged.
    """
    x = as_tensor(x)
    weight_ih = as_tensor(weight_ih)
    weight_hh = as_tensor(weight_hh)
    bias_ih = as_tensor(bias_ih)
    bias_hh = as_tensor(bias_hh)
    if x.ndim != 3:
        raise ValueError("gru_sequence_packed expects (batch, time, features) input")
    batch, time, features = x.shape
    hs = weight_hh.shape[0]
    if weight_ih.shape != (features, 3 * hs):
        raise ValueError(f"weight_ih shape {weight_ih.shape} does not match "
                         f"input features {features} / hidden size {hs}")
    if lengths is None:
        lens = np.full(batch, time, dtype=np.int64)
    else:
        lens = np.asarray(lengths, dtype=np.int64).reshape(-1)
        if lens.shape[0] != batch:
            raise ValueError(f"lengths must have one entry per example "
                             f"({batch}), got {lens.shape[0]}")
        lens = np.clip(lens, 0, time)

    order = _packed_order(lens)
    if order is None:
        sorted_lens = lens
        inverse = None
    else:
        sorted_lens = lens[order]
        inverse = np.empty(batch, dtype=np.int64)
        inverse[order] = np.arange(batch, dtype=np.int64)

    # batch_sizes[t] = number of examples still valid at step t; in sorted
    # order those are exactly the first batch_sizes[t] rows.
    batch_sizes = (sorted_lens[:, None] > np.arange(time)[None, :]).sum(axis=0)
    offsets = np.zeros(time + 1, dtype=np.int64)
    np.cumsum(batch_sizes, out=offsets[1:])
    ord_rows = order if order is not None else np.arange(batch, dtype=np.int64)
    flat_index = np.empty(int(offsets[-1]), dtype=np.int64)
    for t in range(time):
        nt = int(batch_sizes[t])
        if nt:
            flat_index[offsets[t]:offsets[t + 1]] = ord_rows[:nt] * time + t

    # Hoisted input projection over valid rows only: one (total, 3H) matmul.
    packed_x = _pack_rows(x, flat_index, time)
    x_proj = packed_x @ weight_ih + bias_ih

    h0t = as_tensor(h0) if h0 is not None \
        else Tensor(np.zeros((batch, hs), dtype=x_proj.dtype))
    h = h0t if order is None else _permute_rows(h0t, order, inverse,
                                                op="sort_rows")

    steps = range(time - 1, -1, -1) if reverse else range(time)
    outputs: list[Tensor] = [None] * time  # type: ignore[list-item]
    # Steps with no surviving example (possible at the start of a reverse
    # scan when every length < time) emit the untouched initial state.
    unsorted = h0t
    for t in steps:
        nt = int(batch_sizes[t])
        if nt:
            x_gates = _row_slice(x_proj, int(offsets[t]), int(offsets[t + 1]))
            if nt == batch:
                h = gru_cell_fused(x_gates, h, weight_hh, bias_hh)
            else:
                h = _gru_cell_prefix(x_gates, h, weight_hh, bias_hh, nt)
            unsorted = h if order is None else \
                _permute_rows(h, inverse, order, op="unsort_rows")
        outputs[t] = unsorted
    return outputs, unsorted


def scatter_topk_mask(logits: np.ndarray, k: int) -> np.ndarray:
    """Boolean mask of the top-``k`` entries per row of a 2-D array.

    Ties are broken by index order (``argpartition`` semantics), matching the
    behaviour of a "keep the K largest gate values" rule.
    """
    logits = np.asarray(logits)
    if logits.ndim != 2:
        raise ValueError("scatter_topk_mask expects a 2-D array")
    n = logits.shape[1]
    if not 0 < k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if k == n:
        return np.ones_like(logits, dtype=bool)
    idx = np.argpartition(-logits, k - 1, axis=1)[:, :k]
    mask = np.zeros_like(logits, dtype=bool)
    np.put_along_axis(mask, idx, True, axis=1)
    return mask


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Plain numpy one-hot encoding (labels are never differentiated)."""
    indices = np.asarray(indices, dtype=np.int64)
    if indices.min(initial=0) < 0 or (indices.size and indices.max() >= num_classes):
        raise ValueError("index out of range for one_hot")
    out = np.zeros((indices.size, num_classes), dtype=np.float64)
    out[np.arange(indices.size), indices.reshape(-1)] = 1.0
    return out.reshape(*indices.shape, num_classes)
