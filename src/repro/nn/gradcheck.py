"""Finite-difference gradient checking for the autograd substrate.

This is the verification half of the fast-path work: every differentiable
op (including the fused kernels in :mod:`repro.nn.functional`) and every
module can be checked against central finite differences.  All checks run
in float64 regardless of the process default dtype — ``set_default_dtype``
may put the hot paths in float32, but correctness is always adjudicated at
full precision.

Entry points
------------
* :func:`numeric_grad` — raw central-difference gradient of ``sum(fn(x))``.
* :func:`check_grad` — per-op check; raises :class:`GradcheckError` on
  mismatch (the test suite's workhorse).
* :func:`gradcheck` — boolean variant of :func:`check_grad`.
* :func:`gradcheck_module` — per-module check: perturbs every parameter of
  a module and compares ``d loss / d param`` against finite differences.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .tensor import Tensor, default_dtype, no_grad

__all__ = ["GradcheckError", "numeric_grad", "check_grad", "gradcheck",
           "gradcheck_module", "EPS", "TOL", "RTOL"]

EPS = 1e-6
TOL = 1e-7
RTOL = 1e-5


class GradcheckError(AssertionError):
    """Raised when an analytic gradient disagrees with finite differences."""


def numeric_grad(fn: Callable[[Tensor], Tensor], x, eps: float = EPS) -> np.ndarray:
    """Central finite differences of ``sum(fn(x))`` wrt ``x`` (float64)."""
    # Defensive C-contiguous copy: the +/-eps sweep writes through a flat
    # view, which requires contiguity, and must never mutate the caller's
    # array.
    x = np.array(x, dtype=np.float64, order="C")
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    with default_dtype(np.float64), no_grad():
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            plus = float(fn(Tensor(x)).data.sum())
            flat[i] = orig - eps
            minus = float(fn(Tensor(x)).data.sum())
            flat[i] = orig
            gflat[i] = (plus - minus) / (2 * eps)
    return grad


def analytic_grad(fn: Callable[[Tensor], Tensor], x) -> np.ndarray:
    """Backprop gradient of ``sum(fn(x))`` wrt ``x``, forced to float64."""
    with default_dtype(np.float64):
        t = Tensor(np.array(x, dtype=np.float64, order="C"), requires_grad=True)
        fn(t).sum().backward()
    if t.grad is None:
        raise GradcheckError("fn(x) did not propagate any gradient back to x")
    return t.grad


def check_grad(fn: Callable[[Tensor], Tensor], x, eps: float = EPS,
               tol: float = TOL, rtol: float = RTOL) -> None:
    """Assert that backprop through ``fn`` matches finite differences.

    ``fn`` must map a Tensor to a Tensor and be deterministic (pass a freshly
    seeded rng on every call for stochastic ops like dropout).
    """
    x = np.asarray(x, dtype=np.float64)
    actual = analytic_grad(fn, x)
    expected = numeric_grad(fn, x, eps=eps)
    try:
        np.testing.assert_allclose(actual, expected, atol=tol, rtol=rtol)
    except AssertionError as exc:
        raise GradcheckError(f"analytic gradient disagrees with finite differences:\n{exc}") from None


def gradcheck(fn: Callable[[Tensor], Tensor], x, eps: float = EPS,
              tol: float = TOL, rtol: float = RTOL) -> bool:
    """Boolean variant of :func:`check_grad` for programmatic use."""
    try:
        check_grad(fn, x, eps=eps, tol=tol, rtol=rtol)
    except GradcheckError:
        return False
    return True


def gradcheck_module(module, x, loss_fn: Callable[[Tensor], Tensor] | None = None,
                     eps: float = EPS, tol: float = 1e-6, rtol: float = RTOL,
                     max_entries_per_param: int | None = None,
                     rng: np.random.Generator | None = None) -> None:
    """Check every parameter gradient of ``module`` by finite differences.

    The module is cast to float64 in place and switched to eval mode for the
    duration of the check (training-mode stochasticity — dropout masks, gate
    noise — would make finite differences meaningless).  ``loss_fn`` maps the
    module output to the checked scalar (default: ``out.sum()``).  For large
    modules ``max_entries_per_param`` bounds the cost by sampling that many
    coordinates per parameter.  Parameter gradients are clobbered by the
    check and cleared on exit — re-run backward before stepping an optimizer.
    """
    if loss_fn is None:
        loss_fn = lambda out: out.sum()
    original_dtypes = [param.data.dtype for param in module.parameters()]
    module.astype(np.float64)
    was_training = getattr(module, "training", False)
    module.eval()
    try:
        with default_dtype(np.float64):
            module.zero_grad()
            loss_fn(module(x)).backward()
            for name, param in module.named_parameters():
                if not param.requires_grad:
                    # Frozen parameters still shape the forward pass, so their
                    # finite difference is nonzero by design — nothing to check.
                    continue
                analytic = param.grad if param.grad is not None else np.zeros_like(param.data)
                flat = param.data.ravel()
                if max_entries_per_param is not None and flat.size > max_entries_per_param:
                    picker = rng if rng is not None else np.random.default_rng(0)
                    indices = picker.choice(flat.size, size=max_entries_per_param, replace=False)
                else:
                    indices = np.arange(flat.size)
                with no_grad():
                    for i in indices:
                        orig = flat[i]
                        flat[i] = orig + eps
                        plus = float(loss_fn(module(x)).data.sum())
                        flat[i] = orig - eps
                        minus = float(loss_fn(module(x)).data.sum())
                        flat[i] = orig
                        expected = (plus - minus) / (2 * eps)
                        actual = float(analytic.ravel()[i])
                        if abs(actual - expected) > tol + rtol * abs(expected):
                            raise GradcheckError(
                                f"parameter {name!r} entry {i}: analytic {actual:.3e} "
                                f"vs finite-difference {expected:.3e}")
    finally:
        module.train(was_training)
        for param, original in zip(module.parameters(), original_dtypes):
            param.data = param.data.astype(original, copy=False)
        # Clear the check's own gradients so a later optimizer.step() cannot
        # apply them as a real training update.
        module.zero_grad()
