"""Recurrent layers: GRU cell, unidirectional GRU, and bidirectional GRU.

The paper's query→category classifier (§4.1) is "a bidirectional GRU model
... with a softmax output layer"; :class:`BiGRU` plus a Linear head in
:mod:`repro.querycat.classifier` reproduces it.

Fast path
---------
By default every module here runs on the fused recurrent kernels
(:func:`repro.nn.functional.gru_cell_fused` / ``gru_sequence``): one graph
node per timestep, the per-sequence input projection hoisted into a single
(B·T, 3H) matmul, and length masking applied inside the kernel.  Passing
``fused=False`` (or flipping ``cell.fused``) selects the original per-op
graph — ~10 autograd nodes per step — kept as the reference implementation
for gradcheck parity tests.  Both paths follow the module's parameter dtype
end to end: initial states and length masks are created at that dtype, so
``nn.set_default_dtype(np.float32)`` training runs never silently upcast.

On top of the fused path, ``packed=True`` (the default) routes ragged
batches through :func:`repro.nn.functional.gru_sequence_packed`: examples
are sorted by length once and each timestep computes only the still-valid
prefix, so padded positions cost nothing instead of being computed and
masked away.  The masked fused scan remains the reference the packed lane
is pinned against (and still serves uniform-length batches, where packing
has nothing to skip).
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module
from .tensor import Parameter, Tensor, as_tensor, concatenate

__all__ = ["GRUCell", "GRU", "BiGRU"]


class GRUCell(Module):
    """Single gated recurrent unit step (Cho et al. 2014).

    Update equations::

        r = sigmoid(x W_r + h U_r + b_r)
        z = sigmoid(x W_z + h U_z + b_z)
        n = tanh(x W_n + r * (h U_n) + b_n)
        h' = (1 - z) * n + z * h

    With ``fused=True`` (default) the whole step is one
    :func:`~repro.nn.functional.gru_cell_fused` graph node; otherwise it is
    composed from per-op autograd nodes (the reference path).
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None,
                 fused: bool = True, packed: bool = True):
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("GRUCell sizes must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.fused = fused
        # Advisory for sequence drivers (GRU/BiGRU): route ragged batches
        # through the packed scan.  A single cell step has nothing to pack.
        self.packed = packed
        # Fused weights for the three gates: columns [r | z | n].
        self.weight_ih = Parameter(init.xavier_uniform((input_size, 3 * hidden_size), rng))
        self.weight_hh = Parameter(init.xavier_uniform((hidden_size, 3 * hidden_size), rng))
        self.bias_ih = Parameter(init.zeros((3 * hidden_size,)))
        self.bias_hh = Parameter(init.zeros((3 * hidden_size,)))

    @property
    def dtype(self) -> np.dtype:
        """The dtype the cell computes in (follows its parameters)."""
        return self.weight_hh.dtype

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        x = as_tensor(x)
        h = as_tensor(h)
        x_gates = x @ self.weight_ih + self.bias_ih
        if self.fused:
            return F.gru_cell_fused(x_gates, h, self.weight_hh, self.bias_hh)
        hs = self.hidden_size
        gates_h = h @ self.weight_hh + self.bias_hh
        r = (x_gates[:, 0:hs] + gates_h[:, 0:hs]).sigmoid()
        z = (x_gates[:, hs:2 * hs] + gates_h[:, hs:2 * hs]).sigmoid()
        n = (x_gates[:, 2 * hs:3 * hs] + r * gates_h[:, 2 * hs:3 * hs]).tanh()
        return (1.0 - z) * n + z * h

    def initial_state(self, batch_size: int) -> Tensor:
        """Zero hidden state for a batch, at the cell's parameter dtype."""
        return Tensor(np.zeros((batch_size, self.hidden_size), dtype=self.dtype))


class GRU(Module):
    """Unidirectional GRU over a (batch, time, features) sequence."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None,
                 reverse: bool = False, fused: bool = True, packed: bool = True):
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng=rng, fused=fused,
                            packed=packed)
        self.hidden_size = hidden_size
        self.reverse = reverse

    def forward(self, x: Tensor, lengths: np.ndarray | None = None) -> tuple[list[Tensor], Tensor]:
        """Run the GRU over time.

        Parameters
        ----------
        x:
            Input of shape (batch, time, features).
        lengths:
            Optional per-example valid lengths.  Steps past an example's
            length leave its hidden state frozen (masked update), so padded
            positions do not pollute the final state.

        Returns
        -------
        (outputs, final_state):
            ``outputs`` is a list of per-step hidden states (each
            (batch, hidden)), in the original time order; ``final_state``
            is the state after each example's last valid step.

        On the default fused path this delegates to
        :func:`repro.nn.functional.gru_sequence`, which batches the input
        projection over all timesteps and masks in-kernel — or, when the
        batch is ragged and ``cell.packed`` is set (the default), to
        :func:`repro.nn.functional.gru_sequence_packed`, which skips the
        padded positions' FLOPs entirely.  With ``cell.fused=False`` it
        runs the original per-op time loop.
        """
        x = as_tensor(x)
        if x.ndim != 3:
            raise ValueError("GRU expects (batch, time, features) input")
        cell = self.cell
        if cell.fused:
            if cell.packed and lengths is not None:
                lens = np.asarray(lengths)
                # Packing only wins when there are padded positions to
                # skip; a full uniform batch would pay the gather/unsort
                # overhead for nothing.
                if lens.size and lens.min() < x.shape[1]:
                    return F.gru_sequence_packed(
                        x, cell.weight_ih, cell.weight_hh,
                        cell.bias_ih, cell.bias_hh,
                        lengths=lens, reverse=self.reverse)
            return F.gru_sequence(x, cell.weight_ih, cell.weight_hh,
                                  cell.bias_ih, cell.bias_hh,
                                  lengths=lengths, reverse=self.reverse)
        batch, time, _ = x.shape
        h = cell.initial_state(batch)
        steps = range(time - 1, -1, -1) if self.reverse else range(time)
        outputs: list[Tensor | None] = [None] * time
        for t in steps:
            h_new = cell(x[:, t, :], h)
            if lengths is not None:
                mask = (np.asarray(lengths) > t).astype(h_new.dtype).reshape(-1, 1)
                h = h_new * Tensor(mask) + h * Tensor(1.0 - mask)
            else:
                h = h_new
            outputs[t] = h
        return outputs, h


class BiGRU(Module):
    """Bidirectional GRU; final representation concatenates both directions."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None,
                 fused: bool = True, packed: bool = True):
        super().__init__()
        self.forward_gru = GRU(input_size, hidden_size, rng=rng, reverse=False,
                               fused=fused, packed=packed)
        self.backward_gru = GRU(input_size, hidden_size, rng=rng, reverse=True,
                                fused=fused, packed=packed)
        self.hidden_size = hidden_size

    @property
    def output_size(self) -> int:
        return 2 * self.hidden_size

    def forward(self, x: Tensor, lengths: np.ndarray | None = None) -> Tensor:
        """Return the concatenated final states, shape (batch, 2*hidden).

        For the backward direction with variable lengths the "final" state is
        the state at t=0 after scanning right-to-left, which by the masked
        update corresponds to having read only the valid suffix.
        """
        _, h_forward = self.forward_gru(x, lengths=lengths)
        _, h_backward = self.backward_gru(x, lengths=lengths)
        return concatenate([h_forward, h_backward], axis=1)
