"""Core layers: Linear, Embedding, Dropout, activations, and the MLP tower.

The paper's expert towers and DNN baseline are ``512 x 256 x 1`` ReLU MLPs
(§5.1.4); :class:`MLP` builds exactly that shape from a list of hidden sizes.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module
from .tensor import Parameter, Tensor, as_tensor

__all__ = ["Linear", "Embedding", "Dropout", "ReLU", "Sigmoid", "Tanh", "MLP",
           "check_embedding_ids"]


def check_embedding_ids(ids, num_embeddings: int,
                        context: str = "embedding") -> np.ndarray:
    """Validate and coerce embedding ids to int64.

    The single id contract for every lookup path — the Tensor forward, the
    compiled plan, and the serving-side raw-array gather — so a policy
    change (e.g. an OOV bucket) lands in exactly one place.  Negative ids
    must fail loudly: numpy fancy indexing would silently wrap them.
    """
    ids = np.asarray(ids, dtype=np.int64)
    if ids.size and (ids.min() < 0 or ids.max() >= num_embeddings):
        raise IndexError(
            f"{context} index out of range [0, {num_embeddings}) "
            f"(got min={ids.min()}, max={ids.max()})")
    return ids


class Linear(Module):
    """Affine transform ``y = x W + b`` with He initialization."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear features must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.he_normal((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        if x.shape[-1] != self.in_features:
            raise ValueError(f"Linear expected last dim {self.in_features}, got {x.shape[-1]}")
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    The paper uses embedding dimension 16 for every sparse feature (§5.1.4).
    """

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator | None = None, std: float = 0.05):
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("Embedding sizes must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), rng, std=std))

    def forward(self, indices) -> Tensor:
        indices = check_embedding_ids(indices, self.num_embeddings)
        return self.weight.take_rows(indices)

    def __repr__(self) -> str:
        return f"Embedding(num={self.num_embeddings}, dim={self.embedding_dim})"


class Dropout(Module):
    """Inverted dropout layer; inert in eval mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout p must be in [0, 1)")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class ReLU(Module):
    """ReLU activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Sigmoid(Module):
    """Sigmoid activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Tanh(Module):
    """Tanh activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class MLP(Module):
    """Multi-layer perceptron with ReLU hidden activations.

    ``MLP(n, [512, 256], 1)`` reproduces the paper's expert tower / DNN
    structure.  The output layer is linear (logits); sigmoid is applied by
    the loss or by the ensemble combination, matching eq. (12)-(13).
    """

    def __init__(self, in_features: int, hidden_sizes: list[int], out_features: int = 1,
                 dropout: float = 0.0, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.hidden_sizes = list(hidden_sizes)
        self.layers = []
        sizes = [in_features] + self.hidden_sizes + [out_features]
        items = []
        for index, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            items.append(Linear(fan_in, fan_out, rng=rng))
            is_last = index == len(sizes) - 2
            if not is_last:
                items.append(ReLU())
                if dropout > 0.0:
                    items.append(Dropout(dropout, rng=rng))
        self._items = items
        for index, module in enumerate(items):
            self.add_module(str(index), module)
        # Fast-path plan: adjacent Linear+ReLU pairs run through the fused
        # F.linear_relu kernel (one graph node instead of three).
        plan: list[tuple[str, Module]] = []
        index = 0
        while index < len(items):
            module = items[index]
            if isinstance(module, Linear) and index + 1 < len(items) \
                    and isinstance(items[index + 1], ReLU):
                plan.append(("linear_relu", module))
                index += 2
            else:
                plan.append(("module", module))
                index += 1
        self._plan = plan

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        for kind, module in self._plan:
            if kind == "linear_relu":
                # The fused kernel only handles 2-D batches; fall back to the
                # unfused pair elsewhere (identical math either way).
                if x.ndim == 2:
                    x = F.linear_relu(x, module.weight, module.bias)
                else:
                    x = F.relu(module(x))
            else:
                x = module(x)
        return x

    def __repr__(self) -> str:
        arch = " -> ".join(str(s) for s in [self.in_features, *self.hidden_sizes, self.out_features])
        return f"MLP({arch})"
