"""Training loop for ranking models.

Implements the paper's setup (§5.1.4): AdamW optimizer, lr 1e-4 default,
minibatch SGD over the log, with per-epoch evaluation of session AUC and
NDCG on a held-out set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..data.dataset import LTRDataset
from ..metrics import session_auc, session_ndcg
from ..models.base import RankingModel

__all__ = ["TrainConfig", "EpochRecord", "TrainResult", "Trainer", "evaluate"]


@dataclass
class TrainConfig:
    """Hyper-parameters of one training run."""

    epochs: int = 3
    batch_size: int = 256
    learning_rate: float = 1e-3
    weight_decay: float = 1e-4
    optimizer: str = "adamw"          # "adamw" | "adam" | "sgd"
    grad_clip: float | None = 5.0
    seed: int = 0
    eval_every_epoch: bool = True
    ndcg_k: int = 10
    verbose: bool = False
    # Stop when eval AUC has not improved for this many epochs and restore
    # the best-epoch weights.  None disables early stopping.
    early_stop_patience: int | None = None
    # Optional per-epoch LR schedule: None | "step" | "cosine".
    lr_schedule: str | None = None
    lr_step_size: int = 2
    lr_gamma: float = 0.5

    def __post_init__(self):
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.optimizer not in ("adamw", "adam", "sgd"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}")
        if self.lr_schedule not in (None, "step", "cosine"):
            raise ValueError(f"unknown lr_schedule {self.lr_schedule!r}")
        if self.early_stop_patience is not None and self.early_stop_patience <= 0:
            raise ValueError("early_stop_patience must be positive")


@dataclass
class EpochRecord:
    """Metrics recorded after one epoch."""

    epoch: int
    train_loss: float
    eval_auc: float | None = None
    eval_ndcg: float | None = None
    eval_ndcg_at_k: float | None = None
    seconds: float = 0.0
    diagnostics: dict[str, float] = field(default_factory=dict)


@dataclass
class TrainResult:
    """Outcome of a full training run."""

    history: list[EpochRecord]
    final_auc: float | None
    final_ndcg: float | None
    final_ndcg_at_k: float | None
    total_seconds: float

    @property
    def best_auc(self) -> float | None:
        aucs = [r.eval_auc for r in self.history if r.eval_auc is not None]
        return max(aucs) if aucs else None


def evaluate(model: RankingModel, dataset: LTRDataset, ndcg_k: int = 10,
             batch_size: int = 8192) -> dict[str, float]:
    """Session AUC / NDCG / NDCG@k of a model on a dataset.

    Scoring rides the compiled graph-free fast lane
    (:meth:`~repro.models.base.RankingModel.score`), which matches the
    Tensor path to float rounding.
    """
    scores = predict_dataset(model, dataset, batch_size=batch_size)
    return {
        "auc": session_auc(scores, dataset.labels, dataset.session_ids),
        "ndcg": session_ndcg(scores, dataset.labels, dataset.session_ids),
        f"ndcg@{ndcg_k}": session_ndcg(scores, dataset.labels, dataset.session_ids, k=ndcg_k),
    }


def predict_dataset(model: RankingModel, dataset: LTRDataset,
                    batch_size: int = 8192) -> np.ndarray:
    """Model scores over the full dataset, batched to bound memory.

    Uses the model's compiled ``score`` (every :class:`RankingModel` has
    one; the base ``_build_scorer`` fallback is the Tensor path).
    """
    chunks = []
    for start in range(0, len(dataset), batch_size):
        indices = np.arange(start, min(start + batch_size, len(dataset)))
        # Copy: a custom scorer may return plan-owned scratch that the next
        # chunk's call overwrites (scores are 1-D, so this is cheap).
        chunks.append(np.array(model.score(dataset.batch(indices))))
    return np.concatenate(chunks) if chunks else np.empty(0)


class Trainer:
    """Minibatch trainer with per-epoch evaluation."""

    def __init__(self, model: RankingModel, config: TrainConfig | None = None):
        self.model = model
        self.config = config or TrainConfig()
        self.optimizer = self._build_optimizer()
        self.scheduler = self._build_scheduler()
        self._rng = np.random.default_rng(self.config.seed)

    def _build_scheduler(self) -> nn.optim.LRScheduler | None:
        if self.config.lr_schedule == "step":
            return nn.optim.StepLR(self.optimizer, self.config.lr_step_size,
                                   self.config.lr_gamma)
        if self.config.lr_schedule == "cosine":
            return nn.optim.CosineAnnealingLR(self.optimizer, self.config.epochs)
        return None

    def _build_optimizer(self) -> nn.optim.Optimizer:
        params = list(self.model.parameters())
        cfg = self.config
        if cfg.optimizer == "adamw":
            return nn.optim.AdamW(params, lr=cfg.learning_rate, weight_decay=cfg.weight_decay)
        if cfg.optimizer == "adam":
            return nn.optim.Adam(params, lr=cfg.learning_rate, weight_decay=cfg.weight_decay)
        return nn.optim.SGD(params, lr=cfg.learning_rate, momentum=0.9,
                            weight_decay=cfg.weight_decay)

    def train_epoch(self, train: LTRDataset) -> tuple[float, dict[str, float]]:
        """One pass over the training set; returns (mean loss, diagnostics).

        Hot loop: the dataset pre-shuffles one index array into contiguous
        blocks, and per-batch losses land in a preallocated numpy buffer.
        """
        self.model.train()
        batch_size = self.config.batch_size
        num_batches = train.num_batches(batch_size)
        losses = np.full(num_batches, np.nan)
        diagnostics: dict[str, list[float]] = {}
        grad_clip = self.config.grad_clip
        parameters = list(self.model.parameters())
        for index, batch in enumerate(train.iter_batches(batch_size, rng=self._rng)):
            self.optimizer.zero_grad()
            loss, info = self.model.loss(batch, rng=self._rng)
            loss.backward()
            if grad_clip is not None:
                nn.optim.clip_grad_norm(parameters, grad_clip)
            self.optimizer.step()
            losses[index] = loss.item()
            for key, value in info.items():
                diagnostics.setdefault(key, []).append(value)
        # Plain means so a NaN batch loss or diagnostic poisons its epoch
        # mean and divergence stays visible.  (Diagnostics stay list-based:
        # one float append per batch is noise next to a training step, and a
        # key may only appear for part of the epoch.)
        mean_info = {k: float(np.mean(v)) for k, v in diagnostics.items()}
        return float(np.mean(losses)), mean_info

    def _model_dtype(self) -> np.dtype | None:
        """The float dtype the model's parameters live in (None if none)."""
        for param in self.model.parameters():
            return param.data.dtype
        return None

    def fit(self, train: LTRDataset, eval_dataset: LTRDataset | None = None) -> TrainResult:
        """Train for ``config.epochs`` epochs, evaluating after each one.

        Numeric features are cast to the model's parameter dtype *once*
        here (a no-op view when they already match), so a float32 model
        never re-promotes — or re-casts — its input every minibatch.
        """
        dtype = self._model_dtype()
        if dtype is not None:
            train = train.astype(dtype)
            if eval_dataset is not None:
                eval_dataset = eval_dataset.astype(dtype)
        history: list[EpochRecord] = []
        started = time.time()
        best_auc = -np.inf
        best_state: dict[str, np.ndarray] | None = None
        epochs_since_best = 0
        patience = self.config.early_stop_patience
        for epoch in range(1, self.config.epochs + 1):
            epoch_start = time.time()
            train_loss, info = self.train_epoch(train)
            if self.scheduler is not None:
                self.scheduler.step()
            record = EpochRecord(epoch=epoch, train_loss=train_loss,
                                 seconds=time.time() - epoch_start, diagnostics=info)
            if eval_dataset is not None and self.config.eval_every_epoch:
                metrics = evaluate(self.model, eval_dataset, ndcg_k=self.config.ndcg_k)
                record.eval_auc = metrics["auc"]
                record.eval_ndcg = metrics["ndcg"]
                record.eval_ndcg_at_k = metrics[f"ndcg@{self.config.ndcg_k}"]
            history.append(record)
            if self.config.verbose:
                auc = f"{record.eval_auc:.4f}" if record.eval_auc is not None else "n/a"
                print(f"epoch {epoch}: loss={train_loss:.4f} auc={auc} "
                      f"({record.seconds:.1f}s)")
            if patience is not None and record.eval_auc is not None:
                if record.eval_auc > best_auc:
                    best_auc = record.eval_auc
                    best_state = self.model.state_dict()
                    epochs_since_best = 0
                else:
                    epochs_since_best += 1
                    if epochs_since_best >= patience:
                        break
        if best_state is not None:
            # Restore the best epoch; report its metrics as the final ones.
            self.model.load_state_dict(best_state)
            final = max(history, key=lambda r: (r.eval_auc is not None, r.eval_auc))
        else:
            final = history[-1] if history else None
        if eval_dataset is not None and final is not None and final.eval_auc is None:
            metrics = evaluate(self.model, eval_dataset, ndcg_k=self.config.ndcg_k)
            final.eval_auc = metrics["auc"]
            final.eval_ndcg = metrics["ndcg"]
            final.eval_ndcg_at_k = metrics[f"ndcg@{self.config.ndcg_k}"]
        return TrainResult(
            history=history,
            final_auc=final.eval_auc if final else None,
            final_ndcg=final.eval_ndcg if final else None,
            final_ndcg_at_k=final.eval_ndcg_at_k if final else None,
            total_seconds=time.time() - started,
        )
