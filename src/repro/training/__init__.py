"""``repro.training`` — trainer, evaluation, and grid search."""

from .grid import GridPoint, grid_search, lambda_grid
from .trainer import (EpochRecord, TrainConfig, Trainer, TrainResult, evaluate,
                      predict_dataset)

__all__ = [
    "Trainer",
    "TrainConfig",
    "TrainResult",
    "EpochRecord",
    "evaluate",
    "predict_dataset",
    "GridPoint",
    "grid_search",
    "lambda_grid",
]
