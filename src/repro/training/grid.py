"""Grid search over hyper-parameters.

The paper grid-searches λ1 and λ2 "in powers of 10" (§4.5, Table 6) and
sweeps (N, K, D) in Fig. 7; :func:`grid_search` runs any such sweep with a
model-builder callback and collects the evaluation metric per point.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

from ..data.dataset import LTRDataset
from ..models.base import RankingModel
from .trainer import TrainConfig, Trainer, evaluate

__all__ = ["GridPoint", "grid_search", "lambda_grid"]


@dataclass
class GridPoint:
    """One evaluated configuration."""

    params: dict
    auc: float
    ndcg: float
    ndcg_at_k: float


def lambda_grid(low_exp: int = -3, high_exp: int = -1) -> list[float]:
    """Powers of 10 from 10^low_exp to 10^high_exp inclusive (Table 6)."""
    if low_exp > high_exp:
        raise ValueError("low_exp must be <= high_exp")
    return [10.0 ** e for e in range(low_exp, high_exp + 1)]


def grid_search(param_grid: dict[str, list],
                build_model: Callable[[dict], RankingModel],
                train: LTRDataset, test: LTRDataset,
                train_config: TrainConfig | None = None,
                verbose: bool = False) -> list[GridPoint]:
    """Evaluate every combination in ``param_grid``.

    ``build_model`` receives one ``{name: value}`` dict per grid point and
    must return a fresh model.  Combinations that raise ``ValueError`` at
    construction (e.g. D > N - K) are skipped, mirroring the infeasible
    cells absent from the paper's Fig. 7.
    """
    train_config = train_config or TrainConfig()
    names = list(param_grid)
    results: list[GridPoint] = []
    for values in itertools.product(*(param_grid[n] for n in names)):
        params = dict(zip(names, values))
        try:
            model = build_model(params)
        except ValueError:
            continue
        trainer = Trainer(model, train_config)
        trainer.fit(train, eval_dataset=None)
        metrics = evaluate(model, test, ndcg_k=train_config.ndcg_k)
        point = GridPoint(params=params, auc=metrics["auc"], ndcg=metrics["ndcg"],
                          ndcg_at_k=metrics[f"ndcg@{train_config.ndcg_k}"])
        results.append(point)
        if verbose:
            print(f"{params} -> auc={point.auc:.4f}")
    return results
