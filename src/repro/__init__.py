"""repro — reproduction of "Adversarial Mixture Of Experts with Category
Hierarchy Soft Constraint" (Xiao et al., ICDE 2021; arXiv:2007.12349).

Top-level packages:

* :mod:`repro.nn` — pure-numpy autograd + layers/optimizers substrate.
* :mod:`repro.hierarchy` — the TC/SC category tree.
* :mod:`repro.data` — synthetic e-commerce search log generator.
* :mod:`repro.models` — DNN, MoE, MMoE, Adv-MoE, HSC-MoE, Adv & HSC-MoE.
* :mod:`repro.training` — trainer / evaluation / grid search.
* :mod:`repro.metrics` — session AUC, NDCG, FI(f), brand concentration.
* :mod:`repro.analysis` — t-SNE, gate clustering, case studies.
* :mod:`repro.querycat` — BiGRU query→category classifier (§4.1).
* :mod:`repro.experiments` — one runner per paper table/figure.
* :mod:`repro.serving` — checkpoints, model registry, micro-batched scoring.
"""

from . import (analysis, data, experiments, hierarchy, metrics, models, nn,
               querycat, serving, training, utils)

__version__ = "1.0.0"

__all__ = [
    "nn",
    "hierarchy",
    "data",
    "models",
    "training",
    "metrics",
    "analysis",
    "querycat",
    "experiments",
    "serving",
    "utils",
    "__version__",
]
