"""Latency histograms and Prometheus text exposition for the gateway.

The observability primitives behind ``GET /stats`` and ``GET /metrics``:
:class:`LatencyHistogram` is a fixed log-spaced-bucket histogram (the
Prometheus cumulative-bucket model, so one snapshot serves both the JSON
stats block and the text exposition), and the ``render_*`` helpers emit
the `text exposition format`_ a Prometheus scraper ingests.

Buckets are **fixed at construction** rather than adaptive: histogram
merging across scrapes (and across gateway restarts behind one scrape
target) only works when every sample lands in the same bucket grid.  The
default grid is log-spaced — serving latency is multiplicative (queueing
multiplies service time), so constant *relative* resolution is the right
shape: 0.5 ms doubling 16 times covers 0.5 ms .. 16 s, which brackets
everything from a cache-warm /healthz to a drain-deadline timeout.

.. _text exposition format:
   https://prometheus.io/docs/instrumenting/exposition_formats/
"""

from __future__ import annotations

import bisect
import math
import threading

__all__ = ["LatencyHistogram", "PROMETHEUS_CONTENT_TYPE",
           "log_spaced_buckets", "render_metric", "render_histogram",
           "render_enum_metric"]

# The 0.0.4 text format; version pinned so scrapers negotiate correctly.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def log_spaced_buckets(start_s: float = 0.0005, factor: float = 2.0,
                       count: int = 16) -> list[float]:
    """Geometric bucket upper bounds: ``start_s * factor**i``, seconds."""
    if start_s <= 0 or factor <= 1.0 or count <= 0:
        raise ValueError("buckets need start_s > 0, factor > 1, count > 0")
    return [start_s * factor ** i for i in range(count)]


class LatencyHistogram:
    """Thread-safe fixed-bucket latency histogram (seconds).

    Observations are assigned to the first bucket whose upper bound is
    ``>= value`` (Prometheus ``le`` semantics); values beyond the last
    bound land in the implicit ``+Inf`` overflow bucket.  ``snapshot``
    returns *cumulative* counts — each bucket includes everything below
    it — which is the shape both the Prometheus ``_bucket`` series and
    the quantile estimator want.
    """

    def __init__(self, buckets: list[float] | None = None):
        bounds = list(buckets) if buckets is not None else log_spaced_buckets()
        if sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        self._bounds: tuple[float, ...] = tuple(bounds)
        self._counts = [0] * (len(bounds) + 1)      # last = +Inf overflow
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    @property
    def bounds(self) -> tuple[float, ...]:
        """Finite bucket upper bounds, seconds (``+Inf`` is implicit)."""
        return self._bounds

    def observe(self, seconds: float) -> None:
        index = bisect.bisect_left(self._bounds, seconds)
        with self._lock:
            self._counts[index] += 1
            self._sum += seconds
            self._count += 1

    def snapshot(self) -> tuple[list[int], float, int]:
        """``(cumulative counts incl. +Inf, sum of seconds, total count)``."""
        with self._lock:
            raw = list(self._counts)
            total_sum, total = self._sum, self._count
        cumulative = []
        running = 0
        for count in raw:
            running += count
            cumulative.append(running)
        return cumulative, total_sum, total

    def quantile(self, q: float) -> float:
        """Estimate the ``q`` (0..1) quantile from the buckets, seconds.

        Linear interpolation inside the containing bucket — the same
        estimate ``histogram_quantile`` makes server-side.  Samples in
        the overflow bucket report the last finite bound (a conservative
        floor: the true value is at least that).  0.0 when empty.
        """
        cumulative, _, total = self.snapshot()
        if total == 0:
            return 0.0
        rank = q * total
        for index, running in enumerate(cumulative):
            if running >= rank:
                if index >= len(self._bounds):
                    return self._bounds[-1]
                lower = self._bounds[index - 1] if index else 0.0
                upper = self._bounds[index]
                below = cumulative[index - 1] if index else 0
                in_bucket = running - below
                fraction = (rank - below) / in_bucket if in_bucket else 1.0
                return lower + (upper - lower) * fraction
        return self._bounds[-1]


# ----------------------------------------------------------------------
# Prometheus text rendering
# ----------------------------------------------------------------------
def _escape(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"') \
                     .replace("\n", "\\n")


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return format(value, ".10g")


def render_metric(name: str, value, labels: dict | None = None) -> str:
    """One sample line: ``name{label="v",...} value``."""
    label_str = ""
    if labels:
        pairs = ",".join(f'{key}="{_escape(val)}"'
                         for key, val in sorted(labels.items()))
        label_str = "{" + pairs + "}"
    return f"{name}{label_str} {_format_value(value)}"


def render_enum_metric(name: str, current: str, states: tuple | list,
                       labels: dict | None = None) -> list[str]:
    """A state machine as Prometheus samples: one line per possible state,
    value 1 on the active state and 0 elsewhere (the `StateSet`_ pattern —
    alerting rules can match on ``name{state="open"} == 1`` without
    decoding magic numbers).

    .. _StateSet: https://prometheus.io/docs/instrumenting/writing_exporters/
    """
    lines = []
    for state in states:
        state_labels = dict(labels or {})
        state_labels["state"] = state
        lines.append(render_metric(name, state == current, state_labels))
    return lines


def render_histogram(name: str, histogram: LatencyHistogram,
                     labels: dict | None = None) -> list[str]:
    """The ``_bucket``/``_sum``/``_count`` series for one histogram."""
    cumulative, total_sum, total = histogram.snapshot()
    lines = []
    for bound, running in zip(histogram.bounds, cumulative):
        bucket_labels = dict(labels or {})
        bucket_labels["le"] = _format_value(float(bound))
        lines.append(render_metric(f"{name}_bucket", running, bucket_labels))
    inf_labels = dict(labels or {})
    inf_labels["le"] = "+Inf"
    lines.append(render_metric(f"{name}_bucket", total, inf_labels))
    lines.append(render_metric(f"{name}_sum", total_sum, labels))
    lines.append(render_metric(f"{name}_count", total, labels))
    return lines
