"""Rolling-window circuit breaker for the serving layer.

A scorer pool whose model keeps throwing is worse than a missing one: every
request still pays queueing and merge cost before failing, co-batched
innocents fail with it, and the client sees a storm of 500s instead of a
degraded-but-usable answer.  The breaker watches recent scoring outcomes
per model pool and, once the failure ratio over a rolling window crosses a
threshold, **opens**: callers stop submitting to the pool and serve a
model-free degraded fallback instead (see
:meth:`repro.serving.RankingService.rank`).  After a cooldown the breaker
goes **half-open** and lets a bounded number of probe requests through;
enough successes re-close it, any probe failure re-opens it.

State machine (the classic three states):

``closed`` ──(failure ratio ≥ threshold over ≥ min_requests)──▶ ``open``
``open``   ──(cooldown elapsed, next allow())──▶ ``half_open``
``half_open`` ──(probe_successes probes all succeed)──▶ ``closed``
``half_open`` ──(any probe fails)──▶ ``open``

Only *model* failures should be recorded: backpressure
(:class:`~repro.serving.scorer.PoolOverloaded`), expired deadlines
(:class:`~repro.serving.scorer.DeadlineExceeded`) and client-data errors
are not evidence that the model is broken — the service layer filters
them out before calling :meth:`CircuitBreaker.record_failure`.
"""

from __future__ import annotations

import collections
import threading
import time
from dataclasses import dataclass

__all__ = ["BreakerConfig", "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs for one :class:`CircuitBreaker`.

    Parameters
    ----------
    window_s:
        Rolling window the failure ratio is computed over.  Outcomes
        older than this no longer count — a model that failed an hour ago
        and has been fine since must not stay open.
    failure_threshold:
        Failure ratio in ``(0, 1]`` that opens the breaker.
    min_requests:
        Minimum outcomes in the window before the ratio is evaluated; a
        single failure on an idle pool must not open the breaker.
    cooldown_s:
        How long an open breaker refuses traffic before letting probes
        through (open → half-open).
    probe_successes:
        Consecutive successful probes required to re-close from
        half-open.  The same number bounds how many probes may be in
        flight at once, so a half-open breaker cannot flood a still-sick
        model.
    """

    window_s: float = 30.0
    failure_threshold: float = 0.5
    min_requests: int = 10
    cooldown_s: float = 5.0
    probe_successes: int = 2

    def __post_init__(self):
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if self.min_requests <= 0:
            raise ValueError("min_requests must be positive")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if self.probe_successes <= 0:
            raise ValueError("probe_successes must be positive")


class CircuitBreaker:
    """Thread-safe rolling-window breaker (see the module docstring).

    Usage pattern (what :class:`~repro.serving.RankingService` does)::

        if breaker.allow():
            try:
                result = score(...)
            except ModelError:
                breaker.record_failure()
                raise
            except BackpressureError:
                breaker.abandon()       # not evidence either way
                raise
            else:
                breaker.record_success()
        else:
            result = degraded_fallback(...)
    """

    def __init__(self, config: BreakerConfig | None = None,
                 clock=time.monotonic):
        self.config = config or BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._events: collections.deque[tuple[float, bool]] = collections.deque()
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._opens = 0                 # transitions into OPEN since start
        self._rejected = 0              # allow() == False answers

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half_open`` (cooldown-aware).

        An open breaker whose cooldown has elapsed reports (and becomes)
        ``half_open`` — the transition is lazy, applied on observation,
        so no timer thread is needed.
        """
        with self._lock:
            self._maybe_half_open(self._clock())
            return self._state

    @property
    def opens(self) -> int:
        """Transitions into the open state since construction."""
        with self._lock:
            return self._opens

    def _maybe_half_open(self, now: float) -> None:
        if self._state == OPEN \
                and now - self._opened_at >= self.config.cooldown_s:
            self._state = HALF_OPEN
            self._probes_in_flight = 0
            self._probe_successes = 0

    def _trim(self, now: float) -> None:
        cutoff = now - self.config.window_s
        while self._events and self._events[0][0] < cutoff:
            self._events.popleft()

    def _open(self, now: float) -> None:
        self._state = OPEN
        self._opened_at = now
        self._opens += 1
        self._events.clear()            # stale outcomes must not re-trip

    # ------------------------------------------------------------------
    # Decisions and outcomes
    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May this request hit the real model pool?

        ``closed``: always.  ``open``: no (the caller serves degraded).
        ``half_open``: yes for up to ``probe_successes`` concurrent
        probes, no beyond that — a recovering model gets a trickle, not
        the full backlog.
        """
        now = self._clock()
        with self._lock:
            self._maybe_half_open(now)
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN \
                    and self._probes_in_flight < self.config.probe_successes:
                self._probes_in_flight += 1
                return True
            self._rejected += 1
            return False

    def record_success(self) -> None:
        now = self._clock()
        with self._lock:
            self._maybe_half_open(now)
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.config.probe_successes:
                    self._state = CLOSED
                    self._events.clear()
                return
            if self._state == CLOSED:
                self._events.append((now, True))
                self._trim(now)

    def record_failure(self) -> None:
        now = self._clock()
        with self._lock:
            self._maybe_half_open(now)
            if self._state == HALF_OPEN:
                # The model is still sick: back to open, cooldown restarts.
                self._open(now)
                return
            if self._state == CLOSED:
                self._events.append((now, False))
                self._trim(now)
                total = len(self._events)
                failures = sum(1 for _, ok in self._events if not ok)
                if total >= self.config.min_requests \
                        and failures / total >= self.config.failure_threshold:
                    self._open(now)

    def abandon(self) -> None:
        """The allowed request resolved with no verdict on the model
        (shed, expired deadline, client-data error).  Releases a
        half-open probe slot so exempt outcomes cannot wedge the breaker
        in half-open with every probe slot consumed forever."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe view for ``/stats`` and the Prometheus exposition."""
        now = self._clock()
        with self._lock:
            self._maybe_half_open(now)
            self._trim(now)
            total = len(self._events)
            failures = sum(1 for _, ok in self._events if not ok)
            return {
                "state": self._state,
                "opens": self._opens,
                "rejected": self._rejected,
                "window_requests": total,
                "window_failures": failures,
                "failure_ratio": failures / total if total else 0.0,
            }
