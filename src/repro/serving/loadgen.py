"""Closed-loop load generator for the HTTP serving gateway.

``run_load`` drives N client threads against a gateway for a fixed
duration, each looping rank requests with randomly generated (but
schema-valid) candidates — the feature shapes come from the gateway's own
``GET /models`` spec block, so the generator needs no local dataset.  The
result is a :class:`LoadSummary` with throughput and client-observed
latency percentiles; the CLI writes it as JSON (the CI serving smoke job
uploads that file as a build artifact) and exits non-zero when any request
errored::

    python -m repro.serving.loadgen --url http://127.0.0.1:8000 \\
        --duration 5 --clients 4 --rows 8 --out latency_summary.json

``--sweep`` replaces the single run with a connection-count sweep — one
closed-loop run per count, all summaries in one JSON artifact — which is
how the selector backend's connection scaling is measured and CI-gated::

    python -m repro.serving.loadgen --url http://127.0.0.1:8000 \\
        --sweep 1,8,64,256 --duration 3 --out connection_sweep.json
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from dataclasses import asdict, dataclass

import numpy as np

from .client import ServingClient, ServingError
from .scorer import latency_percentile

__all__ = ["LoadSummary", "run_load", "run_sweep", "main"]


@dataclass
class LoadSummary:
    """One load run's aggregate results (latencies are client-observed)."""

    duration_s: float
    clients: int
    rows_per_request: int
    requests: int
    rows: int
    errors: int
    rps: float                          # successful requests per second
    rows_per_s: float
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    def to_dict(self) -> dict:
        return asdict(self)

    def format(self) -> str:
        return (f"{self.requests} requests ({self.rows} rows) in "
                f"{self.duration_s:.2f}s from {self.clients} clients — "
                f"{self.rps:,.0f} req/s, {self.rows_per_s:,.0f} rows/s, "
                f"{self.errors} errors; latency mean {self.mean_ms:.2f}ms "
                f"p50 {self.p50_ms:.2f}ms p95 {self.p95_ms:.2f}ms "
                f"p99 {self.p99_ms:.2f}ms max {self.max_ms:.2f}ms")


def _summarize(duration_s: float, clients: int, rows_per_request: int,
               latencies: list[float], errors: int) -> LoadSummary:
    samples = np.asarray(latencies, dtype=np.float64)
    requests = int(samples.size)
    return LoadSummary(
        duration_s=duration_s,
        clients=clients,
        rows_per_request=rows_per_request,
        requests=requests,
        rows=requests * rows_per_request,
        errors=errors,
        rps=requests / duration_s if duration_s > 0 else 0.0,
        rows_per_s=requests * rows_per_request / duration_s
        if duration_s > 0 else 0.0,
        mean_ms=float(samples.mean() * 1000.0) if requests else 0.0,
        p50_ms=latency_percentile(samples, 50) * 1000.0,
        p95_ms=latency_percentile(samples, 95) * 1000.0,
        p99_ms=latency_percentile(samples, 99) * 1000.0,
        max_ms=float(samples.max() * 1000.0) if requests else 0.0,
    )


def _candidate_generator(spec: dict, rows: int, rng: np.random.Generator):
    """Yield (numeric, sparse) payloads valid under the gateway's spec."""
    num_numeric = len(spec["numeric"])
    cardinalities = spec["sparse"]

    def generate():
        numeric = rng.standard_normal((rows, num_numeric))
        sparse = {name: rng.integers(0, cardinality, size=rows)
                  for name, cardinality in cardinalities.items()}
        return numeric, sparse

    return generate


def run_load(url: str, duration_s: float = 5.0, clients: int = 4,
             rows_per_request: int = 8, top_k: int = 5, seed: int = 0,
             ready_timeout_s: float = 30.0) -> LoadSummary:
    """Drive ``clients`` closed-loop rank threads against ``url``.

    Each thread waits for its previous response before sending the next
    request (closed loop), so concurrency equals ``clients``.  Connection
    failures and error responses both count as errors; latencies are
    recorded for successful requests only.
    """
    probe = ServingClient(url)
    probe.wait_ready(timeout_s=ready_timeout_s)
    spec = probe.models().get("spec")
    if spec is None:
        raise RuntimeError(f"gateway at {url} publishes no feature spec; "
                           "start it with spec= (or from a checkpoint dir)")

    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors = [0] * clients
    started = threading.Event()
    deadline_holder = [0.0]

    def worker(index: int) -> None:
        client = ServingClient(url)
        generate = _candidate_generator(spec, rows_per_request,
                                        np.random.default_rng(seed + index))
        started.wait()
        while time.monotonic() < deadline_holder[0]:
            numeric, sparse = generate()
            t0 = time.monotonic()
            try:
                client.rank(numeric, sparse, top_k=top_k)
            except (ServingError, OSError):
                errors[index] += 1
                continue
            latencies[index].append(time.monotonic() - t0)

    threads = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(clients)]
    for thread in threads:
        thread.start()
    run_started = time.monotonic()
    deadline_holder[0] = run_started + duration_s
    started.set()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - run_started
    merged = [sample for bucket in latencies for sample in bucket]
    return _summarize(elapsed, clients, rows_per_request, merged, sum(errors))


def run_sweep(url: str, client_counts: list[int], duration_s: float = 3.0,
              rows_per_request: int = 8, top_k: int = 5, seed: int = 0,
              ready_timeout_s: float = 30.0) -> list[LoadSummary]:
    """Connection-scaling sweep: one closed-loop run per client count.

    Each step reuses :func:`run_load` (fresh clients, fresh connections),
    so a step's summary is exactly what a standalone run at that
    concurrency would report.  This is the measurement behind the
    selector backend's "sustains N concurrent keep-alive connections"
    acceptance gate.
    """
    return [run_load(url, duration_s=duration_s, clients=clients,
                     rows_per_request=rows_per_request, top_k=top_k,
                     seed=seed, ready_timeout_s=ready_timeout_s)
            for clients in client_counts]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.loadgen",
        description="Closed-loop load generator for the serving gateway.")
    parser.add_argument("--url", required=True)
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--sweep", default=None,
                        help="comma-separated client counts; runs one "
                             "closed-loop load per count (--duration each) "
                             "instead of a single --clients run")
    parser.add_argument("--rows", type=int, default=8,
                        help="candidate rows per rank request")
    parser.add_argument("--top-k", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="write the JSON summary to this path")
    parser.add_argument("--allow-errors", action="store_true",
                        help="exit 0 even when some requests errored")
    args = parser.parse_args(argv)

    if args.sweep:
        try:
            counts = [int(part) for part in args.sweep.split(",") if part]
        except ValueError:
            parser.error(f"--sweep must be comma-separated integers, "
                         f"got {args.sweep!r}")
        summaries = run_sweep(args.url, counts, duration_s=args.duration,
                              rows_per_request=args.rows, top_k=args.top_k,
                              seed=args.seed)
        for summary in summaries:
            print(summary.format())
        payload = {"sweep": [summary.to_dict() for summary in summaries]}
    else:
        summaries = [run_load(args.url, duration_s=args.duration,
                              clients=args.clients,
                              rows_per_request=args.rows,
                              top_k=args.top_k, seed=args.seed)]
        print(summaries[0].format())
        payload = summaries[0].to_dict()

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"summary written to {args.out}")
    if any(summary.requests == 0 for summary in summaries):
        print("FAIL: no successful requests")
        return 1
    errors = sum(summary.errors for summary in summaries)
    if errors and not args.allow_errors:
        print(f"FAIL: {errors} error responses")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
