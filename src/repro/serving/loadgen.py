"""Closed-loop load generator for the HTTP serving gateway.

``run_load`` drives N client threads against a gateway for a fixed
duration, each looping rank requests with randomly generated (but
schema-valid) candidates — the feature shapes come from the gateway's own
``GET /models`` spec block, so the generator needs no local dataset.  The
result is a :class:`LoadSummary` with throughput and client-observed
latency percentiles; the CLI writes it as JSON (the CI serving smoke job
uploads that file as a build artifact) and exits non-zero when any request
errored::

    python -m repro.serving.loadgen --url http://127.0.0.1:8000 \\
        --duration 5 --clients 4 --rows 8 --out latency_summary.json

Errors are split by cause: ``transport_errors`` (socket-level failures —
the gateway broke its contract or vanished) versus ``error_statuses``
(structured HTTP error responses, keyed by status).  A 429 is the gateway
*working as designed* under overload, not a failure, which is what the
``--overload`` mode asserts: drive the gateway past its admission bound
and verify every request was either served or cleanly shed (client-side
429 count matches the gateway's own shed counter exactly, no transport
errors, no other statuses)::

    python -m repro.serving.loadgen --url http://127.0.0.1:8000 \\
        --overload --clients 32 --duration 5 --out overload_summary.json

``--sweep`` replaces the single run with a connection-count sweep — one
closed-loop run per count, all summaries in one JSON artifact — which is
how the selector backend's connection scaling is measured and CI-gated::

    python -m repro.serving.loadgen --url http://127.0.0.1:8000 \\
        --sweep 1,8,64,256 --duration 3 --out connection_sweep.json
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from .client import ServingClient, ServingError
from .scorer import latency_percentile

__all__ = ["LoadSummary", "run_load", "run_sweep", "main"]


@dataclass
class LoadSummary:
    """One load run's aggregate results (latencies are client-observed).

    ``errors`` is the total of ``transport_errors`` and every count in
    ``error_statuses`` — kept as a field (not a property) so the JSON
    artifact stays a flat dict and older tooling reading ``errors`` keeps
    working.  ``shed_requests`` is the 429 slice of ``error_statuses``
    (the gateway's overload self-protection answering instead of
    queueing), and ``retry_after_hint_s`` the largest ``Retry-After`` the
    gateway attached to those sheds.
    """

    duration_s: float
    clients: int
    rows_per_request: int
    requests: int
    rows: int
    errors: int
    transport_errors: int
    error_statuses: dict = field(default_factory=dict)  # status -> count
    shed_requests: int = 0
    retry_after_hint_s: float = 0.0
    rps: float = 0.0                    # successful requests per second
    rows_per_s: float = 0.0
    mean_ms: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    max_ms: float = 0.0

    def to_dict(self) -> dict:
        payload = asdict(self)
        # JSON object keys are strings; make that explicit rather than
        # relying on json.dump's silent int-key coercion.
        payload["error_statuses"] = {str(status): count for status, count
                                     in self.error_statuses.items()}
        return payload

    def format(self) -> str:
        shed = f", {self.shed_requests} shed (429)" if self.shed_requests \
            else ""
        return (f"{self.requests} requests ({self.rows} rows) in "
                f"{self.duration_s:.2f}s from {self.clients} clients — "
                f"{self.rps:,.0f} req/s, {self.rows_per_s:,.0f} rows/s, "
                f"{self.errors} errors ({self.transport_errors} transport)"
                f"{shed}; latency mean {self.mean_ms:.2f}ms "
                f"p50 {self.p50_ms:.2f}ms p95 {self.p95_ms:.2f}ms "
                f"p99 {self.p99_ms:.2f}ms max {self.max_ms:.2f}ms")


def _summarize(duration_s: float, clients: int, rows_per_request: int,
               latencies: list[float], transport_errors: int,
               error_statuses: dict, retry_after_hint_s: float) -> LoadSummary:
    samples = np.asarray(latencies, dtype=np.float64)
    requests = int(samples.size)
    return LoadSummary(
        duration_s=duration_s,
        clients=clients,
        rows_per_request=rows_per_request,
        requests=requests,
        rows=requests * rows_per_request,
        errors=transport_errors + sum(error_statuses.values()),
        transport_errors=transport_errors,
        error_statuses=dict(sorted(error_statuses.items())),
        shed_requests=error_statuses.get(429, 0),
        retry_after_hint_s=retry_after_hint_s,
        rps=requests / duration_s if duration_s > 0 else 0.0,
        rows_per_s=requests * rows_per_request / duration_s
        if duration_s > 0 else 0.0,
        mean_ms=float(samples.mean() * 1000.0) if requests else 0.0,
        p50_ms=latency_percentile(samples, 50) * 1000.0,
        p95_ms=latency_percentile(samples, 95) * 1000.0,
        p99_ms=latency_percentile(samples, 99) * 1000.0,
        max_ms=float(samples.max() * 1000.0) if requests else 0.0,
    )


def _candidate_generator(spec: dict, rows: int, rng: np.random.Generator):
    """Yield (numeric, sparse) payloads valid under the gateway's spec."""
    num_numeric = len(spec["numeric"])
    cardinalities = spec["sparse"]

    def generate():
        numeric = rng.standard_normal((rows, num_numeric))
        sparse = {name: rng.integers(0, cardinality, size=rows)
                  for name, cardinality in cardinalities.items()}
        return numeric, sparse

    return generate


def run_load(url: str, duration_s: float = 5.0, clients: int = 4,
             rows_per_request: int = 8, top_k: int = 5, seed: int = 0,
             ready_timeout_s: float = 30.0) -> LoadSummary:
    """Drive ``clients`` closed-loop rank threads against ``url``.

    Each thread waits for its previous response before sending the next
    request (closed loop), so concurrency equals ``clients``.  Socket
    failures count as ``transport_errors``; structured HTTP errors are
    tallied per status in ``error_statuses`` (a shed 429's ``Retry-After``
    is recorded, not slept on — a closed-loop generator that backed off
    would stop measuring the overload it is there to produce).  Latencies
    are recorded for successful requests only.
    """
    probe = ServingClient(url)
    probe.wait_ready(timeout_s=ready_timeout_s)
    spec = probe.models().get("spec")
    if spec is None:
        raise RuntimeError(f"gateway at {url} publishes no feature spec; "
                           "start it with spec= (or from a checkpoint dir)")

    latencies: list[list[float]] = [[] for _ in range(clients)]
    transport_errors = [0] * clients
    status_counts: list[dict] = [{} for _ in range(clients)]
    retry_hints = [0.0] * clients
    started = threading.Event()
    deadline_holder = [0.0]

    def worker(index: int) -> None:
        client = ServingClient(url)
        generate = _candidate_generator(spec, rows_per_request,
                                        np.random.default_rng(seed + index))
        started.wait()
        while time.monotonic() < deadline_holder[0]:
            numeric, sparse = generate()
            t0 = time.monotonic()
            try:
                client.rank(numeric, sparse, top_k=top_k)
            except ServingError as error:
                counts = status_counts[index]
                counts[error.status] = counts.get(error.status, 0) + 1
                if error.retry_after_s is not None:
                    retry_hints[index] = max(retry_hints[index],
                                             error.retry_after_s)
                continue
            except OSError:
                transport_errors[index] += 1
                continue
            latencies[index].append(time.monotonic() - t0)

    threads = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(clients)]
    for thread in threads:
        thread.start()
    run_started = time.monotonic()
    deadline_holder[0] = run_started + duration_s
    started.set()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - run_started
    merged = [sample for bucket in latencies for sample in bucket]
    merged_statuses: dict = {}
    for counts in status_counts:
        for status, count in counts.items():
            merged_statuses[status] = merged_statuses.get(status, 0) + count
    return _summarize(elapsed, clients, rows_per_request, merged,
                      sum(transport_errors), merged_statuses,
                      max(retry_hints))


def run_sweep(url: str, client_counts: list[int], duration_s: float = 3.0,
              rows_per_request: int = 8, top_k: int = 5, seed: int = 0,
              ready_timeout_s: float = 30.0) -> list[LoadSummary]:
    """Connection-scaling sweep: one closed-loop run per client count.

    Each step reuses :func:`run_load` (fresh clients, fresh connections),
    so a step's summary is exactly what a standalone run at that
    concurrency would report.  This is the measurement behind the
    selector backend's "sustains N concurrent keep-alive connections"
    acceptance gate.
    """
    return [run_load(url, duration_s=duration_s, clients=clients,
                     rows_per_request=rows_per_request, top_k=top_k,
                     seed=seed, ready_timeout_s=ready_timeout_s)
            for clients in client_counts]


def _gateway_shed_count(url: str, ready_timeout_s: float = 30.0) -> int:
    """The gateway's own shed counter from ``GET /stats``.

    Waits for readiness first: the before-run probe may race a gateway
    that is still booting (run_load does its own wait, but this read
    happens ahead of it).
    """
    probe = ServingClient(url)
    probe.wait_ready(timeout_s=ready_timeout_s)
    return int(probe.stats()["server"].get("shed_requests", 0))


def _check_overload(summary: LoadSummary, shed_before: int,
                    shed_after: int) -> list[str]:
    """The ``--overload`` acceptance conditions; returns failure reasons.

    Under deliberate overload the gateway must degrade *cleanly*: every
    request is either served or answered with a structured 429 — never a
    dropped connection, never a different error — and the gateway's own
    shed counter agrees exactly with what clients observed (this loadgen
    being the sole traffic source), so no shed goes unaccounted.
    """
    failures = []
    if summary.requests == 0:
        failures.append("no successful requests")
    if summary.transport_errors:
        failures.append(f"{summary.transport_errors} transport errors "
                        "(overload must shed, not drop connections)")
    unexpected = {status: count for status, count
                  in summary.error_statuses.items() if status != 429}
    if unexpected:
        failures.append(f"non-429 error responses: {unexpected}")
    if summary.shed_requests == 0:
        failures.append("no requests were shed — the run did not reach "
                        "the admission bound (raise --clients or lower "
                        "the gateway's --max-backlog-rows)")
    gateway_sheds = shed_after - shed_before
    if gateway_sheds != summary.shed_requests:
        failures.append(f"gateway shed counter moved by {gateway_sheds} "
                        f"but clients saw {summary.shed_requests} 429s")
    if summary.shed_requests and summary.retry_after_hint_s <= 0:
        failures.append("429 responses carried no Retry-After hint")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.loadgen",
        description="Closed-loop load generator for the serving gateway.")
    parser.add_argument("--url", required=True)
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--sweep", default=None,
                        help="comma-separated client counts; runs one "
                             "closed-loop load per count (--duration each) "
                             "instead of a single --clients run")
    parser.add_argument("--overload", action="store_true",
                        help="overload-acceptance mode: expect 429 sheds, "
                             "fail on transport errors, non-429 statuses, "
                             "or a shed count the gateway's own /stats "
                             "counter does not confirm")
    parser.add_argument("--rows", type=int, default=8,
                        help="candidate rows per rank request")
    parser.add_argument("--top-k", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="write the JSON summary to this path")
    parser.add_argument("--allow-errors", action="store_true",
                        help="exit 0 even when some requests errored")
    args = parser.parse_args(argv)
    if args.overload and args.sweep:
        parser.error("--overload and --sweep are mutually exclusive")

    if args.sweep:
        try:
            counts = [int(part) for part in args.sweep.split(",") if part]
        except ValueError:
            parser.error(f"--sweep must be comma-separated integers, "
                         f"got {args.sweep!r}")
        summaries = run_sweep(args.url, counts, duration_s=args.duration,
                              rows_per_request=args.rows, top_k=args.top_k,
                              seed=args.seed)
        for summary in summaries:
            print(summary.format())
        payload = {"sweep": [summary.to_dict() for summary in summaries]}
    else:
        shed_before = _gateway_shed_count(args.url) if args.overload else 0
        summaries = [run_load(args.url, duration_s=args.duration,
                              clients=args.clients,
                              rows_per_request=args.rows,
                              top_k=args.top_k, seed=args.seed)]
        print(summaries[0].format())
        payload = summaries[0].to_dict()

    if args.overload:
        shed_after = _gateway_shed_count(args.url)
        payload["gateway_sheds"] = shed_after - shed_before

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"summary written to {args.out}")

    if args.overload:
        failures = _check_overload(summaries[0], shed_before, shed_after)
        for reason in failures:
            print(f"FAIL: {reason}")
        if not failures:
            print(f"overload OK: {summaries[0].shed_requests} sheds "
                  f"confirmed by the gateway, retry-after hint "
                  f"{summaries[0].retry_after_hint_s:g}s")
        return 1 if failures else 0

    if any(summary.requests == 0 for summary in summaries):
        print("FAIL: no successful requests")
        return 1
    errors = sum(summary.errors for summary in summaries)
    if errors and not args.allow_errors:
        print(f"FAIL: {errors} error responses")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
