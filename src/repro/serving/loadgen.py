"""Closed-loop load generator for the HTTP serving gateway.

``run_load`` drives N client threads against a gateway for a fixed
duration, each looping rank requests with randomly generated (but
schema-valid) candidates — the feature shapes come from the gateway's own
``GET /models`` spec block, so the generator needs no local dataset.  The
result is a :class:`LoadSummary` with throughput and client-observed
latency percentiles; the CLI writes it as JSON (the CI serving smoke job
uploads that file as a build artifact) and exits non-zero when any request
errored::

    python -m repro.serving.loadgen --url http://127.0.0.1:8000 \\
        --duration 5 --clients 4 --rows 8 --out latency_summary.json

Errors are split by cause: ``transport_errors`` (socket-level failures —
the gateway broke its contract or vanished) versus ``error_statuses``
(structured HTTP error responses, keyed by status).  A 429 is the gateway
*working as designed* under overload, not a failure, which is what the
``--overload`` mode asserts: drive the gateway past its admission bound
and verify every request was either served or cleanly shed (client-side
429 count matches the gateway's own shed counter exactly, no transport
errors, no other statuses)::

    python -m repro.serving.loadgen --url http://127.0.0.1:8000 \\
        --overload --clients 32 --duration 5 --out overload_summary.json

``--sweep`` replaces the single run with a connection-count sweep — one
closed-loop run per count, all summaries in one JSON artifact — which is
how the selector backend's connection scaling is measured and CI-gated::

    python -m repro.serving.loadgen --url http://127.0.0.1:8000 \\
        --sweep 1,8,64,256 --duration 3 --out connection_sweep.json

``--chaos`` is the fault-tolerance acceptance mode: while the closed
loop runs, an orchestrator thread drives the gateway's ``POST /faults``
endpoint through a scripted failure sequence (injected scoring errors
and latency, a worker kill, a torn checkpoint write + reload, then
heal) and a fraction of requests carry tight ``X-Deadline-Ms`` budgets.
The gateway must degrade *structurally*: zero transport errors, every
failure a structured status or a ``"degraded": true`` fallback
response, the dead worker respawned (``worker_restarts`` moves), the
torn checkpoint quarantined with the last good version still serving,
and every breaker back to ``closed`` once the faults stop::

    python -m repro.serving.loadgen --url http://127.0.0.1:8000 \\
        --chaos --clients 32 --duration 10 --out chaos_summary.json

(The gateway must be started with ``--enable-fault-injection``, and with
a breaker threshold below the injected error rate — e.g.
``--breaker-threshold 0.05`` against the default 10% injection — or the
breaker never opens and the run fails its recovery check.)

``--zipf S`` replaces the per-request random candidates with a Zipfian
key workload: each request draws a key from a bounded universe
(``--zipf-universe``) with p(rank r) ∝ r^-S, and every key maps to one
deterministic payload — identical across clients and iterations — so the
gateway's version-keyed result cache sees realistic repeat traffic.  The
summary gains the gateway's own cache hit/miss deltas for the run plus a
``warm_hit_rate`` that excludes each distinct key's unavoidable
cold-start miss; ``--min-hit-rate`` turns that into a CI gate::

    python -m repro.serving.loadgen --url http://127.0.0.1:8000 \\
        --zipf 1.0 --zipf-universe 64 --duration 5 --clients 8 \\
        --min-hit-rate 0.5 --out zipf_summary.json
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from .client import ServingClient, ServingError
from .scorer import latency_percentile

__all__ = ["LoadSummary", "run_load", "run_sweep", "run_chaos", "main"]


@dataclass
class LoadSummary:
    """One load run's aggregate results (latencies are client-observed).

    ``errors`` is the total of ``transport_errors`` and every count in
    ``error_statuses`` — kept as a field (not a property) so the JSON
    artifact stays a flat dict and older tooling reading ``errors`` keeps
    working.  ``shed_requests`` is the 429 slice of ``error_statuses``
    (the gateway's overload self-protection answering instead of
    queueing), and ``retry_after_hint_s`` the largest ``Retry-After`` the
    gateway attached to those sheds.

    ``deadline_exceeded`` (structured 504s for requests whose
    ``X-Deadline-Ms`` budget passed) and ``degraded`` (successful
    responses served by the circuit breaker's model-free fallback) are
    **distinct counters, not errors**: both are the gateway honoring its
    fault-tolerance contract — a deadline miss is the client's budget
    expiring, a degraded response is still an answer — so neither feeds
    ``errors`` or ``error_statuses``.

    The ``zipf_s``/cache fields are populated only by Zipfian runs
    (``--zipf``): ``cache_hits``/``cache_misses`` are the gateway's own
    result-cache counter deltas over the run, ``cold_start_misses`` the
    distinct keys the run touched (each key's first request can never
    hit), and ``warm_hit_rate`` the hit rate with those unavoidable
    misses excluded — the steady-state number a long-running gateway
    would see.
    """

    duration_s: float                   # nominal: the configured --duration
    clients: int
    rows_per_request: int
    requests: int
    rows: int
    errors: int
    transport_errors: int
    # Measured wall time from the first request sent to the last response
    # received (across all clients).  This — not the nominal duration — is
    # the denominator behind rps/rows_per_s: client ramp-up and overrun
    # otherwise skew every published rate.
    elapsed_s: float = 0.0
    error_statuses: dict = field(default_factory=dict)  # status -> count
    shed_requests: int = 0
    retry_after_hint_s: float = 0.0
    deadline_exceeded: int = 0          # structured 504s (not errors)
    degraded: int = 0                   # breaker-fallback 200s (not errors)
    rps: float = 0.0                    # successful requests per second
    rows_per_s: float = 0.0
    mean_ms: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    max_ms: float = 0.0
    zipf_s: float | None = None         # Zipfian runs only, from here down
    zipf_universe: int = 0
    distinct_keys: int = 0
    cache_hits: int = 0                 # gateway counter deltas
    cache_misses: int = 0
    cache_hit_rate: float = 0.0
    cold_start_misses: int = 0          # first touch of each distinct key
    warm_hit_rate: float = 0.0          # hit rate net of cold starts

    def to_dict(self) -> dict:
        payload = asdict(self)
        # JSON object keys are strings; make that explicit rather than
        # relying on json.dump's silent int-key coercion.
        payload["error_statuses"] = {str(status): count for status, count
                                     in self.error_statuses.items()}
        return payload

    def format(self) -> str:
        shed = f", {self.shed_requests} shed (429)" if self.shed_requests \
            else ""
        extra = ""
        if self.deadline_exceeded:
            extra += f", {self.deadline_exceeded} deadline-exceeded (504)"
        if self.degraded:
            extra += f", {self.degraded} degraded"
        if self.zipf_s is not None:
            extra += (f"; zipf s={self.zipf_s:g} over {self.zipf_universe} "
                      f"keys ({self.distinct_keys} touched): cache "
                      f"{self.cache_hits} hits / {self.cache_misses} misses "
                      f"({self.cache_hit_rate:.1%}, warm "
                      f"{self.warm_hit_rate:.1%})")
        measured = self.elapsed_s if self.elapsed_s > 0 else self.duration_s
        return (f"{self.requests} requests ({self.rows} rows) in "
                f"{measured:.2f}s measured "
                f"(nominal {self.duration_s:g}s) from {self.clients} clients — "
                f"{self.rps:,.0f} req/s, {self.rows_per_s:,.0f} rows/s, "
                f"{self.errors} errors ({self.transport_errors} transport)"
                f"{shed}{extra}; latency mean {self.mean_ms:.2f}ms "
                f"p50 {self.p50_ms:.2f}ms p95 {self.p95_ms:.2f}ms "
                f"p99 {self.p99_ms:.2f}ms max {self.max_ms:.2f}ms")


def _measured_elapsed(windows: list[list[float | None]]) -> float:
    """Wall time from the earliest first-send to the latest last-response.

    ``windows`` holds one ``[first_sent, last_done]`` pair per client
    (``None`` entries mean that client never got a request off).  This is
    the honest rate denominator: the nominal ``--duration`` misses both
    client ramp-up (threads that start late) and overrun (in-flight
    requests completing after the deadline).
    """
    starts = [w[0] for w in windows if w[0] is not None]
    ends = [w[1] for w in windows if w[1] is not None]
    if not starts or not ends:
        return 0.0
    return max(max(ends) - min(starts), 0.0)


def _summarize(duration_s: float, clients: int, rows_per_request: int,
               latencies: list[float], transport_errors: int,
               error_statuses: dict, retry_after_hint_s: float,
               deadline_exceeded: int = 0, degraded: int = 0,
               elapsed_s: float | None = None) -> LoadSummary:
    samples = np.asarray(latencies, dtype=np.float64)
    requests = int(samples.size)
    # Rates divide by the *measured* elapsed time; the nominal duration is
    # only a fallback for callers that never measured (and is kept in the
    # summary untouched either way).
    denominator = elapsed_s if elapsed_s is not None else duration_s
    return LoadSummary(
        duration_s=duration_s,
        clients=clients,
        rows_per_request=rows_per_request,
        requests=requests,
        rows=requests * rows_per_request,
        errors=transport_errors + sum(error_statuses.values()),
        transport_errors=transport_errors,
        elapsed_s=elapsed_s if elapsed_s is not None else 0.0,
        error_statuses=dict(sorted(error_statuses.items())),
        shed_requests=error_statuses.get(429, 0),
        retry_after_hint_s=retry_after_hint_s,
        deadline_exceeded=deadline_exceeded,
        degraded=degraded,
        rps=requests / denominator if denominator > 0 else 0.0,
        rows_per_s=requests * rows_per_request / denominator
        if denominator > 0 else 0.0,
        mean_ms=float(samples.mean() * 1000.0) if requests else 0.0,
        p50_ms=latency_percentile(samples, 50) * 1000.0,
        p95_ms=latency_percentile(samples, 95) * 1000.0,
        p99_ms=latency_percentile(samples, 99) * 1000.0,
        max_ms=float(samples.max() * 1000.0) if requests else 0.0,
    )


def _candidate_generator(spec: dict, rows: int, rng: np.random.Generator):
    """Yield (numeric, sparse) payloads valid under the gateway's spec."""
    num_numeric = len(spec["numeric"])
    cardinalities = spec["sparse"]

    def generate():
        numeric = rng.standard_normal((rows, num_numeric))
        sparse = {name: rng.integers(0, cardinality, size=rows)
                  for name, cardinality in cardinalities.items()}
        return numeric, sparse

    return generate


def _zipf_sampler(zipf_s: float, zipf_universe: int):
    """Bounded Zipfian rank sampler: p(rank r) ∝ r^-s, r in [0, universe).

    numpy's ``rng.zipf`` draws from the unbounded distribution; a cache
    workload needs a *bounded* key universe, so sample by inverting the
    normalized cumulative mass instead.
    """
    if zipf_universe <= 0:
        raise ValueError(f"zipf_universe must be positive, got {zipf_universe}")
    ranks = np.arange(1, zipf_universe + 1, dtype=np.float64)
    probs = ranks ** -zipf_s
    cumulative = np.cumsum(probs / probs.sum())
    cumulative[-1] = 1.0                # guard float undershoot

    def sample(rng: np.random.Generator) -> int:
        return int(np.searchsorted(cumulative, rng.random(), side="right"))

    return sample


def _zipf_payload(spec: dict, rows: int, seed: int, key: int):
    """The deterministic candidate payload for one Zipfian key.

    Seeded by ``(seed, key)`` alone, so every client thread (and every
    repeat draw of the key) produces byte-identical features — exactly
    what a repeat query for the same items looks like to the gateway's
    result cache.
    """
    rng = np.random.default_rng((seed, key))
    return _candidate_generator(spec, rows, rng)()


def _gateway_cache_counts(url: str, ready_timeout_s: float = 30.0) -> dict:
    """The gateway's result-cache counters from ``GET /stats``."""
    probe = ServingClient(url)
    probe.wait_ready(timeout_s=ready_timeout_s)
    cache = probe.stats().get("cache", {})
    return {"hits": int(cache.get("hits", 0)),
            "misses": int(cache.get("misses", 0))}


def run_load(url: str, duration_s: float = 5.0, clients: int = 4,
             rows_per_request: int = 8, top_k: int = 5, seed: int = 0,
             ready_timeout_s: float = 30.0,
             deadline_ms: float | None = None,
             deadline_fraction: float = 0.0,
             zipf_s: float | None = None,
             zipf_universe: int = 512) -> LoadSummary:
    """Drive ``clients`` closed-loop rank threads against ``url``.

    Each thread waits for its previous response before sending the next
    request (closed loop), so concurrency equals ``clients``.  Socket
    failures count as ``transport_errors``; structured HTTP errors are
    tallied per status in ``error_statuses`` (a shed 429's ``Retry-After``
    is recorded, not slept on — a closed-loop generator that backed off
    would stop measuring the overload it is there to produce).  Latencies
    are recorded for successful requests only.

    When ``deadline_ms`` is set, each request independently carries that
    ``X-Deadline-Ms`` budget with probability ``deadline_fraction``;
    structured 504 ``deadline_exceeded`` answers and ``"degraded": true``
    fallback responses are counted separately from errors (see
    :class:`LoadSummary`).

    When ``zipf_s`` is set, requests draw a key from a bounded Zipfian
    distribution over ``zipf_universe`` keys and send that key's
    deterministic payload (shared across all clients), and the summary
    carries the gateway's result-cache hit/miss deltas for the run.
    """
    probe = ServingClient(url)
    probe.wait_ready(timeout_s=ready_timeout_s)
    spec = probe.models().get("spec")
    if spec is None:
        raise RuntimeError(f"gateway at {url} publishes no feature spec; "
                           "start it with spec= (or from a checkpoint dir)")
    sample_key = _zipf_sampler(zipf_s, zipf_universe) \
        if zipf_s is not None else None
    cache_before = _gateway_cache_counts(url, ready_timeout_s) \
        if zipf_s is not None else None

    latencies: list[list[float]] = [[] for _ in range(clients)]
    transport_errors = [0] * clients
    status_counts: list[dict] = [{} for _ in range(clients)]
    retry_hints = [0.0] * clients
    deadline_misses = [0] * clients
    degraded_counts = [0] * clients
    keys_touched: list[set] = [set() for _ in range(clients)]
    # Per-client [first_sent, last_done] timestamps; every attempt updates
    # last_done (success or error), so the measured window spans first
    # request out → last response (or failure) in.
    send_windows: list[list[float | None]] = [[None, None]
                                              for _ in range(clients)]
    started = threading.Event()
    deadline_holder = [0.0]

    def worker(index: int) -> None:
        client = ServingClient(url)
        rng = np.random.default_rng(seed + index)
        generate = _candidate_generator(spec, rows_per_request, rng)
        started.wait()
        while time.monotonic() < deadline_holder[0]:
            if sample_key is not None:
                key = sample_key(rng)
                keys_touched[index].add(key)
                numeric, sparse = _zipf_payload(spec, rows_per_request,
                                                seed, key)
            else:
                numeric, sparse = generate()
            budget = deadline_ms if deadline_ms is not None \
                and rng.random() < deadline_fraction else None
            t0 = time.monotonic()
            window = send_windows[index]
            if window[0] is None:
                window[0] = t0
            try:
                result = client.rank(numeric, sparse, top_k=top_k,
                                     deadline_ms=budget)
            except ServingError as error:
                if error.kind == "deadline_exceeded":
                    # The gateway honoring the budget we sent — a
                    # distinct outcome, not an error.
                    deadline_misses[index] += 1
                    continue
                counts = status_counts[index]
                counts[error.status] = counts.get(error.status, 0) + 1
                if error.retry_after_s is not None:
                    retry_hints[index] = max(retry_hints[index],
                                             error.retry_after_s)
                continue
            except OSError:
                transport_errors[index] += 1
                continue
            finally:
                window[1] = time.monotonic()
            if result.get("degraded"):
                degraded_counts[index] += 1
            latencies[index].append(time.monotonic() - t0)

    threads = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(clients)]
    for thread in threads:
        thread.start()
    run_started = time.monotonic()
    deadline_holder[0] = run_started + duration_s
    started.set()
    for thread in threads:
        thread.join()
    merged = [sample for bucket in latencies for sample in bucket]
    merged_statuses: dict = {}
    for counts in status_counts:
        for status, count in counts.items():
            merged_statuses[status] = merged_statuses.get(status, 0) + count
    summary = _summarize(duration_s, clients, rows_per_request, merged,
                         sum(transport_errors), merged_statuses,
                         max(retry_hints),
                         deadline_exceeded=sum(deadline_misses),
                         degraded=sum(degraded_counts),
                         elapsed_s=_measured_elapsed(send_windows))
    if zipf_s is not None:
        cache_after = _gateway_cache_counts(url, ready_timeout_s)
        distinct = len(set().union(*keys_touched)) if clients else 0
        hits = cache_after["hits"] - cache_before["hits"]
        misses = cache_after["misses"] - cache_before["misses"]
        lookups = hits + misses
        # Each distinct key's first request can never hit; the warm rate
        # judges only the lookups a hit was possible for.
        warm_lookups = max(lookups - distinct, 0)
        summary.zipf_s = zipf_s
        summary.zipf_universe = zipf_universe
        summary.distinct_keys = distinct
        summary.cache_hits = hits
        summary.cache_misses = misses
        summary.cache_hit_rate = hits / lookups if lookups else 0.0
        summary.cold_start_misses = distinct
        summary.warm_hit_rate = min(hits / warm_lookups, 1.0) \
            if warm_lookups else 0.0
    return summary


def run_sweep(url: str, client_counts: list[int], duration_s: float = 3.0,
              rows_per_request: int = 8, top_k: int = 5, seed: int = 0,
              ready_timeout_s: float = 30.0) -> list[LoadSummary]:
    """Connection-scaling sweep: one closed-loop run per client count.

    Each step reuses :func:`run_load` (fresh clients, fresh connections),
    so a step's summary is exactly what a standalone run at that
    concurrency would report.  This is the measurement behind the
    selector backend's "sustains N concurrent keep-alive connections"
    acceptance gate.
    """
    return [run_load(url, duration_s=duration_s, clients=clients,
                     rows_per_request=rows_per_request, top_k=top_k,
                     seed=seed, ready_timeout_s=ready_timeout_s)
            for clients in client_counts]


def _gateway_shed_count(url: str, ready_timeout_s: float = 30.0) -> int:
    """The gateway's own shed counter from ``GET /stats``.

    Waits for readiness first: the before-run probe may race a gateway
    that is still booting (run_load does its own wait, but this read
    happens ahead of it).
    """
    probe = ServingClient(url)
    probe.wait_ready(timeout_s=ready_timeout_s)
    return int(probe.stats()["server"].get("shed_requests", 0))


def _check_overload(summary: LoadSummary, shed_before: int,
                    shed_after: int) -> list[str]:
    """The ``--overload`` acceptance conditions; returns failure reasons.

    Under deliberate overload the gateway must degrade *cleanly*: every
    request is either served or answered with a structured 429 — never a
    dropped connection, never a different error — and the gateway's own
    shed counter agrees exactly with what clients observed (this loadgen
    being the sole traffic source), so no shed goes unaccounted.
    """
    failures = []
    if summary.requests == 0:
        failures.append("no successful requests")
    if summary.transport_errors:
        failures.append(f"{summary.transport_errors} transport errors "
                        "(overload must shed, not drop connections)")
    unexpected = {status: count for status, count
                  in summary.error_statuses.items() if status != 429}
    if unexpected:
        failures.append(f"non-429 error responses: {unexpected}")
    if summary.shed_requests == 0:
        failures.append("no requests were shed — the run did not reach "
                        "the admission bound (raise --clients or lower "
                        "the gateway's --max-backlog-rows)")
    gateway_sheds = shed_after - shed_before
    if gateway_sheds != summary.shed_requests:
        failures.append(f"gateway shed counter moved by {gateway_sheds} "
                        f"but clients saw {summary.shed_requests} 429s")
    if summary.shed_requests and summary.retry_after_hint_s <= 0:
        failures.append("429 responses carried no Retry-After hint")
    return failures


# ----------------------------------------------------------------------
# Chaos mode
# ----------------------------------------------------------------------
def _chaos_schedule(control: ServingClient, error_rate: float):
    """The scripted failure sequence, as ``(run fraction, name, action)``.

    Latency injection rides along with the error injection so tight
    deadline budgets reliably expire in the scoring queue (without it, a
    lightly loaded gateway can answer inside even a ~10ms budget).
    """

    def tear_and_reload():
        control.faults(tear_checkpoint=True)
        # The reload must *survive* the torn bytes: quarantine the
        # checkpoint, keep the last good version serving.
        control.reload()

    return [
        (0.10, "inject_errors",
         lambda: control.faults(score_error_rate=error_rate,
                                latency_rate=0.2, latency_ms=40.0)),
        (0.35, "kill_worker", lambda: control.faults(kill_workers=1)),
        (0.55, "tear_checkpoint", tear_and_reload),
        (0.70, "heal", lambda: control.faults(reset=True)),
    ]


def _await_recovery(control: ServingClient, probe=None,
                    timeout_s: float = 10.0) -> tuple[bool, dict]:
    """Poll ``/stats`` until every breaker is closed and every scoring
    backlog has drained; returns ``(recovered, final stats)``.

    This is the "self-healing" half of the chaos contract: once the
    faults stop, the gateway must converge back to a clean steady state
    — no restart, no operator action.  ``probe`` (a zero-argument rank
    call, failures ignored) keeps light traffic flowing while we wait:
    a breaker leaves half-open only through scored probe requests, so a
    silent poll loop would watch an idle gateway sit in half-open
    forever and call it stuck.
    """
    deadline = time.monotonic() + timeout_s
    while True:
        if probe is not None:
            try:
                probe()
            except (ServingError, OSError):
                pass                    # recovery is judged from /stats
        stats = control.stats()
        breakers_closed = all(snapshot.get("state") == "closed"
                              for snapshot in stats["breakers"].values())
        backlog_drained = all(entry.get("backlog_rows", 0) == 0
                              for entry in stats["scorers"].values())
        if breakers_closed and backlog_drained:
            return True, stats
        if time.monotonic() >= deadline:
            return False, stats
        time.sleep(0.2)


def _check_chaos(summary: LoadSummary, before: dict, after: dict,
                 recovered: bool) -> list[str]:
    """The ``--chaos`` acceptance conditions; returns failure reasons.

    Under injected faults the gateway must fail *structurally*: no
    dropped connections, every failure a structured status (500 for an
    injected scoring error, 429 for a shed, 504 for a deadline — the
    latter a distinct counter) or a degraded fallback response; the dead
    worker respawned; the torn checkpoint quarantined; every breaker
    back to closed once the faults stop.
    """
    failures = []
    if summary.requests == 0:
        failures.append("no successful requests")
    if summary.transport_errors:
        failures.append(f"{summary.transport_errors} transport errors "
                        "(faults must surface structurally, not as "
                        "dropped connections)")
    unexpected = {status: count for status, count
                  in summary.error_statuses.items()
                  if status not in (429, 500)}
    if unexpected:
        failures.append(f"unexpected error statuses: {unexpected} "
                        "(only 429 sheds and structured 500s are "
                        "legitimate under injected faults)")
    restarts_before = sum(entry.get("worker_restarts", 0)
                          for entry in before["scorers"].values())
    restarts_after = sum(entry.get("worker_restarts", 0)
                         for entry in after["scorers"].values())
    if restarts_after - restarts_before < 1:
        failures.append("worker kill did not move worker_restarts — the "
                        "supervisor never respawned the dead worker")
    opens_before = sum(snapshot.get("opens", 0)
                       for snapshot in before.get("breakers", {}).values())
    opens_after = sum(snapshot.get("opens", 0)
                      for snapshot in after.get("breakers", {}).values())
    if opens_after - opens_before < 1:
        failures.append("no breaker opened — start the gateway with a "
                        "breaker threshold below the injected error rate "
                        "(e.g. --breaker-threshold 0.05)")
    if summary.degraded < 1:
        failures.append("no degraded fallback responses were served "
                        "while the breaker was open")
    if not after.get("quarantined"):
        failures.append("torn checkpoint was not quarantined")
    if not recovered:
        open_breakers = {name: snapshot.get("state")
                         for name, snapshot in after["breakers"].items()
                         if snapshot.get("state") != "closed"}
        failures.append(f"gateway did not recover after the faults "
                        f"stopped (breakers: {open_breakers or 'closed'}, "
                        f"backlogs: "
                        f"{ {k: v.get('backlog_rows') for k, v in after['scorers'].items()} })")
    return failures


def run_chaos(url: str, duration_s: float = 10.0, clients: int = 32,
              rows_per_request: int = 8, top_k: int = 5, seed: int = 0,
              ready_timeout_s: float = 30.0, error_rate: float = 0.1,
              deadline_ms: float = 25.0, deadline_fraction: float = 0.25,
              recovery_timeout_s: float = 10.0) \
        -> tuple[LoadSummary, dict, list[str]]:
    """Closed-loop load under a scripted failure sequence.

    Returns ``(summary, detail payload, failure reasons)`` — an empty
    failure list means the gateway honored the fault-tolerance contract
    end to end.  Requires a gateway started with
    ``--enable-fault-injection`` (the orchestrator drives ``/faults``).
    """
    control = ServingClient(url)
    control.wait_ready(timeout_s=ready_timeout_s)
    stats_before = control.stats()
    if "faults" not in stats_before:
        raise RuntimeError(f"gateway at {url} has fault injection disabled; "
                           "start it with --enable-fault-injection")

    events: list[dict] = []
    stop = threading.Event()

    def orchestrate() -> None:
        run_started = time.monotonic()
        for fraction, name, action in _chaos_schedule(control, error_rate):
            delay = run_started + fraction * duration_s - time.monotonic()
            if stop.wait(max(delay, 0.0)):
                return
            event = {"at_s": round(time.monotonic() - run_started, 3),
                     "event": name}
            try:
                action()
            except (ServingError, OSError) as error:
                event["error"] = str(error)
            events.append(event)

    orchestrator = threading.Thread(target=orchestrate, daemon=True,
                                    name="chaos-orchestrator")
    orchestrator.start()
    try:
        summary = run_load(url, duration_s=duration_s, clients=clients,
                           rows_per_request=rows_per_request, top_k=top_k,
                           seed=seed, ready_timeout_s=ready_timeout_s,
                           deadline_ms=deadline_ms,
                           deadline_fraction=deadline_fraction)
    finally:
        stop.set()
        orchestrator.join()
    # Belt and braces: whatever the schedule reached, leave the gateway
    # fault-free before judging recovery.
    try:
        control.faults(reset=True)
    except (ServingError, OSError):
        pass
    spec = control.models().get("spec")
    generate = _candidate_generator(spec, rows_per_request,
                                    np.random.default_rng(seed + clients))

    def probe():
        numeric, sparse = generate()
        control.rank(numeric, sparse, top_k=top_k)

    recovered, stats_after = _await_recovery(
        control, probe=probe, timeout_s=recovery_timeout_s)
    detail = {
        "events": events,
        "recovered": recovered,
        "stats_before": {"scorers": stats_before["scorers"],
                         "breakers": stats_before["breakers"]},
        "stats_after": {"scorers": stats_after["scorers"],
                        "breakers": stats_after["breakers"],
                        "quarantined": stats_after.get("quarantined", {}),
                        "server": stats_after.get("server", {}),
                        "faults": stats_after.get("faults", {})},
    }
    failures = _check_chaos(summary, stats_before, stats_after, recovered)
    return summary, detail, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.loadgen",
        description="Closed-loop load generator for the serving gateway.")
    parser.add_argument("--url", required=True)
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--sweep", default=None,
                        help="comma-separated client counts; runs one "
                             "closed-loop load per count (--duration each) "
                             "instead of a single --clients run")
    parser.add_argument("--overload", action="store_true",
                        help="overload-acceptance mode: expect 429 sheds, "
                             "fail on transport errors, non-429 statuses, "
                             "or a shed count the gateway's own /stats "
                             "counter does not confirm")
    parser.add_argument("--chaos", action="store_true",
                        help="fault-tolerance acceptance mode: drive the "
                             "gateway's /faults endpoint through injected "
                             "errors, a worker kill, and a torn checkpoint "
                             "while loading it; fail unless every failure "
                             "is structured, the worker respawns, the "
                             "checkpoint is quarantined, and the breaker "
                             "re-closes (requires a gateway started with "
                             "--enable-fault-injection)")
    parser.add_argument("--error-rate", type=float, default=0.1,
                        help="chaos mode: injected scoring error rate")
    parser.add_argument("--deadline-ms", type=float, default=25.0,
                        help="chaos mode: X-Deadline-Ms budget carried by "
                             "a fraction of requests")
    parser.add_argument("--deadline-fraction", type=float, default=0.25,
                        help="chaos mode: fraction of requests carrying "
                             "the deadline budget")
    parser.add_argument("--recovery-timeout", type=float, default=10.0,
                        help="chaos mode: seconds to wait for breakers to "
                             "re-close and backlogs to drain after faults "
                             "stop")
    parser.add_argument("--zipf", type=float, default=None, metavar="S",
                        help="Zipfian workload mode: draw each request's "
                             "key with p(rank r) ∝ r^-S from a bounded "
                             "universe and send that key's deterministic "
                             "payload, so the gateway's result cache sees "
                             "repeat traffic; the summary gains the "
                             "gateway's cache hit/miss deltas")
    parser.add_argument("--zipf-universe", type=int, default=512,
                        help="Zipfian mode: number of distinct keys")
    parser.add_argument("--min-hit-rate", type=float, default=None,
                        help="Zipfian mode: fail unless the run's warm "
                             "cache hit rate (cold-start misses excluded) "
                             "reaches this floor")
    parser.add_argument("--rows", type=int, default=8,
                        help="candidate rows per rank request")
    parser.add_argument("--top-k", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="write the JSON summary to this path")
    parser.add_argument("--allow-errors", action="store_true",
                        help="exit 0 even when some requests errored")
    args = parser.parse_args(argv)
    if sum(bool(flag) for flag in
           (args.overload, args.sweep, args.chaos,
            args.zipf is not None)) > 1:
        parser.error("--overload, --sweep, --chaos, and --zipf are "
                     "mutually exclusive")
    if args.min_hit_rate is not None and args.zipf is None:
        parser.error("--min-hit-rate requires --zipf")

    if args.chaos:
        summary, detail, failures = run_chaos(
            args.url, duration_s=args.duration, clients=args.clients,
            rows_per_request=args.rows, top_k=args.top_k, seed=args.seed,
            error_rate=args.error_rate, deadline_ms=args.deadline_ms,
            deadline_fraction=args.deadline_fraction,
            recovery_timeout_s=args.recovery_timeout)
        print(summary.format())
        for event in detail["events"]:
            note = f" ({event['error']})" if "error" in event else ""
            print(f"  chaos t+{event['at_s']:.1f}s: {event['event']}{note}")
        payload = {**summary.to_dict(), "chaos": detail}
        if args.out:
            with open(args.out, "w") as handle:
                json.dump(payload, handle, indent=2)
            print(f"summary written to {args.out}")
        for reason in failures:
            print(f"FAIL: {reason}")
        if not failures:
            print(f"chaos OK: {summary.requests} served "
                  f"({summary.degraded} degraded, "
                  f"{summary.deadline_exceeded} deadline-exceeded, "
                  f"{sum(summary.error_statuses.values())} structured "
                  f"errors), worker respawned, checkpoint quarantined, "
                  f"breaker re-closed")
        return 1 if failures else 0

    if args.sweep:
        try:
            counts = [int(part) for part in args.sweep.split(",") if part]
        except ValueError:
            parser.error(f"--sweep must be comma-separated integers, "
                         f"got {args.sweep!r}")
        summaries = run_sweep(args.url, counts, duration_s=args.duration,
                              rows_per_request=args.rows, top_k=args.top_k,
                              seed=args.seed)
        for summary in summaries:
            print(summary.format())
        payload = {"sweep": [summary.to_dict() for summary in summaries]}
    else:
        shed_before = _gateway_shed_count(args.url) if args.overload else 0
        summaries = [run_load(args.url, duration_s=args.duration,
                              clients=args.clients,
                              rows_per_request=args.rows,
                              top_k=args.top_k, seed=args.seed,
                              zipf_s=args.zipf,
                              zipf_universe=args.zipf_universe)]
        print(summaries[0].format())
        payload = summaries[0].to_dict()

    if args.overload:
        shed_after = _gateway_shed_count(args.url)
        payload["gateway_sheds"] = shed_after - shed_before

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"summary written to {args.out}")

    if args.overload:
        failures = _check_overload(summaries[0], shed_before, shed_after)
        for reason in failures:
            print(f"FAIL: {reason}")
        if not failures:
            print(f"overload OK: {summaries[0].shed_requests} sheds "
                  f"confirmed by the gateway, retry-after hint "
                  f"{summaries[0].retry_after_hint_s:g}s")
        return 1 if failures else 0

    if any(summary.requests == 0 for summary in summaries):
        print("FAIL: no successful requests")
        return 1
    errors = sum(summary.errors for summary in summaries)
    if errors and not args.allow_errors:
        print(f"FAIL: {errors} error responses")
        return 1
    if args.min_hit_rate is not None:
        summary = summaries[0]
        if summary.warm_hit_rate < args.min_hit_rate:
            print(f"FAIL: warm cache hit rate {summary.warm_hit_rate:.1%} "
                  f"below the --min-hit-rate floor "
                  f"{args.min_hit_rate:.1%} ({summary.cache_hits} hits / "
                  f"{summary.cache_misses} misses, "
                  f"{summary.cold_start_misses} cold starts)")
            return 1
        print(f"zipf OK: warm hit rate {summary.warm_hit_rate:.1%} ≥ "
              f"{args.min_hit_rate:.1%} floor "
              f"({summary.cache_hits} hits, {summary.cache_misses} misses, "
              f"{summary.cold_start_misses} cold starts over "
              f"{summary.distinct_keys} keys)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
