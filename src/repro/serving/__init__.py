"""``repro.serving`` — the scoring side of the system.

Training produces models; this package serves them: checkpoint
persistence (``state_dict`` → ``.npz`` + JSON config, plus the
``environment.json`` bundle a checkpoint directory is served from), a
versioned :class:`ModelRegistry` with hot reload-from-directory, the
micro-batching :class:`BatchScorer` and its N-worker
:class:`ScorerPool` generalization (latency/throughput stats included),
a :class:`RankingService` composing querycat intent → model selection →
pooled scoring → top-k, and a three-layer wire stack: connection
transports (:mod:`repro.serving.transport` — the default selector event
loop plus the threaded fallback), incremental HTTP/1.1 framing
(:mod:`repro.serving.protocol`), and transport-agnostic JSON dispatch
(:mod:`repro.serving.handlers`), composed by the :class:`ServingServer`
gateway (``python -m repro.serving.server``) with the
:class:`ServingClient` and a closed-loop load generator
(``python -m repro.serving.loadgen``) on the caller side.  All scoring
rides the compiled graph-free fast lane (:mod:`repro.nn.infer`).

The serving stack is fault-tolerant end to end: request deadlines
(``X-Deadline-Ms`` → structured 504s, expired work dropped from the
scoring queue), worker supervision (dead scoring workers respawn with
fresh compiled plans), a per-model :class:`CircuitBreaker` that degrades
to a model-free fallback instead of erroring, corruption-safe checkpoint
writes (atomic rename + checksum manifest) with quarantine on reload —
all proven by the :class:`FaultInjector` chaos harness
(``python -m repro.serving.loadgen --chaos``).

Repeat traffic rides the Zipfian fast path: a version-keyed
:class:`ResultCache` in front of the scorer pools (the model version
lives in the key, so hot reload invalidates structurally) answers
repeat ``(version, intent, candidates)`` requests bit-identically
without scoring, and ``--split-precompute`` factors each supported
model's compiled plan into a memoized query-independent item prefix
plus a per-request query suffix (:class:`~repro.nn.infer.SplitMLP`).
``python -m repro.serving.loadgen --zipf S`` generates the matching
skewed workload and gates on the gateway's own hit-rate counters.
"""

from .breaker import BreakerConfig, CircuitBreaker
from .cache import ResultCache, canonical_key
from .checkpoint import (ENVIRONMENT_FILENAME, CheckpointCorrupted,
                         checksum_file, ensure_weight_store,
                         find_classifier_checkpoint, load_checkpoint,
                         load_classifier_checkpoint, load_environment,
                         load_model, load_model_shared, load_shared_state,
                         save_checkpoint, save_classifier_checkpoint,
                         save_environment)
from .client import ServingClient, ServingError
from .faults import FaultInjector, InjectedFault, WorkerKilled
from .handlers import GatewayDispatcher
from .loadgen import LoadSummary, run_chaos, run_load, run_sweep
from .metrics import LatencyHistogram, log_spaced_buckets
from .procscorer import ProcessScorerError, ProcessScorerHost
from .protocol import ProtocolError, RequestParser
from .registry import ModelRegistry, RegisteredModel
from .scorer import (BatchScorer, DeadlineExceeded, PoolOverloaded,
                     ScorerPool, ScorerStats, concat_batches,
                     latency_percentile)
from .server import ApiError, ServingServer, serve_from_directory
from .service import RankingResponse, RankingService, candidate_batch
from .transport import (GatewayCounters, SelectorTransport, ShardedTransport,
                        ThreadedTransport)

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "load_model",
    "save_classifier_checkpoint",
    "load_classifier_checkpoint",
    "save_environment",
    "load_environment",
    "find_classifier_checkpoint",
    "ENVIRONMENT_FILENAME",
    "ModelRegistry",
    "RegisteredModel",
    "BatchScorer",
    "ScorerPool",
    "ScorerStats",
    "PoolOverloaded",
    "DeadlineExceeded",
    "BreakerConfig",
    "CircuitBreaker",
    "ResultCache",
    "canonical_key",
    "FaultInjector",
    "InjectedFault",
    "WorkerKilled",
    "CheckpointCorrupted",
    "checksum_file",
    "concat_batches",
    "latency_percentile",
    "LatencyHistogram",
    "log_spaced_buckets",
    "RankingService",
    "RankingResponse",
    "candidate_batch",
    "ServingServer",
    "serve_from_directory",
    "ApiError",
    "GatewayDispatcher",
    "GatewayCounters",
    "SelectorTransport",
    "ShardedTransport",
    "ThreadedTransport",
    "ProcessScorerHost",
    "ProcessScorerError",
    "ensure_weight_store",
    "load_shared_state",
    "load_model_shared",
    "ProtocolError",
    "RequestParser",
    "ServingClient",
    "ServingError",
    "LoadSummary",
    "run_load",
    "run_sweep",
    "run_chaos",
]
