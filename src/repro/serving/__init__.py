"""``repro.serving`` — the scoring side of the system.

Training produces models; this package serves them: checkpoint
persistence (``state_dict`` → ``.npz`` + JSON config), a versioned
:class:`ModelRegistry`, a micro-batching :class:`BatchScorer` with
latency/throughput stats, and a :class:`RankingService` that composes
querycat intent → model selection → scoring → top-k ranking.  All scoring
rides the compiled graph-free fast lane (:mod:`repro.nn.infer`).
"""

from .checkpoint import (load_checkpoint, load_classifier_checkpoint,
                         load_model, save_checkpoint,
                         save_classifier_checkpoint)
from .registry import ModelRegistry, RegisteredModel
from .scorer import BatchScorer, ScorerStats, concat_batches
from .service import RankingResponse, RankingService, candidate_batch

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "load_model",
    "save_classifier_checkpoint",
    "load_classifier_checkpoint",
    "ModelRegistry",
    "RegisteredModel",
    "BatchScorer",
    "ScorerStats",
    "concat_batches",
    "RankingService",
    "RankingResponse",
    "candidate_batch",
]
