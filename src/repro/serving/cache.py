"""Version-keyed result cache for the serving hot path.

Production ranking traffic is zipfian — a small set of hot (query,
candidate-set) pairs dominates — yet scoring is a pure function of
``(model name, model version, candidate features)``.  This module caches
those scores:

* :func:`canonical_key` turns a request's feature payload into a stable
  digest: dict-order independent (sparse features are hashed in sorted
  name order), dtype-stable (ids canonicalize to int64, floats to
  float64), and NaN/negative-zero-stable (every NaN collapses to one bit
  pattern, ``-0.0`` to ``+0.0``) — a naive ``str(payload)`` key would
  silently fragment the cache across clients that serialize the same
  candidates differently.
* :class:`ResultCache` is a thread-safe, TTL'd, capacity-bounded LRU.
  The **model version lives inside the key** (see
  :meth:`RankingService.rank`), so a hot reload invalidates structurally:
  new-version requests simply miss, and the old version's entries age out
  of the LRU — no flush coordination, no stale hits.

The cache stores full score arrays (pre-top-k), so requests that differ
only in ``top_k`` share one entry; the hit path re-runs the (cheap)
argsort.  Stored arrays are defensive read-only copies — a hit returns
bit-identical scores to the compute path for the same model version.
"""

from __future__ import annotations

import hashlib
import threading
import time

import numpy as np

__all__ = ["ResultCache", "canonical_key"]


def _canonical_bytes(array: np.ndarray) -> np.ndarray:
    """Canonicalize one feature array for hashing (see module docs)."""
    array = np.asarray(array)
    if np.issubdtype(array.dtype, np.floating) \
            or np.issubdtype(array.dtype, np.complexfloating):
        # float64 + add-zero: one dtype for every float feed, and IEEE
        # ``-0.0 + 0.0 == +0.0`` collapses signed zeros.  NaNs compare
        # equal for caching purposes, so every payload collapses to the
        # canonical quiet NaN before the bytes are hashed.
        array = np.asarray(array, dtype=np.float64) + 0.0
        nans = np.isnan(array)
        if nans.any():
            array[nans] = np.nan
    elif array.dtype == np.bool_:
        array = array.astype(np.int64)
    else:
        array = np.asarray(array, dtype=np.int64)
    return np.ascontiguousarray(array)


def canonical_key(numeric, sparse: dict | None = None, extra=()) -> str:
    """Stable digest of a candidate feature payload.

    ``numeric`` is any array (float features, or e.g. query token ids);
    ``sparse`` maps feature name -> id array and is hashed in sorted name
    order, so two dicts with different insertion order produce the same
    key.  ``extra`` is a tuple of hashable primitives (strings/ints)
    folded into the digest — callers use it to scope a key (e.g. an
    endpoint tag).  Shapes are part of the digest, so ``(2, 3)`` and
    ``(3, 2)`` payloads with identical bytes do not collide.
    """
    digest = hashlib.blake2b(digest_size=16)

    def feed(label: str, array) -> None:
        canonical = _canonical_bytes(array)
        digest.update(label.encode())
        digest.update(repr(canonical.shape).encode())
        digest.update(b"\x00")
        digest.update(canonical.tobytes())

    feed("numeric", numeric)
    for name in sorted(sparse or {}):
        feed(f"sparse:{name}", sparse[name])
    for item in extra:
        digest.update(b"\x01")
        digest.update(repr(item).encode())
    return digest.hexdigest()


class ResultCache:
    """Thread-safe, TTL'd, capacity-bounded LRU for serving results.

    Parameters
    ----------
    max_entries:
        Capacity bound; inserting past it evicts the least recently used
        entry (``evictions`` counter).  Must be positive — a disabled
        cache is represented by *no* cache (see
        :class:`~repro.serving.service.RankingService`), not a zero-size
        one.
    ttl_s:
        Seconds an entry stays servable.  An expired entry is dropped on
        lookup (``expired`` counter) and counts as a miss.  ``None``
        disables expiry (capacity is then the only bound).
    clock:
        Monotonic time source; injectable so TTL behavior is testable
        without sleeping.

    Keys are ordinary hashables — the service keys rank results by
    ``(model name, model version, querycat intent, canonical feature
    hash)``.  Values are stored as-is; callers storing arrays should pass
    read-only copies (the service does).
    """

    def __init__(self, max_entries: int = 4096, ttl_s: float | None = 30.0,
                 clock=time.monotonic):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive (or None for no expiry)")
        self.max_entries = int(max_entries)
        self.ttl_s = ttl_s
        self._clock = clock
        self._lock = threading.Lock()
        # key -> (expires_at | None, value); dict order is the LRU order
        # (pop + reinsert on every touch, same idiom as BufferPool).
        self._entries: dict[object, tuple[float | None, object]] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expired = 0

    def get(self, key):
        """The cached value, or ``None`` on a miss (or expired entry)."""
        now = self._clock()
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                self._misses += 1
                return None
            expires_at, value = entry
            if expires_at is not None and now >= expires_at:
                self._expired += 1
                self._misses += 1
                return None
            self._entries[key] = entry      # reinsert: most recently used
            self._hits += 1
            return value

    def put(self, key, value) -> None:
        """Insert (or refresh) ``key``; evicts LRU entries past capacity."""
        expires_at = None if self.ttl_s is None else self._clock() + self.ttl_s
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = (expires_at, value)
            while len(self._entries) > self.max_entries:
                self._entries.pop(next(iter(self._entries)))
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict:
        """Counters for ``/stats`` (and the Prometheus families)."""
        with self._lock:
            hits, misses = self._hits, self._misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "ttl_s": self.ttl_s,
                "hits": hits,
                "misses": misses,
                "evictions": self._evictions,
                "expired": self._expired,
                "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            }
