"""Process-level fault injection for the serving stack.

The fault-tolerance machinery (deadlines, worker supervision, the circuit
breaker, corruption-safe reload) is only trustworthy if it is exercised —
a supervisor that has never seen a dead worker is a hope, not a feature.
This module is the injection seam: one :class:`FaultInjector` instance is
threaded into the scorer workers (via :class:`~repro.serving.RankingService`)
and, when the gateway is started with ``--enable-fault-injection``, exposed
over the wire as ``POST /faults`` so the load generator's ``--chaos`` mode
can orchestrate failures against a live server from another process.

Injectable faults:

* **Scoring exceptions** — ``score_error_rate`` makes a fraction of model
  invocations raise :class:`InjectedFault` before touching the model.
  Exercises the breaker and the structured-error path.
* **Latency spikes** — ``latency_rate`` / ``latency_ms`` sleeps inside the
  score path.  Exercises deadlines and the adaptive batcher under slow
  models.
* **Worker kills** — ``arm_worker_kills(n)`` arms *n* one-shot
  :class:`WorkerKilled` raises; the worker loop deliberately lets this one
  escape, killing the thread.  Exercises the supervisor (respawn, token
  release, future resolution).
* **Torn checkpoint writes** — :meth:`tear_file` truncates a weights file
  in place, simulating a crash mid-write.  Exercises checksum quarantine
  in ``reload_from_directory``.

Determinism: the injector draws from its own seeded RNG, so a fixed seed
plus a fixed call sequence reproduces the same fault schedule in tests.
"""

from __future__ import annotations

import os
import random
import threading
import time

__all__ = ["FaultInjector", "InjectedFault", "WorkerKilled"]


class InjectedFault(RuntimeError):
    """A deliberate scoring failure raised by the fault injector.

    Subclasses ``RuntimeError`` so the existing worker error routing
    (resolve every co-batched future with the error) applies unchanged —
    to the caller it is indistinguishable from a real model failure,
    which is the point.
    """


class WorkerKilled(InjectedFault):
    """A fault the worker loop deliberately does NOT contain.

    Everything else raised during scoring is routed to the waiting
    futures and the worker survives; ``WorkerKilled`` is re-raised after
    that routing, so the worker thread actually dies — the only way to
    prove the supervisor respawns workers and the collector token cannot
    be leaked by a dying collector.
    """


class FaultInjector:
    """Thread-safe fault switchboard (see the module docstring).

    All rates are probabilities in ``[0, 1]`` applied per model
    invocation (micro-batch), not per row.  Worker kills are armed as a
    one-shot count so a single ``kill_workers: 1`` request kills exactly
    one worker no matter how many batches race past the check.
    """

    def __init__(self, seed: int = 0):
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self._score_error_rate = 0.0
        self._latency_rate = 0.0
        self._latency_ms = 0.0
        self._armed_kills = 0
        # Counters: what was actually delivered, for /stats and tests.
        self._injected_errors = 0
        self._injected_delays = 0
        self._kills_delivered = 0
        self._torn_writes = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def configure(self, *, score_error_rate: float | None = None,
                  latency_rate: float | None = None,
                  latency_ms: float | None = None) -> None:
        """Set steady-state fault rates; ``None`` leaves a knob unchanged."""
        with self._lock:
            if score_error_rate is not None:
                if not 0.0 <= score_error_rate <= 1.0:
                    raise ValueError("score_error_rate must be in [0, 1]")
                self._score_error_rate = float(score_error_rate)
            if latency_rate is not None:
                if not 0.0 <= latency_rate <= 1.0:
                    raise ValueError("latency_rate must be in [0, 1]")
                self._latency_rate = float(latency_rate)
            if latency_ms is not None:
                if latency_ms < 0:
                    raise ValueError("latency_ms must be >= 0")
                self._latency_ms = float(latency_ms)

    def arm_worker_kills(self, count: int = 1) -> None:
        """Arm ``count`` one-shot worker kills (delivered on the next
        ``count`` model invocations, whichever workers get there first)."""
        if count < 0:
            raise ValueError("count must be >= 0")
        with self._lock:
            self._armed_kills += int(count)

    def reset(self) -> None:
        """Zero every rate and disarm pending kills (counters are kept —
        they record what was delivered, not what is configured)."""
        with self._lock:
            self._score_error_rate = 0.0
            self._latency_rate = 0.0
            self._latency_ms = 0.0
            self._armed_kills = 0

    # ------------------------------------------------------------------
    # Injection points
    # ------------------------------------------------------------------
    def before_score(self) -> None:
        """Called by a scorer worker immediately before the model runs.

        May sleep (latency spike), raise :class:`InjectedFault` (scoring
        failure) or raise :class:`WorkerKilled` (worker death).  Kills
        take priority over error/latency draws so an armed kill is never
        starved by a high error rate.
        """
        with self._lock:
            if self._armed_kills > 0:
                self._armed_kills -= 1
                self._kills_delivered += 1
                raise WorkerKilled("fault injection: worker kill")
            delay_s = 0.0
            if self._latency_rate > 0.0 and self._latency_ms > 0.0 \
                    and self._rng.random() < self._latency_rate:
                delay_s = self._latency_ms / 1000.0
                self._injected_delays += 1
            fail = self._score_error_rate > 0.0 \
                and self._rng.random() < self._score_error_rate
            if fail:
                self._injected_errors += 1
        if delay_s > 0.0:
            time.sleep(delay_s)         # sleep outside the lock
        if fail:
            raise InjectedFault("fault injection: scoring failure")

    def tear_file(self, path) -> int:
        """Truncate ``path`` in place to half its size (minimum 1 byte),
        simulating a torn write from a crash mid-checkpoint.  Returns the
        new size.  The mangled file keeps its name, so only checksum
        verification — not existence checks — can catch it.
        """
        size = os.path.getsize(path)
        new_size = max(1, size // 2)
        with open(path, "r+b") as handle:
            handle.truncate(new_size)
        with self._lock:
            self._torn_writes += 1
        return new_size

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe view of configuration and delivery counters."""
        with self._lock:
            return {
                "score_error_rate": self._score_error_rate,
                "latency_rate": self._latency_rate,
                "latency_ms": self._latency_ms,
                "armed_kills": self._armed_kills,
                "injected_errors": self._injected_errors,
                "injected_delays": self._injected_delays,
                "kills_delivered": self._kills_delivered,
                "torn_writes": self._torn_writes,
            }
