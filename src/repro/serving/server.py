"""HTTP/JSON serving gateway: the wire protocol in front of :class:`RankingService`.

Dependency-free (stdlib ``http.server`` only).  A :class:`ServingServer`
wraps a :class:`~repro.serving.RankingService` in a threaded HTTP server —
each connection gets a handler thread, so request-level concurrency feeds
the service's :class:`~repro.serving.ScorerPool` naturally — and exposes:

========  =============  ====================================================
method    path           purpose
========  =============  ====================================================
POST      ``/rank``      rank candidates (optionally with query intent)
POST      ``/classify``  query → (sub category, top category)
GET       ``/healthz``   liveness + model inventory
GET       ``/stats``     gateway counters + per-model scorer statistics
GET       ``/models``    registry listing + the feature schema clients need
POST      ``/reload``    hot checkpoint reload from the watched directory
========  =============  ====================================================

Every error is a structured JSON body ``{"error": {"type", "message"}}``
with a 4xx status for client mistakes (malformed JSON, unknown model,
bad feature shapes) and 500 for anything unexpected — a bad request must
never take down a scorer worker or the gateway.

Run it from a checkpoint directory (see :mod:`repro.serving.checkpoint`
for the layout)::

    python -m repro.serving.server --checkpoint-dir ckpts --port 8000 --workers 4

``POST /reload`` re-scans the same directory, registering changed or new
checkpoints as fresh versions; the service retires superseded scorer pools
as traffic moves over, so reloads need no downtime.
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import numpy as np

from ..data.schema import FeatureSpec
from ..hierarchy import Taxonomy
from ..utils.serialization import _json_default
from .checkpoint import find_classifier_checkpoint, load_classifier_checkpoint, load_environment
from .registry import ModelRegistry
from .service import RankingService, candidate_batch

__all__ = ["ServingServer", "ApiError", "serve_from_directory", "main"]


class ApiError(Exception):
    """A client-visible error: HTTP status + machine-readable type."""

    def __init__(self, status: int, kind: str, message: str):
        super().__init__(message)
        self.status = status
        self.kind = kind


def _require(payload: dict, key: str):
    if key not in payload:
        raise ApiError(400, "bad_request", f"missing required field {key!r}")
    return payload[key]


def _as_array(value, dtype, field: str, ndim: int | None = None) -> np.ndarray:
    try:
        array = np.asarray(value, dtype=dtype)
    except (TypeError, ValueError) as error:
        raise ApiError(400, "bad_request",
                       f"field {field!r} is not a valid array: {error}") from None
    if ndim is not None and array.ndim != ndim:
        raise ApiError(400, "bad_request",
                       f"field {field!r} must be {ndim}-dimensional, "
                       f"got shape {array.shape}")
    return array


class _GatewayHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # The gateway holds real state (scorer pools); don't let a lingering
    # client connection on a reused address confuse a fresh server.
    allow_reuse_address = True
    gateway: "ServingServer"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serving/1.0"
    protocol_version = "HTTP/1.1"       # keep-alive for multi-request clients
    # Latency hygiene for small JSON responses on persistent connections:
    # buffer the whole response into one TCP segment and disable Nagle,
    # else the header/body write pattern triggers delayed-ACK stalls
    # (measured ~8x request latency on loopback).
    wbufsize = -1
    disable_nagle_algorithm = True

    # Route table: (method, path) -> ServingServer handler name.
    ROUTES = {
        ("POST", "/rank"): "handle_rank",
        ("POST", "/classify"): "handle_classify",
        ("GET", "/healthz"): "handle_healthz",
        ("GET", "/stats"): "handle_stats",
        ("GET", "/models"): "handle_models",
        ("POST", "/reload"): "handle_reload",
    }

    def log_message(self, format, *args):   # noqa: A002 - stdlib signature
        pass                                # the gateway keeps its own counters

    def do_GET(self):
        self._dispatch("GET")

    def do_POST(self):
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        gateway = self.server.gateway
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            # Drain the body before anything can error: on a keep-alive
            # connection an unread body would be parsed as the next
            # request line, desyncing every request after a 4xx.
            body = self._read_body() if method == "POST" else b""
            handler_name = self.ROUTES.get((method, path))
            if handler_name is None:
                if any(route_path == path for _, route_path in self.ROUTES):
                    raise ApiError(405, "method_not_allowed",
                                   f"{method} not allowed on {path}")
                raise ApiError(404, "not_found", f"unknown endpoint {path}")
            payload = self._parse_json(body) if method == "POST" else {}
            result = getattr(gateway, handler_name)(payload)
            gateway._count(error=False)
            self._send(200, result)
        except ApiError as error:
            gateway._count(error=True)
            self._send(error.status,
                       {"error": {"type": error.kind, "message": str(error)}})
        except Exception as error:          # never kill the handler thread
            gateway._count(error=True)
            self._send(500, {"error": {"type": "internal",
                                       "message": f"{type(error).__name__}: {error}"}})

    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            # Unknown framing: answer, then drop the connection rather
            # than trying to resync the stream.
            self.close_connection = True
            raise ApiError(400, "bad_request", "invalid Content-Length") from None
        return self.rfile.read(length) if length > 0 else b""

    @staticmethod
    def _parse_json(body: bytes) -> dict:
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except ValueError as error:
            raise ApiError(400, "bad_json", f"request body is not JSON: {error}") \
                from None
        if not isinstance(payload, dict):
            raise ApiError(400, "bad_json", "request body must be a JSON object")
        return payload

    def _send(self, status: int, payload: dict) -> None:
        try:
            # _json_default (shared with checkpoint serialization) turns
            # numpy arrays/scalars into plain JSON values.
            body = json.dumps(payload, default=_json_default).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass                            # client went away mid-response


class ServingServer:
    """The HTTP gateway: owns the listener, the service, and the counters.

    Parameters
    ----------
    service:
        The :class:`RankingService` to expose.  The gateway owns it —
        :meth:`close` shuts down its scorer pools too.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`port` / :attr:`url` after construction).
    checkpoint_dir / spec / taxonomy:
        When all are set, ``POST /reload`` re-scans ``checkpoint_dir``
        through :meth:`ModelRegistry.reload_from_directory`; otherwise the
        endpoint answers 400.

    The constructor binds the socket but does not serve: call
    :meth:`start` (background thread) or :meth:`serve_forever`.
    """

    def __init__(self, service: RankingService, host: str = "127.0.0.1",
                 port: int = 0, checkpoint_dir: str | Path | None = None,
                 spec: FeatureSpec | None = None,
                 taxonomy: Taxonomy | None = None):
        self.service = service
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.spec = spec
        self.taxonomy = taxonomy
        self._httpd = _GatewayHTTPServer((host, port), _Handler)
        self._httpd.gateway = self
        self._thread: threading.Thread | None = None
        self._serving = False
        self._started_at = time.monotonic()
        self._counter_lock = threading.Lock()
        self._requests = 0
        self._errors = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServingServer":
        """Serve in a background daemon thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        kwargs={"poll_interval": 0.05},
                                        daemon=True, name="ServingServer")
        self._serving = True
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._serving = True
        self._httpd.serve_forever(poll_interval=0.5)

    def close(self) -> None:
        """Stop the listener, then the service's scorer pools."""
        if self._serving:
            # shutdown() waits on an event that only serve_forever() sets;
            # calling it on a bound-but-never-served server deadlocks.
            self._httpd.shutdown()
            self._serving = False
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.service.close()

    def __enter__(self) -> "ServingServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _count(self, error: bool) -> None:
        with self._counter_lock:
            self._requests += 1
            if error:
                self._errors += 1

    def _validate_candidates(self, batch) -> None:
        """Reject schema-invalid candidates before they reach a scorer.

        Micro-batching co-batches concurrent requests: one request with a
        missing feature or out-of-range id would fail the merged batch and
        400 every innocent request coalesced with it.  When the gateway
        knows the schema (``spec``), bad requests are turned away at the
        door instead.
        """
        if self.spec is None:
            return
        expected = set(self.spec.sparse_names)
        provided = set(batch.sparse)
        if provided != expected:
            raise ApiError(400, "bad_request",
                           f"candidates.sparse must provide exactly "
                           f"{sorted(expected)}; got {sorted(provided)}")
        if batch.numeric.shape[1] != self.spec.num_numeric:
            raise ApiError(400, "bad_request",
                           f"candidates.numeric must have "
                           f"{self.spec.num_numeric} columns, "
                           f"got {batch.numeric.shape[1]}")
        for name, ids in batch.sparse.items():
            cardinality = self.spec.cardinality(name)
            if ids.size and (ids.min() < 0 or ids.max() >= cardinality):
                raise ApiError(400, "bad_request",
                               f"candidates.sparse.{name} ids must be in "
                               f"[0, {cardinality})")

    # ------------------------------------------------------------------
    # Endpoint handlers (return JSON-safe dicts; raise ApiError for 4xx)
    # ------------------------------------------------------------------
    def handle_rank(self, payload: dict) -> dict:
        candidates = _require(payload, "candidates")
        if not isinstance(candidates, dict):
            raise ApiError(400, "bad_request",
                           "'candidates' must be an object with "
                           "'numeric' and 'sparse'")
        numeric = _as_array(_require(candidates, "numeric"), np.float64,
                            "candidates.numeric")
        sparse_raw = candidates.get("sparse", {})
        if not isinstance(sparse_raw, dict):
            raise ApiError(400, "bad_request", "'candidates.sparse' must map "
                           "feature name -> id list")
        sparse = {name: _as_array(ids, np.int64, f"candidates.sparse.{name}",
                                  ndim=1)
                  for name, ids in sparse_raw.items()}
        batch = candidate_batch(numeric, sparse)
        if any(ids.shape[0] != len(batch) for ids in sparse.values()):
            raise ApiError(400, "bad_request",
                           "sparse feature lengths must match the number of "
                           f"candidate rows ({len(batch)})")
        self._validate_candidates(batch)
        query_tokens = payload.get("query_tokens")
        if query_tokens is not None:
            query_tokens = _as_array(query_tokens, np.int64, "query_tokens")
        query_lengths = payload.get("query_lengths")
        top_k = payload.get("top_k", 10)
        if not isinstance(top_k, int) or top_k <= 0:
            raise ApiError(400, "bad_request", "'top_k' must be a positive integer")
        model = payload.get("model")
        version = payload.get("version")
        if model is not None:
            # Resolve explicitly named models up front so "unknown model"
            # is a clean 404; KeyErrors raised *during* scoring (e.g. a
            # missing sparse feature) are client data errors, not routing.
            try:
                self.service.registry.entry(model, version)
            except KeyError as error:
                raise ApiError(404, "unknown_model", str(error)) from None
        try:
            response = self.service.rank(
                batch, query_tokens=query_tokens, query_lengths=query_lengths,
                top_k=top_k, model=model, version=version)
        except (KeyError, ValueError, IndexError) as error:
            raise ApiError(400, "bad_request", str(error)) from None
        return {
            "indices": response.indices,
            "scores": response.scores,
            "model_name": response.model_name,
            "model_version": response.model_version,
            "predicted_sc": response.predicted_sc,
            "predicted_tc": response.predicted_tc,
            "latency_ms": response.latency_ms,
        }

    def handle_classify(self, payload: dict) -> dict:
        if self.service.classifier is None:
            raise ApiError(400, "no_classifier",
                           "this gateway serves no query classifier")
        tokens = _as_array(_require(payload, "tokens"), np.int64, "tokens")
        if tokens.ndim != 1:
            raise ApiError(400, "bad_request",
                           "'tokens' must be one query's token id list")
        lengths = payload.get("lengths")
        try:
            sc, tc = self.service.classify_query(tokens, lengths)
        except (KeyError, ValueError, IndexError) as error:
            raise ApiError(400, "bad_request", str(error)) from None
        result = {"sc": sc, "tc": tc}
        if payload.get("probs"):
            token_matrix = tokens[None, :]
            length_vec = np.asarray([lengths if lengths is not None
                                     else tokens.shape[0]], dtype=np.int64)
            result["probs"] = self.service.classifier.predict_proba(
                token_matrix, length_vec)[0]
        return result

    def handle_healthz(self, payload: dict) -> dict:
        return {
            "status": "ok",
            "uptime_s": time.monotonic() - self._started_at,
            "models": self.service.registry.names(),
            "workers": self.service.num_workers,
            "requests": self._requests,
            "errors": self._errors,
        }

    def handle_stats(self, payload: dict) -> dict:
        scorers = {}
        for key, stats in self.service.stats().items():
            entry = asdict(stats)
            entry["mean_batch_rows"] = stats.mean_batch_rows
            entry["throughput_rows_per_s"] = stats.throughput_rows_per_s
            scorers[key] = entry
        return {
            "server": {
                "requests": self._requests,
                "errors": self._errors,
                "uptime_s": time.monotonic() - self._started_at,
            },
            "scorers": scorers,
        }

    def handle_models(self, payload: dict) -> dict:
        result = {
            "models": [{"name": entry.name, "version": entry.version,
                        "metadata": entry.metadata}
                       for entry in self.service.registry.entries()],
        }
        if self.spec is not None:
            # The feature schema a client (or load generator) needs to
            # construct valid /rank candidates.
            result["spec"] = {
                "numeric": self.spec.numeric_names,
                "sparse": {f.name: f.cardinality for f in self.spec.sparse},
            }
        return result

    def handle_reload(self, payload: dict) -> dict:
        if self.checkpoint_dir is None or self.spec is None \
                or self.taxonomy is None:
            raise ApiError(400, "no_checkpoint_dir",
                           "this gateway was not started from a checkpoint "
                           "directory; nothing to reload")
        registered = self.service.registry.reload_from_directory(
            self.checkpoint_dir, self.spec, self.taxonomy)
        return {
            "registered": [{"name": entry.name, "version": entry.version}
                           for entry in registered],
            "models": self.service.registry.names(),
        }


# ----------------------------------------------------------------------
# Boot from a checkpoint directory
# ----------------------------------------------------------------------
def serve_from_directory(checkpoint_dir: str | Path, host: str = "127.0.0.1",
                         port: int = 0, num_workers: int = 4,
                         max_batch_rows: int = 256, max_wait_ms: float = 2.0,
                         default_model: str | None = None) -> ServingServer:
    """Build a ready-to-start gateway from a checkpoint directory.

    Reads the ``environment.json`` bundle, registers every ranking
    checkpoint, and loads the classifier checkpoint when one is present
    (see :mod:`repro.serving.checkpoint` for the layout).
    """
    checkpoint_dir = Path(checkpoint_dir)
    spec, taxonomy = load_environment(checkpoint_dir)
    registry = ModelRegistry()
    registered = registry.reload_from_directory(checkpoint_dir, spec, taxonomy)
    if not registered:
        raise FileNotFoundError(
            f"no ranking-model checkpoints found in {checkpoint_dir}")
    classifier = None
    classifier_path = find_classifier_checkpoint(checkpoint_dir)
    if classifier_path is not None:
        classifier = load_classifier_checkpoint(classifier_path)
    if default_model is None and len(registry.names()) == 1:
        default_model = registry.names()[0]
    service = RankingService(registry, default_model=default_model,
                             classifier=classifier, taxonomy=taxonomy,
                             max_batch_rows=max_batch_rows,
                             max_wait_ms=max_wait_ms, num_workers=num_workers)
    return ServingServer(service, host=host, port=port,
                         checkpoint_dir=checkpoint_dir, spec=spec,
                         taxonomy=taxonomy)


def _bootstrap_demo(checkpoint_dir: Path) -> None:
    """Populate an empty checkpoint directory with a quick demo deployment.

    Builds the CI-scale synthetic world, an untrained paper-architecture
    ranker, and a query classifier, and checkpoints all three artifacts —
    enough for the CI serving smoke job (and a first ``curl``) without a
    training run.  Imports training-side code, so it lives behind the
    ``--bootstrap-demo`` flag instead of the serving path proper.
    """
    from ..experiments.common import CI, build_environment, model_config
    from ..models import build_model
    from ..querycat import QueryCategoryClassifier, QueryClassifierConfig
    from .checkpoint import (save_checkpoint, save_classifier_checkpoint,
                             save_environment)

    env = build_environment(CI)
    model = build_model("adv-hsc-moe", env.dataset.spec, env.taxonomy,
                        model_config(CI), train_dataset=env.train)
    classifier = QueryCategoryClassifier(
        env.log.queries.vocab_size, env.taxonomy.max_sc_id() + 1,
        QueryClassifierConfig(embedding_dim=8, hidden_size=12))
    save_environment(checkpoint_dir, env.dataset.spec, env.taxonomy)
    save_checkpoint(model, checkpoint_dir / "ranker", "adv-hsc-moe")
    save_classifier_checkpoint(classifier, checkpoint_dir / "querycat")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.server",
        description="Serve ranking models over HTTP from a checkpoint directory.")
    parser.add_argument("--checkpoint-dir", required=True,
                        help="directory with environment.json + checkpoints")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000,
                        help="0 picks an ephemeral port")
    parser.add_argument("--workers", type=int, default=4,
                        help="scoring workers per model (ScorerPool size)")
    parser.add_argument("--max-batch-rows", type=int, default=256)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--default-model", default=None,
                        help="model name for unrouted traffic "
                             "(default: the sole registered name)")
    parser.add_argument("--bootstrap-demo", action="store_true",
                        help="if the directory has no environment.json, fill "
                             "it with a CI-scale demo deployment first")
    args = parser.parse_args(argv)

    checkpoint_dir = Path(args.checkpoint_dir)
    if args.bootstrap_demo and not (checkpoint_dir / "environment.json").exists():
        print(f"bootstrapping demo checkpoints into {checkpoint_dir} ...")
        _bootstrap_demo(checkpoint_dir)

    server = serve_from_directory(
        checkpoint_dir, host=args.host, port=args.port,
        num_workers=args.workers, max_batch_rows=args.max_batch_rows,
        max_wait_ms=args.max_wait_ms, default_model=args.default_model)
    names = ", ".join(server.service.registry.names())
    print(f"serving {names} on {server.url} "
          f"({args.workers} scoring workers; POST /reload to hot-reload)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
