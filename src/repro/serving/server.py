"""HTTP/JSON serving gateway: the wire protocol in front of :class:`RankingService`.

Dependency-free (stdlib only).  The gateway is three layers, composed
here:

* :mod:`repro.serving.transport` — connection I/O.  The default
  ``selector`` backend multiplexes every socket through one
  :mod:`selectors` event loop (non-blocking reads/writes, keep-alive,
  idle-timeout reaping — a slow client costs a buffer, not a thread);
  ``threaded`` keeps the PR 4 thread-per-connection front-end as the
  parity baseline.
* :mod:`repro.serving.protocol` — incremental HTTP/1.1 framing that
  tolerates partial reads and pipelining, with structured 4xx answers
  for framing violations (oversized bodies → 413, stalled slow-loris
  requests → 408).
* :mod:`repro.serving.handlers` — the transport-agnostic JSON dispatch
  both backends drive:

========  =============  ====================================================
method    path           purpose
========  =============  ====================================================
POST      ``/rank``      rank candidates (optionally with query intent)
POST      ``/classify``  query → (sub category, top category)
GET       ``/healthz``   liveness + model inventory
GET       ``/stats``     gateway + connection counters, latency histograms,
                         per-model scorers
GET       ``/models``    registry listing + the feature schema clients need
GET       ``/metrics``   Prometheus text exposition of the same counters
POST      ``/reload``    hot checkpoint reload from the watched directory
POST      ``/faults``    chaos-test fault injection (``--enable-fault-injection``)
========  =============  ====================================================

Every error is a structured JSON body ``{"error": {"type", "message"}}``
with a 4xx status for client mistakes (malformed JSON, unknown model,
bad feature shapes) and 500 for anything unexpected — a bad request must
never take down a scorer worker or the gateway.

The gateway protects itself under overload: each model pool carries an
admission bound in queued scoring rows, and requests past it are shed
with ``429`` + a ``Retry-After`` derived from the pool's measured drain
rate (see ``--max-backlog-rows``).  On SIGTERM/SIGINT it drains
gracefully — stops accepting, answers every accepted request (bounded by
``--drain-deadline``), and marks final responses ``Connection: close``.

It is also fault-tolerant by construction: requests may carry an
``X-Deadline-Ms`` budget (expired ones answer a structured 504 instead
of being scored), dead scoring workers are respawned by a pool
supervisor, a per-model circuit breaker (``--breaker-*`` flags) trips to
a model-free degraded fallback when scoring keeps failing, and corrupt
checkpoints are quarantined on reload while the last good version keeps
serving.

Run it from a checkpoint directory (see :mod:`repro.serving.checkpoint`
for the layout)::

    python -m repro.serving.server --checkpoint-dir ckpts --port 8000 \\
        --workers 4 --backend selector

``POST /reload`` re-scans the same directory, registering changed or new
checkpoints as fresh versions; the service retires superseded scorer pools
as traffic moves over, so reloads need no downtime.
"""

from __future__ import annotations

import argparse
import signal
import threading
import time
from pathlib import Path

from ..data.schema import FeatureSpec
from ..hierarchy import Taxonomy
from .breaker import BreakerConfig
from .cache import ResultCache
from .checkpoint import find_classifier_checkpoint, load_classifier_checkpoint, load_environment
from .faults import FaultInjector
from .handlers import ApiError, GatewayDispatcher
from .protocol import MAX_BODY_BYTES, MAX_HEADER_BYTES
from .registry import ModelRegistry
from .service import RankingService
from .transport import (BACKENDS, DEFAULT_IDLE_TIMEOUT_S, GatewayCounters,
                        create_transport)

__all__ = ["ServingServer", "ApiError", "serve_from_directory", "main"]


class ServingServer:
    """The HTTP gateway: owns the transport, the dispatcher, and the service.

    Parameters
    ----------
    service:
        The :class:`RankingService` to expose.  The gateway owns it —
        :meth:`close` shuts down its scorer pools too.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`port` / :attr:`url` after construction).
    checkpoint_dir / spec / taxonomy:
        When all are set, ``POST /reload`` re-scans ``checkpoint_dir``
        through :meth:`ModelRegistry.reload_from_directory`; otherwise the
        endpoint answers 400.
    backend:
        ``"selector"`` (event-loop front-end, the default) or
        ``"threaded"`` (thread per connection, the PR 4 baseline).  Both
        serve the identical protocol and dispatch layers.
    idle_timeout_s:
        Keep-alive connections idle this long are closed; a request that
        stalls mid-frame (slow loris) is answered with a 408 first.
    max_body_bytes:
        Request bodies beyond this answer with a structured 413.
    dispatch_workers:
        Selector backend only: threads running endpoint handlers (they
        block on scorer futures; connection count is not bounded by this).
    drain_deadline_s:
        Bound on the graceful drain: on :meth:`close` (and on SIGTERM via
        :meth:`install_signal_handlers`) the gateway stops accepting and
        answers every in-flight request, but cuts whatever cannot finish
        within this many seconds.
    gateway_shards:
        Selector backend only: run this many independent selector loops
        accepting on the same port (``SO_REUSEPORT`` siblings, or one
        ``dup()``-shared acceptor where unavailable).  All shards drive
        one dispatcher/registry, so hot reload stays atomic across them.
    quantized:
        Serve int8 quantized plans: ``POST /reload`` re-scans the
        checkpoint directory through the ``.quant.npz`` artifacts, so a
        quantized gateway stays quantized across hot reloads.

    The constructor binds the socket but does not serve: call
    :meth:`start` (background thread) or :meth:`serve_forever`.
    """

    def __init__(self, service: RankingService, host: str = "127.0.0.1",
                 port: int = 0, checkpoint_dir: str | Path | None = None,
                 spec: FeatureSpec | None = None,
                 taxonomy: Taxonomy | None = None,
                 backend: str = "selector",
                 idle_timeout_s: float = DEFAULT_IDLE_TIMEOUT_S,
                 max_body_bytes: int = MAX_BODY_BYTES,
                 max_header_bytes: int = MAX_HEADER_BYTES,
                 dispatch_workers: int = 8,
                 drain_deadline_s: float = 10.0,
                 gateway_shards: int = 1,
                 quantized: bool = False):
        self.service = service
        self.backend = backend
        self.gateway_shards = gateway_shards
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.spec = spec
        self.taxonomy = taxonomy
        self.quantized = bool(quantized)
        self.counters = GatewayCounters()
        self.dispatcher = GatewayDispatcher(
            service, spec=spec, taxonomy=taxonomy,
            checkpoint_dir=checkpoint_dir,
            connection_stats=self.counters.snapshot,
            quantized=quantized)
        self._transport = create_transport(
            backend, host, port, self.dispatcher, counters=self.counters,
            idle_timeout_s=idle_timeout_s, max_body_bytes=max_body_bytes,
            max_header_bytes=max_header_bytes,
            dispatch_workers=dispatch_workers,
            shards=gateway_shards)
        self.drain_deadline_s = drain_deadline_s
        self._thread: threading.Thread | None = None
        self._serving = False
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._transport.server_address[0]

    @property
    def port(self) -> int:
        return self._transport.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServingServer":
        """Serve in a background daemon thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._transport.serve_forever,
                                        kwargs={"poll_interval": 0.05},
                                        daemon=True, name="ServingServer")
        self._serving = True
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._serving = True
        self._transport.serve_forever(poll_interval=0.5)

    def request_drain(self) -> None:
        """Start a graceful stop without blocking (signal-handler safe).

        Stops accepting immediately; a helper thread rides out the
        drain deadline and then forces the loop down, so
        :meth:`serve_forever` (and :meth:`close` after it) return on
        their own.  Idempotent — repeated signals don't stack threads
        that matter (drain/shutdown are both idempotent).
        """
        threading.Thread(target=self._transport.drain,
                         args=(self.drain_deadline_s,),
                         name="gateway-drain-deadline", daemon=True).start()

    def install_signal_handlers(self) -> dict:
        """Route SIGTERM/SIGINT to :meth:`request_drain`.

        Must run on the main thread (CPython restriction).  Returns the
        previous handlers keyed by signal number so tests (and embedders)
        can restore them.
        """
        previous = {}

        def _handle(signum, frame):
            del frame
            self.request_drain()

        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _handle)
        return previous

    def close(self) -> None:
        """Drain in-flight requests, stop the listener, then the pools.

        Previously this called ``shutdown()`` directly, which tore the
        loop down with accepted requests still being scored — their
        connections were closed with no response.  Now every accepted
        request is answered first, bounded by ``drain_deadline_s``.
        """
        if self._serving:
            # drain() ends with shutdown(), which waits for the serve
            # loop to exit; calling either on a bound-but-never-served
            # transport would deadlock.
            self._transport.drain(self.drain_deadline_s)
            self._serving = False
        self._transport.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.service.close()

    def __enter__(self) -> "ServingServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Boot from a checkpoint directory
# ----------------------------------------------------------------------
def serve_from_directory(checkpoint_dir: str | Path, host: str = "127.0.0.1",
                         port: int = 0, num_workers: int = 4,
                         max_batch_rows: int = 256, max_wait_ms: float = 2.0,
                         default_model: str | None = None,
                         backend: str = "selector",
                         adaptive_batch: bool = True,
                         min_batch_rows: int = 8,
                         idle_timeout_s: float = DEFAULT_IDLE_TIMEOUT_S,
                         dispatch_workers: int = 8,
                         max_backlog_rows: int | None = 4096,
                         drain_deadline_s: float = 10.0,
                         breaker_config: BreakerConfig | None = None,
                         enable_fault_injection: bool = False,
                         cache_entries: int = 4096,
                         cache_ttl_s: float = 30.0,
                         split_precompute: bool = False,
                         scorer_processes: int = 0,
                         gateway_shards: int = 1,
                         process_start_method: str | None = None,
                         quantized: bool = False) -> ServingServer:
    """Build a ready-to-start gateway from a checkpoint directory.

    Reads the ``environment.json`` bundle, registers every ranking
    checkpoint, and loads the classifier checkpoint when one is present
    (see :mod:`repro.serving.checkpoint` for the layout).

    Unlike the bare library classes (which default to unbounded for
    back-compat), a gateway booted this way always serves with an
    admission bound: ``max_backlog_rows`` rows of queued scoring work per
    model pool, beyond which requests are shed with a 429 and a
    ``Retry-After`` derived from the pool's drain rate.  Pass ``None`` to
    opt out.  The same always-protected default applies to the circuit
    breaker: every routed model gets one (``breaker_config`` overrides
    the default tuning), so repeated model failures degrade to the
    model-free fallback instead of a 500 storm.

    A directory-booted gateway also serves with a version-keyed result
    cache by default (``cache_entries`` LRU entries, ``cache_ttl_s``
    seconds each; either 0 disables it): repeat ``(model version,
    intent, candidate features)`` requests answer from the cache,
    bit-identical per version, and a hot reload invalidates structurally
    because the version lives in the key.  ``split_precompute`` opts the
    supported models into the split compiled plan (item-side first-layer
    prefixes memoized per item — see
    :class:`~repro.nn.infer.SplitMLP`).

    ``enable_fault_injection`` builds a
    :class:`~repro.serving.faults.FaultInjector` into the service and
    routes ``POST /faults`` to it — chaos tests only; never enable it on
    a gateway you are not deliberately breaking.

    ``scorer_processes`` > 0 moves scoring into that many worker
    *processes* per model (hydrated from this same checkpoint directory
    with memory-mapped shared weights — see
    :mod:`repro.serving.procscorer`); ``--workers`` is ignored for such
    models since the pool runs one proxy thread per process.
    ``gateway_shards`` > 1 (selector backend only) runs that many
    selector loops accepting on one port via ``SO_REUSEPORT``.

    ``quantized`` hydrates every ranking checkpoint from its int8
    ``.quant.npz`` artifact (per-output-channel symmetric weights, f32
    scales and accumulation — see :mod:`repro.nn.quantize`) instead of
    the full-precision weights, which are never loaded; a checkpoint
    without a quantized artifact is quarantined, never silently served
    at full precision.  Composes with ``scorer_processes``: worker
    processes mmap one shared copy of the int8 tensors.
    """
    checkpoint_dir = Path(checkpoint_dir)
    spec, taxonomy = load_environment(checkpoint_dir)
    registry = ModelRegistry()
    registered = registry.reload_from_directory(checkpoint_dir, spec, taxonomy,
                                                quantized=quantized)
    if not registered:
        detail = (" with .quant.npz artifacts" if quantized else "")
        raise FileNotFoundError(
            f"no ranking-model checkpoints{detail} found in {checkpoint_dir}")
    classifier = None
    classifier_path = find_classifier_checkpoint(checkpoint_dir)
    if classifier_path is not None:
        classifier = load_classifier_checkpoint(classifier_path)
    if default_model is None and len(registry.names()) == 1:
        default_model = registry.names()[0]
    result_cache = (ResultCache(max_entries=cache_entries, ttl_s=cache_ttl_s)
                    if cache_entries > 0 and cache_ttl_s > 0 else None)
    service = RankingService(registry, default_model=default_model,
                             classifier=classifier, taxonomy=taxonomy,
                             max_batch_rows=max_batch_rows,
                             max_wait_ms=max_wait_ms, num_workers=num_workers,
                             adaptive_batch=adaptive_batch,
                             min_batch_rows=min_batch_rows,
                             max_backlog_rows=max_backlog_rows,
                             breaker_config=breaker_config or BreakerConfig(),
                             spec=spec,
                             fault_injector=FaultInjector()
                             if enable_fault_injection else None,
                             result_cache=result_cache,
                             split_precompute=split_precompute,
                             scorer_processes=scorer_processes,
                             environment_dir=checkpoint_dir
                             if scorer_processes > 0 else None,
                             process_start_method=process_start_method)
    return ServingServer(service, host=host, port=port,
                         checkpoint_dir=checkpoint_dir, spec=spec,
                         taxonomy=taxonomy, backend=backend,
                         idle_timeout_s=idle_timeout_s,
                         dispatch_workers=dispatch_workers,
                         drain_deadline_s=drain_deadline_s,
                         gateway_shards=gateway_shards,
                         quantized=quantized)


def _bootstrap_demo(checkpoint_dir: Path) -> None:
    """Populate an empty checkpoint directory with a quick demo deployment.

    Builds the CI-scale synthetic world, an untrained paper-architecture
    ranker, and a query classifier, and checkpoints all three artifacts —
    enough for the CI serving smoke job (and a first ``curl``) without a
    training run.  Imports training-side code, so it lives behind the
    ``--bootstrap-demo`` flag instead of the serving path proper.
    """
    from .. import nn
    from ..experiments.common import CI, build_environment, model_config
    from ..models import build_model
    from ..querycat import QueryCategoryClassifier, QueryClassifierConfig
    from .checkpoint import (save_checkpoint, save_classifier_checkpoint,
                             save_environment)

    env = build_environment(CI)
    # Build at the scale's dtype (float32), matching train_and_eval — int8
    # quantization below requires float32 parameters.
    with nn.default_dtype(CI.np_dtype):
        model = build_model("adv-hsc-moe", env.dataset.spec, env.taxonomy,
                            model_config(CI), train_dataset=env.train)
        classifier = QueryCategoryClassifier(
            env.log.queries.vocab_size, env.taxonomy.max_sc_id() + 1,
            QueryClassifierConfig(embedding_dim=8, hidden_size=12))
    save_environment(checkpoint_dir, env.dataset.spec, env.taxonomy)
    # quantize=True also writes the int8 .quant.npz sidecar (calibrated
    # on a held-out batch), so the same demo directory boots both a
    # full-precision gateway and a --quantized one (the CI parity gate
    # serves both from one bootstrap).
    save_checkpoint(model, checkpoint_dir / "ranker", "adv-hsc-moe",
                    quantize=True,
                    calibration_batch=next(
                        env.train.iter_batches(256, shuffle=False)))
    save_classifier_checkpoint(classifier, checkpoint_dir / "querycat")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.server",
        description="Serve ranking models over HTTP from a checkpoint directory.")
    parser.add_argument("--checkpoint-dir", required=True,
                        help="directory with environment.json + checkpoints")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000,
                        help="0 picks an ephemeral port")
    parser.add_argument("--backend", choices=sorted(BACKENDS),
                        default="selector",
                        help="connection front-end: the selector event loop "
                             "(default; scales to hundreds of sockets) or "
                             "the thread-per-connection fallback")
    parser.add_argument("--workers", type=int, default=4,
                        help="scoring workers per model (ScorerPool size)")
    parser.add_argument("--scorer-processes", type=int, default=0,
                        help="score in this many worker processes per model "
                             "(each hydrates the checkpoint with mmap-shared "
                             "weights; 0 = in-process threads, the default). "
                             "Overrides --workers for checkpointed models")
    parser.add_argument("--gateway-shards", type=int, default=1,
                        help="selector backend: run this many event loops "
                             "accepting on one port via SO_REUSEPORT "
                             "(dup()-shared acceptor fallback); hot reload "
                             "stays atomic across shards")
    parser.add_argument("--dispatch-workers", type=int, default=8,
                        help="selector backend: threads running endpoint "
                             "handlers")
    parser.add_argument("--max-batch-rows", type=int, default=256,
                        help="per-worker micro-batch row cap (the adaptive "
                             "policy's upper clamp)")
    parser.add_argument("--min-batch-rows", type=int, default=8,
                        help="adaptive policy's lower clamp")
    parser.add_argument("--static-batch", action="store_true",
                        help="disable the adaptive micro-batch cap and use "
                             "--max-batch-rows as a fixed per-worker cap")
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--idle-timeout", type=float,
                        default=DEFAULT_IDLE_TIMEOUT_S,
                        help="close keep-alive connections idle this many "
                             "seconds")
    parser.add_argument("--max-backlog-rows", type=int, default=4096,
                        help="per-model admission bound in queued scoring "
                             "rows; past it requests are shed with 429 + "
                             "Retry-After (0 disables shedding)")
    parser.add_argument("--drain-deadline", type=float, default=10.0,
                        help="seconds a SIGTERM/SIGINT graceful drain may "
                             "spend answering in-flight requests before the "
                             "loop is forced down")
    parser.add_argument("--breaker-window", type=float, default=30.0,
                        help="circuit breaker: rolling window (seconds) the "
                             "failure ratio is computed over")
    parser.add_argument("--breaker-threshold", type=float, default=0.5,
                        help="circuit breaker: failure ratio that opens it "
                             "(model failures / requests over the window)")
    parser.add_argument("--breaker-min-requests", type=int, default=10,
                        help="circuit breaker: minimum windowed requests "
                             "before the ratio can open it")
    parser.add_argument("--breaker-cooldown", type=float, default=5.0,
                        help="circuit breaker: seconds open before half-open "
                             "probes may test the model again")
    parser.add_argument("--cache-entries", type=int, default=4096,
                        help="result cache capacity in entries, keyed by "
                             "(model version, intent, candidate features) — "
                             "hot reload invalidates structurally "
                             "(0 disables the cache)")
    parser.add_argument("--cache-ttl-s", type=float, default=30.0,
                        help="result cache entry time-to-live in seconds "
                             "(0 disables the cache)")
    parser.add_argument("--quantized", action="store_true",
                        help="serve int8 quantized plans: hydrate every "
                             "ranking checkpoint from its .quant.npz "
                             "artifact (per-channel symmetric int8 weights, "
                             "f32 scales/accumulation) without loading the "
                             "full-precision weights; checkpoints lacking "
                             "the artifact are quarantined")
    parser.add_argument("--split-precompute", action="store_true",
                        help="split each supported model's compiled plan "
                             "into a memoized query-independent item prefix "
                             "plus a per-request query suffix (float "
                             "rounding may differ from the unsplit plan at "
                             "~1e-10)")
    parser.add_argument("--enable-fault-injection", action="store_true",
                        help="route POST /faults to a live fault injector "
                             "(chaos testing only — injects scoring errors, "
                             "latency, worker kills, and torn checkpoint "
                             "writes on demand)")
    parser.add_argument("--default-model", default=None,
                        help="model name for unrouted traffic "
                             "(default: the sole registered name)")
    parser.add_argument("--bootstrap-demo", action="store_true",
                        help="if the directory has no environment.json, fill "
                             "it with a CI-scale demo deployment first")
    args = parser.parse_args(argv)

    checkpoint_dir = Path(args.checkpoint_dir)
    if args.bootstrap_demo and not (checkpoint_dir / "environment.json").exists():
        print(f"bootstrapping demo checkpoints into {checkpoint_dir} ...")
        _bootstrap_demo(checkpoint_dir)

    server = serve_from_directory(
        checkpoint_dir, host=args.host, port=args.port,
        num_workers=args.workers, max_batch_rows=args.max_batch_rows,
        max_wait_ms=args.max_wait_ms, default_model=args.default_model,
        backend=args.backend, adaptive_batch=not args.static_batch,
        min_batch_rows=args.min_batch_rows,
        idle_timeout_s=args.idle_timeout,
        dispatch_workers=args.dispatch_workers,
        max_backlog_rows=args.max_backlog_rows or None,
        drain_deadline_s=args.drain_deadline,
        breaker_config=BreakerConfig(
            window_s=args.breaker_window,
            failure_threshold=args.breaker_threshold,
            min_requests=args.breaker_min_requests,
            cooldown_s=args.breaker_cooldown),
        enable_fault_injection=args.enable_fault_injection,
        cache_entries=args.cache_entries,
        cache_ttl_s=args.cache_ttl_s,
        split_precompute=args.split_precompute,
        scorer_processes=args.scorer_processes,
        gateway_shards=args.gateway_shards,
        quantized=args.quantized)
    server.install_signal_handlers()
    names = ", ".join(server.service.registry.names())
    cap = ("static" if args.static_batch
           else f"adaptive ≤{args.max_batch_rows}")
    backlog = (f"shed past {args.max_backlog_rows} backlog rows"
               if args.max_backlog_rows else "no admission bound")
    cache = (f"result cache {args.cache_entries} entries/"
             f"{args.cache_ttl_s:g}s TTL"
             if args.cache_entries > 0 and args.cache_ttl_s > 0
             else "result cache off")
    split = ", split precompute" if args.split_precompute else ""
    quant = ", int8 quantized plans" if args.quantized else ""
    faults = ", FAULT INJECTION ENABLED" if args.enable_fault_injection else ""
    scale = ""
    if args.scorer_processes > 0:
        scale += f", {args.scorer_processes} scorer processes"
    if args.gateway_shards > 1:
        scale += f", {args.gateway_shards} gateway shards"
    print(f"serving {names} on {server.url} "
          f"({args.backend} backend, {args.workers} scoring workers{scale}, "
          f"{cap} batch cap, {backlog}, {cache}{split}{quant}, "
          f"breaker opens at {args.breaker_threshold:g} failure ratio{faults}; "
          f"GET /metrics for Prometheus, POST /reload to hot-reload)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        # SIGTERM lands here too: the handler drains the transport, the
        # serve loop returns, and close() answers nothing is left before
        # shutting the scorer pools.
        server.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
