"""Incremental HTTP/1.1 framing for the serving gateway.

This is the protocol layer of the three-layer gateway split: it turns a
byte stream into complete requests and JSON payloads back into complete
response segments, and knows nothing about sockets (that is
:mod:`repro.serving.transport`) or what the requests mean (that is
:mod:`repro.serving.handlers`).

:class:`RequestParser` is a push parser: the transport feeds it whatever
``recv`` returned — a byte, half a header line, three pipelined requests
in one segment — and gets back every request completed so far.  Framing
violations raise :class:`ProtocolError`, which carries the structured
error body the gateway answers with before closing the connection:
malformed framing means the byte stream can no longer be trusted, so
unlike an application-level :class:`~repro.serving.handlers.ApiError`
the connection never survives one.

The body-before-error ordering the threaded gateway pinned in PR 4 is
structural here: a request object exists only once its body has been
consumed from the stream, so a 4xx response can never leave an unread
body behind to desync the next keep-alive request.

:func:`encode_response` preserves the other PR 4 framing decision: every
response is rendered into one ``bytes`` segment (status line, headers,
and body together), so a single ``send`` path never produces the
header/body write split that triggers delayed-ACK stalls on persistent
connections.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from http.client import responses as _REASONS

from ..utils.serialization import _json_default

__all__ = ["ProtocolError", "Request", "RequestParser", "encode_json",
           "encode_body", "encode_head", "encode_response", "encode_error",
           "validate_content_length", "MAX_HEADER_BYTES", "MAX_BODY_BYTES",
           "DEADLINE_HEADER", "parse_deadline_ms"]

MAX_HEADER_BYTES = 16 * 1024            # request line + all headers
MAX_BODY_BYTES = 8 * 1024 * 1024        # JSON candidate payloads are small

_SERVER_NAME = "repro-serving/2.0"
_SUPPORTED_VERSIONS = {"HTTP/1.0", "HTTP/1.1"}


class ProtocolError(Exception):
    """A framing violation: answer with ``status`` and close the connection.

    ``kind``/``message`` mirror :class:`~repro.serving.handlers.ApiError`
    so clients see the same structured ``{"error": {type, message}}``
    body for protocol and application errors alike.  When raised from
    :meth:`RequestParser.feed`, ``completed`` carries the requests the
    same ``feed`` call finished *before* the stream went bad — a
    pipelining client is owed their responses ahead of the error.
    """

    def __init__(self, status: int, kind: str, message: str):
        super().__init__(message)
        self.status = status
        self.kind = kind
        self.completed: list = []


def validate_content_length(raw: str | None,
                            max_body_bytes: int = MAX_BODY_BYTES) -> int:
    """Validate a Content-Length header value; shared by both transports
    so their 400/413 semantics (and error bodies) cannot drift."""
    if raw is None:
        return 0
    try:
        length = int(raw)
        if length < 0:
            raise ValueError
    except (TypeError, ValueError):
        raise ProtocolError(400, "bad_request",
                            f"invalid Content-Length {raw!r}") from None
    if length > max_body_bytes:
        raise ProtocolError(413, "payload_too_large",
                            f"request body of {length} bytes exceeds the "
                            f"{max_body_bytes} byte limit")
    return length


DEADLINE_HEADER = "x-deadline-ms"


def parse_deadline_ms(headers: dict[str, str]) -> float | None:
    """Deadline budget in ms from lowercased ``headers``, or None.

    Lenient by design: a malformed or non-positive value reads as "no
    deadline" rather than a 400 — a client bug in an optional
    latency-hygiene header should degrade to the pre-deadline behavior,
    not turn every request into an error.
    """
    raw = headers.get(DEADLINE_HEADER)
    if raw is None:
        return None
    try:
        value = float(raw)
    except (TypeError, ValueError):
        return None
    return value if value > 0 else None


@dataclass
class Request:
    """One fully framed HTTP request (body already consumed).

    ``received_at`` is the :func:`time.monotonic` instant the request was
    completed off the wire — the anchor the deadline budget
    (``X-Deadline-Ms``) counts down from.  The parser stamps it when the
    head finishes parsing, so queueing *inside* the gateway (dispatch
    backlog, scorer queue) counts against the budget but client-side
    send time does not.
    """

    method: str
    target: str                         # raw request target (may carry ?query)
    version: str
    headers: dict[str, str]             # header names lowercased
    body: bytes = b""
    received_at: float = field(default_factory=time.monotonic)

    @property
    def deadline(self) -> float | None:
        """Absolute monotonic deadline, or None without a (valid) budget."""
        budget_ms = parse_deadline_ms(self.headers)
        if budget_ms is None:
            return None
        return self.received_at + budget_ms / 1000.0

    @property
    def path(self) -> str:
        """Route path: target without query string or trailing slash."""
        return self.target.split("?", 1)[0].rstrip("/") or "/"

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 defaults to persistent; 1.0 must opt in."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


class RequestParser:
    """Push parser: ``feed(data)`` returns every request completed so far.

    Tolerates arbitrary fragmentation (slow clients trickling bytes) and
    arbitrary coalescing (pipelined requests arriving in one segment).
    After a :class:`ProtocolError` the parser refuses further input —
    the stream is desynced and the transport must close the connection.
    """

    def __init__(self, max_header_bytes: int = MAX_HEADER_BYTES,
                 max_body_bytes: int = MAX_BODY_BYTES):
        self._max_header_bytes = max_header_bytes
        self._max_body_bytes = max_body_bytes
        self._buffer = bytearray()
        self._pending: Request | None = None    # headers parsed, body incomplete
        self._body_remaining = 0
        self._dead = False

    @property
    def mid_request(self) -> bool:
        """True when a request has started arriving but is not complete —
        the idle-timeout reaper uses this to distinguish a slow-loris
        stall (answer 408) from a quiet keep-alive connection (just
        close)."""
        return bool(self._buffer) or self._pending is not None

    def feed(self, data: bytes) -> list[Request]:
        """Consume ``data``; return the requests it completed (maybe none).

        A framing violation raises :class:`ProtocolError` with any
        requests this call completed first attached as ``.completed`` —
        they were validly framed and must still be answered, in order,
        before the error response.
        """
        if self._dead:
            raise ProtocolError(400, "bad_request",
                                "connection already failed framing")
        self._buffer.extend(data)
        completed: list[Request] = []
        try:
            while True:
                request = self._pump()
                if request is None:
                    return completed
                completed.append(request)
        except ProtocolError as error:
            self._dead = True
            error.completed = completed
            raise

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def _pump(self) -> Request | None:
        if self._pending is None and not self._parse_head():
            return None
        request = self._pending
        assert request is not None
        if self._body_remaining > len(self._buffer):
            return None
        if self._body_remaining:
            request.body = bytes(self._buffer[:self._body_remaining])
            del self._buffer[:self._body_remaining]
            self._body_remaining = 0
        self._pending = None
        return request

    def _parse_head(self) -> bool:
        """Parse the request line + headers once fully buffered."""
        # Tolerate blank lines between keep-alive requests (RFC 9112
        # §2.2), as http.server does.  Stripped from the buffer *before*
        # head framing: a leading CRLF pair would otherwise read as an
        # empty head and stall the complete request queued behind it.
        while self._buffer[:2] == b"\r\n":
            del self._buffer[:2]
        end = self._buffer.find(b"\r\n\r\n")
        if end < 0:
            if len(self._buffer) > self._max_header_bytes:
                raise ProtocolError(431, "headers_too_large",
                                    f"request head exceeds "
                                    f"{self._max_header_bytes} bytes")
            return False
        head = bytes(self._buffer[:end])
        if len(head) > self._max_header_bytes:
            raise ProtocolError(431, "headers_too_large",
                                f"request head exceeds "
                                f"{self._max_header_bytes} bytes")
        del self._buffer[:end + 4]
        try:
            lines = head.decode("iso-8859-1").split("\r\n")
        except UnicodeDecodeError:      # iso-8859-1 never fails; defensive
            raise ProtocolError(400, "bad_request",
                                "request head is not decodable") from None
        parts = lines[0].split()
        if len(parts) != 3:
            raise ProtocolError(400, "bad_request",
                                f"malformed request line {lines[0]!r}")
        method, target, version = parts
        if version not in _SUPPORTED_VERSIONS:
            raise ProtocolError(505, "http_version_not_supported",
                                f"unsupported protocol version {version!r}")
        headers = self._parse_headers(lines[1:])
        self._pending = Request(method=method.upper(), target=target,
                                version=version, headers=headers)
        self._body_remaining = self._content_length(headers)
        return True

    @staticmethod
    def _parse_headers(lines: list[str]) -> dict[str, str]:
        headers: dict[str, str] = {}
        for line in lines:
            name, sep, value = line.partition(":")
            if not sep or not name or name != name.strip():
                raise ProtocolError(400, "bad_request",
                                    f"malformed header line {line!r}")
            headers[name.lower()] = value.strip()
        return headers

    def _content_length(self, headers: dict[str, str]) -> int:
        if "transfer-encoding" in headers:
            # The gateway speaks Content-Length framing only; accepting a
            # request we cannot frame would desync the stream.
            raise ProtocolError(501, "unsupported_framing",
                                "chunked transfer encoding is not supported")
        return validate_content_length(headers.get("content-length"),
                                       self._max_body_bytes)


# ----------------------------------------------------------------------
# Response encoding
# ----------------------------------------------------------------------
def encode_json(payload: dict) -> bytes:
    """Render a response payload as JSON bytes.

    ``_json_default`` (shared with checkpoint serialization) turns numpy
    arrays/scalars into plain JSON values, exactly as the threaded
    gateway always has.
    """
    return json.dumps(payload, default=_json_default).encode("utf-8")


def encode_body(payload) -> tuple[bytes, str]:
    """Render a response payload: ``(body bytes, content type)``.

    Dict payloads encode as JSON; ``str``/``bytes`` pass through as
    ``text/plain`` (the ``/metrics`` exposition is text, not JSON — its
    handler overrides the content type via its extra headers).
    """
    if isinstance(payload, bytes):
        return payload, "text/plain; charset=utf-8"
    if isinstance(payload, str):
        return payload.encode("utf-8"), "text/plain; charset=utf-8"
    return encode_json(payload), "application/json"


def encode_head(status: int, content_length: int, keep_alive: bool = True,
                content_type: str = "application/json",
                extra_headers: dict | None = None) -> bytes:
    """Status line + headers (through the blank line), one ``bytes``.

    Split from :func:`encode_body` so the selector transport can render
    the (possibly expensive) body on a dispatch thread while the event
    loop decides keep-alive — the loop is the only place that knows
    whether a response is the connection's last (drain mode forces
    ``Connection: close`` on final responses only).  ``extra_headers``
    may override ``Content-Type``.
    """
    extra = dict(extra_headers or {})
    content_type = extra.pop("Content-Type", content_type)
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Server: {_SERVER_NAME}",
             f"Content-Type: {content_type}",
             f"Content-Length: {content_length}"]
    lines.extend(f"{name}: {value}" for name, value in extra.items())
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("iso-8859-1")


def encode_response(status: int, payload, keep_alive: bool = True,
                    extra_headers: dict | None = None) -> bytes:
    """Render a response as one contiguous segment."""
    body, content_type = encode_body(payload)
    return encode_head(status, len(body), keep_alive=keep_alive,
                       content_type=content_type,
                       extra_headers=extra_headers) + body


def encode_error(status: int, kind: str, message: str,
                 keep_alive: bool = False) -> bytes:
    """Structured error body in the gateway's pinned error schema."""
    return encode_response(
        status, {"error": {"type": kind, "message": message}},
        keep_alive=keep_alive)
