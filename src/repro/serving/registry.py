"""Versioned model registry for the serving layer.

Production serving needs to answer "which weights are live for this
traffic?" — the registry keys every model by ``(name, version)``, hands out
the latest version by default, and can hydrate entries straight from
checkpoints so a scoring process never touches training code.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path

from ..data.schema import FeatureSpec
from ..hierarchy import Taxonomy
from .checkpoint import (ENVIRONMENT_FILENAME, CheckpointCorrupted,
                         checksum_file, load_model, load_model_quantized)

__all__ = ["ModelRegistry", "RegisteredModel"]


@dataclass(frozen=True)
class RegisteredModel:
    """One registry entry: a scorable model plus its identity/metadata."""

    name: str
    version: int
    model: object                       # anything with .score(batch)
    metadata: dict = field(default_factory=dict)

    @property
    def key(self) -> tuple[str, int]:
        return (self.name, self.version)


class ModelRegistry:
    """In-memory ``(name, version) → model`` store.

    Versions are positive integers; ``register`` without an explicit
    version auto-increments past the newest one, and lookups without a
    version resolve to the newest.  Registration and lookup are
    thread-safe (serving workers may hot-swap models under traffic).
    """

    def __init__(self):
        self._entries: dict[str, dict[int, RegisteredModel]] = {}
        self._lock = threading.Lock()
        # Serializes directory reloads: two concurrent reloads seeing the
        # same changed checkpoint must not both register it (each would
        # get a fresh auto-incremented version for identical weights).
        self._reload_lock = threading.Lock()
        # Quarantine: checkpoints whose bytes failed verification (or
        # failed to load), keyed by name.  Each entry remembers the bad
        # checksum so re-polling the directory skips the same corrupt
        # bytes silently instead of re-reporting them every sweep; a
        # repaired checkpoint (different checksum) clears the entry.
        self._quarantined: dict[str, dict] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, model, version: int | None = None,
                 metadata: dict | None = None) -> RegisteredModel:
        """Register ``model`` under ``name``; returns the new entry.

        ``version=None`` assigns the next free version.  Re-registering an
        existing (name, version) raises — versions are immutable once live.
        """
        if not name:
            raise ValueError("model name must be non-empty")
        with self._lock:
            versions = self._entries.setdefault(name, {})
            if version is None:
                version = max(versions, default=0) + 1
            version = int(version)
            if version <= 0:
                raise ValueError("version must be a positive integer")
            if version in versions:
                raise ValueError(f"{name!r} version {version} already registered")
            entry = RegisteredModel(name=name, version=version, model=model,
                                    metadata=dict(metadata or {}))
            versions[version] = entry
            return entry

    def register_checkpoint(self, name: str, path: str | Path,
                            spec: FeatureSpec, taxonomy: Taxonomy,
                            version: int | None = None,
                            metadata: dict | None = None,
                            quantized: bool = False) -> RegisteredModel:
        """Load a ranking-model checkpoint and register it.

        With ``quantized=True`` the model hydrates from the checkpoint's
        int8 artifact (see
        :func:`repro.utils.serialization.load_model_quantized`) — the
        full-precision weights are never loaded, and the entry's metadata
        records ``quantized: True`` so the scorer stats and the process
        hosts follow the same lane.
        """
        if quantized:
            model = load_model_quantized(path, spec, taxonomy)
        else:
            model = load_model(path, spec, taxonomy)
        metadata = {"checkpoint": str(path), "quantized": bool(quantized),
                    **(metadata or {})}
        return self.register(name, model, version=version, metadata=metadata)

    def reload_from_directory(self, directory: str | Path, spec: FeatureSpec,
                              taxonomy: Taxonomy,
                              quantized: bool = False) -> list[RegisteredModel]:
        """Scan a checkpoint directory; register new or changed checkpoints.

        Every ``<name>.json`` + ``<name>.npz`` sidecar/weights pair is a
        ranking-model checkpoint served under ``name`` (classifier
        checkpoints and the ``environment.json`` bundle are skipped — the
        gateway owns those).  A checkpoint is registered as a *new
        version* of its name only when the weights **bytes** changed since
        the last reload: the fingerprint is the weights checksum, so an
        in-place rewrite is detected even when it lands with the same size
        inside the filesystem's mtime granularity (where an mtime+size
        fingerprint would silently serve stale weights), and polling stays
        idempotent — unchanged bytes hash to the same fingerprint.

        Corruption-safe: a checkpoint whose bytes fail checksum
        verification or fail to load is **quarantined** (recorded in
        :meth:`quarantined`, skipped on re-polls while its bytes are
        unchanged) and the registry keeps serving whatever version of
        that name is already live — a torn write can never evict a good
        model.  Returns the newly registered entries.

        With ``quantized=True`` every checkpoint registers through its
        int8 artifact: the content fingerprint is the ``.quant.npz``
        checksum (so a torn quantized rewrite is detected exactly like a
        torn weights rewrite), and a checkpoint *without* a quantized
        artifact is quarantined — a ``--quantized`` gateway must never
        silently fall back to full-precision weights.
        """
        directory = Path(directory)
        if not directory.is_dir():
            raise FileNotFoundError(f"checkpoint directory not found: {directory}")
        registered: list[RegisteredModel] = []
        with self._reload_lock:
            for meta_path in sorted(directory.glob("*.json")):
                if meta_path.name == ENVIRONMENT_FILENAME:
                    continue
                try:
                    meta = json.loads(meta_path.read_text())
                except ValueError:
                    continue                  # not a checkpoint sidecar
                if not isinstance(meta, dict) or "model_name" not in meta:
                    continue                  # classifier / foreign JSON
                weights_path = meta_path.with_suffix(".npz")
                if not weights_path.exists():
                    continue                  # half-written checkpoint
                name = meta_path.stem
                source_path = weights_path
                if quantized:
                    source_path = meta_path.with_suffix(".quant.npz")
                    if not source_path.exists():
                        fingerprint = checksum_file(weights_path)
                        bad = self._quarantined.get(name)
                        if bad is None or bad.get("fingerprint") != fingerprint:
                            self._quarantined[name] = {
                                "path": str(source_path),
                                "fingerprint": fingerprint,
                                "reason": "quantized serving requires a "
                                          ".quant.npz artifact (save with "
                                          "quantize=True)",
                            }
                        continue
                # Content fingerprint: the served artifact's checksum.
                # Hashing on every poll costs one file read per checkpoint
                # — cheap next to model rebuild, and the only fingerprint
                # that cannot be fooled by a same-size in-place rewrite.
                fingerprint = checksum_file(source_path)
                bad = self._quarantined.get(name)
                if bad is not None and bad.get("fingerprint") == fingerprint:
                    continue                  # known-corrupt bytes, unchanged
                if name in self:
                    latest = self.entry(name)
                    if latest.metadata.get("fingerprint") == fingerprint:
                        # Unchanged since last reload.  Also the repair
                        # path for a rollback: bytes restored to the
                        # registered good version clear any quarantine.
                        self._quarantined.pop(name, None)
                        continue
                try:
                    entry = self.register_checkpoint(
                        name, meta_path.with_suffix(""), spec, taxonomy,
                        metadata={"fingerprint": fingerprint},
                        quantized=quantized)
                except Exception as error:
                    # CheckpointCorrupted (checksum mismatch, torn
                    # archive) and any other load failure (shape errors
                    # from a mangled-but-parseable file, bad config):
                    # quarantine rather than raise, so the last good
                    # version (if any) keeps serving and the poll loop
                    # survives.
                    self._quarantined[name] = {
                        "path": str(source_path),
                        "fingerprint": fingerprint,
                        "reason": f"{type(error).__name__}: {error}",
                    }
                    continue
                self._quarantined.pop(name, None)   # repaired checkpoint
                registered.append(entry)
        return registered

    def quarantined(self) -> dict[str, dict]:
        """Checkpoints refused by the last reloads: ``name → {path,
        fingerprint, reason}``.  An entry clears when the checkpoint's
        bytes change and load cleanly (a repaired write)."""
        with self._reload_lock:
            return {name: dict(info)
                    for name, info in self._quarantined.items()}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def entry(self, name: str, version: int | None = None) -> RegisteredModel:
        """The entry for ``(name, version)``; latest version when None."""
        with self._lock:
            versions = self._entries.get(name)
            if not versions:
                raise KeyError(f"no model registered under {name!r}; "
                               f"known: {sorted(self._entries)}")
            if version is None:
                version = max(versions)
            if version not in versions:
                raise KeyError(f"{name!r} has no version {version}; "
                               f"known: {sorted(versions)}")
            return versions[version]

    def get(self, name: str, version: int | None = None):
        """The model for ``(name, version)``; latest version when None."""
        return self.entry(name, version).model

    def latest_version(self, name: str) -> int:
        return self.entry(name).version

    def fingerprint(self, name: str, version: int | None = None) -> str | None:
        """The content fingerprint (weights checksum) serving for ``name``.

        ``None`` for models registered in-memory (no checkpoint behind
        them).  There is exactly one registry per gateway — shared by
        every gateway shard and every scorer process host — so this is
        the single source of truth reload atomicity is asserted against:
        after a ``POST /reload``, all shards answer with this fingerprint
        or the reload never happened.
        """
        return self.entry(name, version).metadata.get("fingerprint")

    def versions(self, name: str) -> list[int]:
        with self._lock:
            if name not in self._entries:
                raise KeyError(f"no model registered under {name!r}")
            return sorted(self._entries[name])

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def entries(self) -> list[RegisteredModel]:
        """Every registered entry, ordered by (name, version)."""
        with self._lock:
            return [self._entries[name][version]
                    for name in sorted(self._entries)
                    for version in sorted(self._entries[name])]

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._entries.values())
