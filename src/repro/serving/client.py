"""Tiny HTTP client for the serving gateway (stdlib ``urllib`` only).

:class:`ServingClient` is the caller-side mirror of
:mod:`repro.serving.server`: it turns arrays into the gateway's JSON wire
format and structured error bodies back into :class:`ServingError`.  It is
what the end-to-end tests and the load generator drive the service with —
and the shortest path for any external process::

    client = ServingClient("http://127.0.0.1:8000")
    result = client.rank(numeric, sparse, query_tokens=tokens, top_k=10)
    result["scores"], result["model_version"]

One client instance may be shared across threads: each thread keeps its own
persistent keep-alive connection (HTTP/1.1), which matters under load — a
fresh TCP connection per request costs a socket handshake *and* a new
handler thread on the gateway side.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import threading
import time
import urllib.parse

import numpy as np

from .protocol import DEADLINE_HEADER

__all__ = ["ServingClient", "ServingError"]


class ServingError(RuntimeError):
    """A structured error response from the gateway.

    ``status`` is the HTTP status, ``kind`` the machine-readable error
    type from the body (``bad_json``, ``unknown_model``, ...).
    ``retry_after_s`` carries the gateway's ``Retry-After`` header when
    the response had one — a 429 shed under overload tells the caller
    how long the scoring backlog needs to drain.
    """

    def __init__(self, status: int, kind: str, message: str,
                 retry_after_s: float | None = None):
        super().__init__(f"[{status} {kind}] {message}")
        self.status = status
        self.kind = kind
        self.message = message
        self.retry_after_s = retry_after_s


def _listify(value):
    """Arrays → JSON lists; None and scalars pass through."""
    if value is None:
        return None
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


class ServingClient:
    """JSON-over-HTTP client for one gateway base URL.

    Parameters
    ----------
    base_url / timeout:
        Gateway address and per-request socket timeout.
    max_retries / backoff_base_s / backoff_cap_s:
        Opt-in retry budget for **429 shed responses only** (the one
        status the gateway guarantees was rejected before any work
        happened, so a retry can never double-execute).  Disabled by
        default (``max_retries=0``).  Each retry sleeps the gateway's
        ``Retry-After`` hint plus up to 25% jitter when the response
        carried one, else full-jitter exponential backoff
        (``uniform(0, base * 2**attempt)`` capped at ``backoff_cap_s``)
        — the jitter keeps a fleet of shed clients from re-converging
        on the same retry instant.  ``backoff_retries`` counts sleeps
        taken (test/loadgen hook).
    idle_reconnect_s:
        The gateway closes keep-alive connections idle beyond its
        ``--idle-timeout``.  When this is set and a cached connection
        has been unused at least this long, the client reconnects
        proactively instead of racing the server's reaper with a doomed
        send.  (A lost race is still safe — see the stale-socket retry
        below — but the proactive drop avoids the wasted round trip.)

    A kept-alive connection found closed by the server on reuse (the
    idle reaper fired between requests: ``ConnectionError`` /
    ``BadStatusLine`` before any response bytes) is retried **exactly
    once** on a fresh connection, transparently.  Every other failure —
    a fresh connection erroring, a socket timeout, a response dying
    midway — is surfaced immediately: retrying those could
    double-execute a request the server may already have processed.
    ``stale_retries`` counts the transparent retries (test hook).
    """

    # The stale-socket signature: the server tore the connection down
    # before sending any response bytes.  Timeouts (socket.timeout is an
    # OSError) and mid-response failures (IncompleteRead) are explicitly
    # NOT here — the server may be processing the first copy.
    _STALE_SOCKET_ERRORS = (ConnectionError, http.client.BadStatusLine)

    def __init__(self, base_url: str, timeout: float = 30.0,
                 idle_reconnect_s: float | None = None,
                 max_retries: int = 0, backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 2.0):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_base_s <= 0 or backoff_cap_s <= 0:
            raise ValueError("backoff_base_s and backoff_cap_s must be positive")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.idle_reconnect_s = idle_reconnect_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.stale_retries = 0              # transparent retry count
        self.backoff_retries = 0            # 429 backoff sleeps taken
        parsed = urllib.parse.urlsplit(self.base_url)
        if parsed.scheme != "http" or parsed.hostname is None:
            raise ValueError(f"base_url must be http://host[:port], "
                             f"got {base_url!r}")
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._local = threading.local()     # one keep-alive conn per thread

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connection(self) -> tuple[http.client.HTTPConnection, bool]:
        """This thread's connection and whether it is freshly connected."""
        connection = getattr(self._local, "connection", None)
        if connection is not None and self.idle_reconnect_s is not None \
                and time.monotonic() - self._local.last_used \
                >= self.idle_reconnect_s:
            self._drop_connection()         # about to be (or already) reaped
            connection = None
        if connection is not None:
            return connection, False
        connection = http.client.HTTPConnection(self._host, self._port,
                                                timeout=self.timeout)
        connection.connect()
        # Small request/response pairs on a persistent connection:
        # without TCP_NODELAY, Nagle + delayed ACK serialize them at
        # ~tens of ms each on loopback.
        connection.sock.setsockopt(socket.IPPROTO_TCP,
                                   socket.TCP_NODELAY, 1)
        self._local.connection = connection
        self._local.last_used = time.monotonic()
        return connection, True

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    def _request(self, method: str, path: str, payload: dict | None = None,
                 deadline_ms: float | None = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if deadline_ms is not None:
            headers[DEADLINE_HEADER] = format(float(deadline_ms), "g")
        for attempt in range(self.max_retries + 1):
            try:
                return self._request_once(method, path, data, headers)
            except ServingError as error:
                # Only 429 is retry-safe: the gateway sheds *before* any
                # scoring work, so the request provably did not execute.
                if error.status != 429 or attempt >= self.max_retries:
                    raise
                if error.retry_after_s is not None:
                    delay = error.retry_after_s * (1 + 0.25 * random.random())
                else:
                    delay = random.uniform(
                        0, self.backoff_base_s * 2 ** attempt)
                self.backoff_retries += 1
                time.sleep(min(delay, self.backoff_cap_s))
        raise AssertionError("unreachable: retry loop always returns/raises")

    def _request_once(self, method: str, path: str, data: bytes | None,
                      headers: dict) -> dict:
        retried = False
        while True:
            connection, fresh = self._connection()
            try:
                connection.request(method, path, body=data, headers=headers)
                response = connection.getresponse()
                body = response.read()
                status = response.status
            except (http.client.HTTPException, OSError) as error:
                self._drop_connection()
                # Stale keep-alive socket: the server closed an idle
                # connection between requests, and the failure surfaced
                # on reuse before any response bytes.  Retry exactly
                # once on a fresh connection.  Anything else — a fresh
                # connection failing, a timeout, a mid-response death —
                # is a real error (and a retry might double-send):
                # surface it.
                if fresh or retried \
                        or not isinstance(error, self._STALE_SOCKET_ERRORS):
                    raise
                retried = True
                self.stale_retries += 1
                continue
            self._local.last_used = time.monotonic()
            if status >= 400:
                try:
                    detail = json.loads(body).get("error", {})
                except ValueError:
                    detail = {}
                retry_after = None
                raw_retry = response.getheader("Retry-After")
                if raw_retry is not None:
                    try:
                        retry_after = float(raw_retry)
                    except ValueError:
                        pass            # HTTP-date form: not worth parsing
                raise ServingError(status,
                                   detail.get("type", "http_error"),
                                   detail.get("message",
                                              body.decode("utf-8", "replace")),
                                   retry_after_s=retry_after)
            return json.loads(body)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def rank(self, numeric, sparse, query_tokens=None, query_lengths=None,
             top_k: int = 10, model: str | None = None,
             version: int | None = None,
             deadline_ms: float | None = None) -> dict:
        """POST /rank; returns the response dict with ``indices``/``scores``
        converted back to numpy arrays.

        ``deadline_ms`` sends ``X-Deadline-Ms``: the gateway answers a
        structured 504 ``deadline_exceeded`` instead of scoring once the
        budget (counted from the request's arrival) has already passed.
        """
        payload = {
            "candidates": {
                "numeric": np.asarray(numeric).tolist(),
                "sparse": {name: np.asarray(ids).tolist()
                           for name, ids in sparse.items()},
            },
            "top_k": top_k,
        }
        if query_tokens is not None:
            payload["query_tokens"] = _listify(np.asarray(query_tokens))
        if query_lengths is not None:
            payload["query_lengths"] = _listify(query_lengths)
        if model is not None:
            payload["model"] = model
        if version is not None:
            payload["version"] = int(version)
        result = self._request("POST", "/rank", payload,
                               deadline_ms=deadline_ms)
        result["indices"] = np.asarray(result["indices"], dtype=np.int64)
        result["scores"] = np.asarray(result["scores"], dtype=np.float64)
        return result

    def classify(self, tokens, lengths=None, probs: bool = False,
                 deadline_ms: float | None = None) -> dict:
        """POST /classify for one query; returns ``{"sc", "tc"[, "probs"]}``."""
        payload = {"tokens": np.asarray(tokens).tolist()}
        if lengths is not None:
            payload["lengths"] = _listify(lengths)
        if probs:
            payload["probs"] = True
        result = self._request("POST", "/classify", payload,
                               deadline_ms=deadline_ms)
        if "probs" in result:
            result["probs"] = np.asarray(result["probs"], dtype=np.float64)
        return result

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def models(self) -> dict:
        return self._request("GET", "/models")

    def reload(self) -> dict:
        """POST /reload: hot-reload changed checkpoints on the gateway."""
        return self._request("POST", "/reload", {})

    def faults(self, **actions) -> dict:
        """POST /faults: drive the gateway's fault injector (chaos tests).

        Only answered when the gateway was started with
        ``--enable-fault-injection``; otherwise a 403 ``ServingError``.
        Keyword actions pass through verbatim — e.g.
        ``faults(score_error_rate=0.1)``, ``faults(kill_workers=1)``,
        ``faults(tear_checkpoint="ranker")``, ``faults(reset=True)``.
        """
        return self._request("POST", "/faults", dict(actions))

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def wait_ready(self, timeout_s: float = 30.0, interval_s: float = 0.1) -> dict:
        """Poll /healthz until the gateway answers; returns its payload.

        Raises TimeoutError when the deadline passes — used by tests, the
        load generator, and CI to synchronize with a server booting in
        another thread or process.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                return self.healthz()
            except (OSError, http.client.HTTPException, ServingError):
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"gateway at {self.base_url} not ready "
                        f"after {timeout_s:.0f}s") from None
                time.sleep(interval_s)
