"""Multi-process scorer backend: score batches in worker *processes*.

The in-process :class:`~repro.serving.scorer.ScorerPool` only beats one
worker while BLAS releases the GIL — the Python side of every compiled
plan still serializes on one interpreter.  This module crosses the
process boundary instead: :class:`ProcessScorerHost` spawns N scorer
processes, each of which hydrates the model **from the checkpoint
directory** (the parent never pickles a model) and serves score requests
over a pipe.

Three design points keep this cheap:

* **Shared weights.**  Children rebuild the architecture from the
  checkpoint sidecar and attach parameters from the checkpoint's weight
  store (:func:`~repro.serving.checkpoint.ensure_weight_store`) via
  ``np.load(mmap_mode="r")`` — N processes map the same ``.npy`` files,
  so the OS page cache holds **one** physical copy of every parameter.

* **Binary frames, not pickles.**  Requests and responses cross the pipe
  as compact binary frames — a dtype + shape header followed by the raw
  array bytes per feature (:func:`encode_batch` / :func:`decode_batch`).
  No pickling of feature dicts, no per-row Python objects on the wire.

* **Blocking recv releases the GIL.**  Each pool worker thread in the
  parent owns one channel to a child and blocks in ``recv_bytes`` while
  the child scores; the parent's other workers keep collecting and
  dispatching, so cross-process parallelism composes with the existing
  micro-batching pool unchanged.

Fork-safety: every child reseeds its model's RNGs from
``np.random.SeedSequence(entropy=(seed, version, worker_index))`` (see
:meth:`repro.nn.Module.reseed`), so "independent" workers can never share
a noise stream — whether the start method was ``fork`` or ``spawn``.
"""

from __future__ import annotations

import json
import multiprocessing
import struct
import threading
import time
from pathlib import Path

import numpy as np

from ..data.dataset import Batch
from .checkpoint import load_environment, load_model_shared

__all__ = ["ProcessScorerHost", "ProcessScorerError",
           "encode_batch", "decode_batch", "encode_frame", "decode_frame"]

# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------
# Every message is MAGIC (2 bytes) + kind (1 byte) + kind-specific payload.
FRAME_MAGIC = b"RS"                     # "repro scorer"
KIND_BATCH = 1                          # parent -> child: score this batch
KIND_SCORES = 2                         # child -> parent: scores array
KIND_ERROR = 3                          # child -> parent: scoring failed
KIND_STATS = 4                          # parent -> child: counters request
KIND_STATS_REPLY = 5                    # child -> parent: counters JSON
KIND_SHUTDOWN = 6                       # parent -> child: exit cleanly

_HEADER = struct.Struct("<2sB")


class ProcessScorerError(RuntimeError):
    """A scorer process reported a structured failure (or died mid-call)."""


def encode_frame(kind: int, payload: bytes = b"") -> bytes:
    return _HEADER.pack(FRAME_MAGIC, kind) + payload


def decode_frame(frame: bytes) -> tuple[int, memoryview]:
    if len(frame) < _HEADER.size:
        raise ProcessScorerError(f"short frame: {len(frame)} bytes")
    magic, kind = _HEADER.unpack_from(frame)
    if magic != FRAME_MAGIC:
        raise ProcessScorerError(f"bad frame magic {magic!r}")
    return kind, memoryview(frame)[_HEADER.size:]


def _pack_array(array: np.ndarray) -> bytes:
    """dtype-str + shape header + raw contiguous bytes for one array."""
    array = np.ascontiguousarray(array)
    dtype = array.dtype.str.encode("ascii")
    header = struct.pack("<B", len(dtype)) + dtype
    header += struct.pack("<B", array.ndim)
    header += struct.pack(f"<{array.ndim}q", *array.shape)
    return header + struct.pack("<Q", array.nbytes) + array.tobytes()


def _unpack_array(view: memoryview, offset: int) -> tuple[np.ndarray, int]:
    (dtype_len,) = struct.unpack_from("<B", view, offset)
    offset += 1
    dtype = np.dtype(bytes(view[offset:offset + dtype_len]).decode("ascii"))
    offset += dtype_len
    (ndim,) = struct.unpack_from("<B", view, offset)
    offset += 1
    shape = struct.unpack_from(f"<{ndim}q", view, offset)
    offset += 8 * ndim
    (nbytes,) = struct.unpack_from("<Q", view, offset)
    offset += 8
    array = np.frombuffer(view[offset:offset + nbytes], dtype=dtype)
    return array.reshape(shape), offset + nbytes


def encode_batch(batch: Batch) -> bytes:
    """Serialize a batch's features as a KIND_BATCH frame.

    Only the numeric matrix and the sparse feature arrays travel —
    serving-side batches carry placeholder labels/session ids, which the
    child reconstructs as zeros (exactly what the gateway's JSON decoder
    does on the way in).
    """
    parts = [_pack_array(batch.numeric)]
    parts.append(struct.pack("<H", len(batch.sparse)))
    for name in sorted(batch.sparse):
        encoded = name.encode("utf-8")
        parts.append(struct.pack("<H", len(encoded)) + encoded)
        parts.append(_pack_array(batch.sparse[name]))
    return encode_frame(KIND_BATCH, b"".join(parts))


def decode_batch(payload: memoryview) -> Batch:
    """Inverse of :func:`encode_batch` (labels/session ids zeroed)."""
    numeric, offset = _unpack_array(payload, 0)
    (num_sparse,) = struct.unpack_from("<H", payload, offset)
    offset += 2
    sparse = {}
    for _ in range(num_sparse):
        (name_len,) = struct.unpack_from("<H", payload, offset)
        offset += 2
        name = bytes(payload[offset:offset + name_len]).decode("utf-8")
        offset += name_len
        sparse[name], offset = _unpack_array(payload, offset)
    rows = numeric.shape[0]
    return Batch(numeric=numeric, sparse=sparse,
                 labels=np.zeros(rows, dtype=np.float64),
                 session_ids=np.zeros(rows, dtype=np.int64))


def encode_scores(scores: np.ndarray) -> bytes:
    return encode_frame(KIND_SCORES, _pack_array(np.asarray(scores)))


def decode_scores(payload: memoryview) -> np.ndarray:
    scores, _ = _unpack_array(payload, 0)
    # The frombuffer view is read-only over pipe memory; hand callers an
    # owned array.
    return scores.copy()


# ----------------------------------------------------------------------
# Child process
# ----------------------------------------------------------------------
def _scorer_process_main(conn, checkpoint_base: str, environment_dir: str,
                         seed: int, version: int, worker_index: int,
                         split_precompute: bool,
                         quantized: bool = False) -> None:
    """Entry point of one scorer process (must stay module-level for
    spawn-context picklability).

    Hydrates the model from disk (shared weights — the int8 store when
    ``quantized``), reseeds its RNGs with a per-child spawn key, compiles
    a scoring plan, then serves frames until a shutdown frame or a closed
    pipe.
    """
    spec, taxonomy = load_environment(environment_dir)
    model = load_model_shared(checkpoint_base, spec, taxonomy,
                              quantized=quantized)
    model.eval()
    model.reseed(np.random.SeedSequence(
        entropy=(int(seed), int(version), int(worker_index))))
    scorer = None
    # Split precompute snapshots full-precision first-layer weights, which
    # a quantized hydration does not have — quantized children always run
    # the quantized compiled plans.
    if split_precompute and not quantized:
        make_split = getattr(model, "make_split_scorer", None)
        if callable(make_split):
            scorer = make_split()
    if scorer is None:
        make = getattr(model, "make_scorer", None)
        scorer = make() if callable(make) else model.score
    requests = rows = 0
    busy_seconds = 0.0
    while True:
        try:
            frame = conn.recv_bytes()
        except (EOFError, OSError):
            return                      # parent went away; nothing to flush
        try:
            kind, payload = decode_frame(frame)
        except ProcessScorerError as error:
            conn.send_bytes(encode_frame(KIND_ERROR, str(error).encode("utf-8")))
            continue
        if kind == KIND_SHUTDOWN:
            return
        if kind == KIND_STATS:
            counters = {"requests": requests, "rows": rows,
                        "busy_seconds": busy_seconds,
                        "worker_index": worker_index}
            conn.send_bytes(encode_frame(
                KIND_STATS_REPLY, json.dumps(counters).encode("utf-8")))
            continue
        if kind != KIND_BATCH:
            conn.send_bytes(encode_frame(
                KIND_ERROR, f"unexpected frame kind {kind}".encode("utf-8")))
            continue
        try:
            batch = decode_batch(payload)
            t0 = time.perf_counter()
            scores = scorer(batch)
            busy_seconds += time.perf_counter() - t0
            requests += 1
            rows += len(batch)
            conn.send_bytes(encode_scores(scores))
        except BaseException as error:       # noqa: BLE001 — must answer
            conn.send_bytes(encode_frame(
                KIND_ERROR,
                f"{type(error).__name__}: {error}".encode("utf-8")))


# ----------------------------------------------------------------------
# Parent-side host
# ----------------------------------------------------------------------
class _Channel:
    """One scorer process + its pipe; the lock serializes frame exchanges."""

    __slots__ = ("index", "conn", "process", "lock", "last_counters")

    def __init__(self, index: int):
        self.index = index
        self.conn = None
        self.process = None
        self.lock = threading.Lock()
        # Last counters the child reported; kept so /stats stays monotonic
        # even when a child is busy (or dead) at snapshot time.
        self.last_counters = {"requests": 0, "rows": 0, "busy_seconds": 0.0}


class ProcessScorerHost:
    """Own N scorer processes for one checkpoint and hand out scorer
    closures compatible with :class:`~repro.serving.scorer.ScorerPool`.

    ``make_scorer`` is the pool's ``scorer_factory``: each call binds the
    next channel round-robin, so a pool with ``num_workers == processes``
    gives every worker thread a private channel.  A channel exchange that
    finds its process dead (or breaks mid-call) respawns the child and
    raises :class:`ProcessScorerError` for that request — the pool's
    normal error path (and the service breaker) absorb it.
    """

    def __init__(self, checkpoint_base: str | Path, environment_dir: str | Path,
                 processes: int, seed: int = 0, version: int = 0,
                 split_precompute: bool = False,
                 quantized: bool = False,
                 start_method: str | None = None,
                 stats_timeout_s: float = 1.0):
        if processes <= 0:
            raise ValueError("processes must be positive")
        self._checkpoint_base = str(checkpoint_base)
        self._environment_dir = str(environment_dir)
        self._seed = int(seed)
        self._version = int(version)
        self._split_precompute = bool(split_precompute)
        self._quantized = bool(quantized)
        self._stats_timeout_s = float(stats_timeout_s)
        # spawn by default: the serving parent is heavily threaded, and
        # fork() of a threaded process inherits locks in arbitrary states.
        self._ctx = multiprocessing.get_context(start_method or "spawn")
        self._state_lock = threading.Lock()
        self._restarts = 0
        self._next_channel = 0
        self._closed = False
        self._channels = [_Channel(index) for index in range(processes)]
        try:
            for channel in self._channels:
                self._start_child(channel)
        except BaseException:
            self.close()
            raise

    @property
    def processes(self) -> int:
        return len(self._channels)

    @property
    def process_restarts(self) -> int:
        return self._restarts

    def _start_child(self, channel: _Channel) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_scorer_process_main,
            args=(child_conn, self._checkpoint_base, self._environment_dir,
                  self._seed, self._version, channel.index,
                  self._split_precompute, self._quantized),
            name=f"repro-scorer-{channel.index}", daemon=True)
        process.start()
        child_conn.close()
        channel.conn = parent_conn
        channel.process = process

    def _respawn(self, channel: _Channel) -> None:
        """Replace a dead/broken child (caller holds ``channel.lock``)."""
        try:
            if channel.conn is not None:
                channel.conn.close()
        except OSError:
            pass
        if channel.process is not None and channel.process.is_alive():
            channel.process.terminate()
        if channel.process is not None:
            channel.process.join(timeout=5.0)
        self._start_child(channel)
        with self._state_lock:
            self._restarts += 1

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def make_scorer(self):
        """Pool-compatible scorer factory: returns a ``Batch -> scores``
        closure bound to the next channel (round-robin)."""
        with self._state_lock:
            channel = self._channels[self._next_channel % len(self._channels)]
            self._next_channel += 1

        def score(batch: Batch) -> np.ndarray:
            return self._score_on(channel, batch)

        return score

    def _score_on(self, channel: _Channel, batch: Batch) -> np.ndarray:
        frame = encode_batch(batch)
        with channel.lock:
            if self._closed:
                raise ProcessScorerError("scorer host is closed")
            if channel.process is None or not channel.process.is_alive():
                self._respawn(channel)
            try:
                channel.conn.send_bytes(frame)
                reply = channel.conn.recv_bytes()
            except (EOFError, OSError, BrokenPipeError) as error:
                self._respawn(channel)
                raise ProcessScorerError(
                    f"scorer process {channel.index} died mid-request "
                    f"({type(error).__name__}); respawned") from error
        kind, payload = decode_frame(reply)
        if kind == KIND_SCORES:
            return decode_scores(payload)
        if kind == KIND_ERROR:
            raise ProcessScorerError(bytes(payload).decode("utf-8"))
        raise ProcessScorerError(f"unexpected reply kind {kind}")

    # ------------------------------------------------------------------
    # Stats aggregation
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Aggregate child counters (best-effort, never blocks serving).

        Each child is polled over its channel; a child mid-score (lock
        held) or mid-respawn contributes its last known counters instead,
        so the aggregate lags rather than regresses.
        """
        totals = {"processes": len(self._channels),
                  "process_restarts": self.process_restarts,
                  "requests": 0, "rows": 0, "busy_seconds": 0.0}
        for channel in self._channels:
            counters = channel.last_counters
            if not self._closed and channel.lock.acquire(timeout=0.05):
                try:
                    if channel.process is not None \
                            and channel.process.is_alive():
                        channel.conn.send_bytes(encode_frame(KIND_STATS))
                        if channel.conn.poll(self._stats_timeout_s):
                            kind, payload = decode_frame(
                                channel.conn.recv_bytes())
                            if kind == KIND_STATS_REPLY:
                                counters = json.loads(bytes(payload))
                                channel.last_counters = counters
                except (EOFError, OSError, ProcessScorerError, ValueError):
                    pass
                finally:
                    channel.lock.release()
            totals["requests"] += counters.get("requests", 0)
            totals["rows"] += counters.get("rows", 0)
            totals["busy_seconds"] += counters.get("busy_seconds", 0.0)
        return totals

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut every child down (idempotent)."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        for channel in self._channels:
            with channel.lock:
                if channel.conn is None:
                    continue
                try:
                    channel.conn.send_bytes(encode_frame(KIND_SHUTDOWN))
                except (OSError, BrokenPipeError):
                    pass
        for channel in self._channels:
            with channel.lock:
                if channel.process is not None:
                    channel.process.join(timeout=5.0)
                    if channel.process.is_alive():
                        channel.process.terminate()
                        channel.process.join(timeout=5.0)
                if channel.conn is not None:
                    try:
                        channel.conn.close()
                    except OSError:
                        pass

    def __enter__(self) -> "ProcessScorerHost":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
