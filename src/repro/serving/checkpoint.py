"""Checkpoint format for the serving layer.

Ranking-model checkpoints are the ``state_dict → .npz + JSON config`` format
from :mod:`repro.utils.serialization` (re-exported here so serving code has
one import surface).  This module adds the same treatment for the BiGRU
query classifier — the intent stage of :class:`repro.serving.RankingService`
— whose architecture is described by ``(vocab_size, num_sub_categories,
QueryClassifierConfig)`` rather than a :class:`~repro.models.config.ModelConfig`.

It also defines the **checkpoint-directory layout** the HTTP gateway serves
from: one ``<name>.npz`` + ``<name>.json`` pair per ranking model (served
under ``name``), optionally a classifier checkpoint (its sidecar carries
``kind: querycat_classifier``), and an ``environment.json`` bundle
(:func:`save_environment`) holding the :class:`~repro.data.schema.FeatureSpec`
and :class:`~repro.hierarchy.Taxonomy` the models were trained against — so
``python -m repro.serving.server`` can rebuild every model from disk alone.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import shutil
import tempfile
from pathlib import Path

import numpy as np

from ..data.schema import FeatureSpec
from ..hierarchy import Taxonomy
from ..querycat import QueryCategoryClassifier, QueryClassifierConfig
from ..nn.quantize import hydrate_quantized
from ..utils.serialization import (CheckpointCorrupted,
                                   _split_quantized_arrays,
                                   atomic_write_bytes, atomic_write_text,
                                   build_model_from_meta, checksum_file,
                                   load_checkpoint, load_model,
                                   load_model_quantized,
                                   load_quantized_checkpoint, save_checkpoint)

__all__ = ["save_checkpoint", "load_checkpoint", "load_model",
           "load_quantized_checkpoint", "load_model_quantized",
           "build_model_from_meta",
           "save_classifier_checkpoint", "load_classifier_checkpoint",
           "save_environment", "load_environment",
           "find_classifier_checkpoint", "ENVIRONMENT_FILENAME",
           "ensure_weight_store", "load_shared_state", "load_model_shared",
           "CheckpointCorrupted", "checksum_file"]

_CLASSIFIER_FORMAT_VERSION = 1
_ENVIRONMENT_FORMAT_VERSION = 1

ENVIRONMENT_FILENAME = "environment.json"


def save_classifier_checkpoint(model: QueryCategoryClassifier,
                               path: str | Path,
                               extra: dict | None = None) -> Path:
    """Persist a query classifier to ``<path>.npz`` + ``<path>.json``.

    The JSON sidecar records the vocabulary size, class count, and the
    :class:`QueryClassifierConfig`, so :func:`load_classifier_checkpoint`
    can rebuild the exact architecture.  Returns the weights path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    weights_path = path.with_suffix(".npz")
    meta_path = path.with_suffix(".json")
    # Atomic write + checksum manifest, same contract as the ranking-model
    # format (see repro.utils.serialization): the weights land first, the
    # sidecar referencing their checksum second.
    buffer = io.BytesIO()
    np.savez(buffer, **model.state_dict())
    weights_bytes = buffer.getvalue()
    atomic_write_bytes(weights_path, weights_bytes)
    meta = {
        "format_version": _CLASSIFIER_FORMAT_VERSION,
        "kind": "querycat_classifier",
        "vocab_size": int(model.embedding.num_embeddings),
        "num_sub_categories": int(model.head.out_features),
        "config": dataclasses.asdict(model.config),
        "dtype": str(model.embedding.weight.dtype),
        "extra": extra or {},
        "checksum": {
            "weights": f"sha256:{hashlib.sha256(weights_bytes).hexdigest()}"},
    }
    atomic_write_text(meta_path, json.dumps(meta, indent=2))
    return weights_path


def load_classifier_checkpoint(path: str | Path) -> QueryCategoryClassifier:
    """Rebuild a query classifier from a checkpoint and restore its weights."""
    path = Path(path)
    weights_path = path.with_suffix(".npz")
    meta_path = path.with_suffix(".json")
    if not weights_path.exists() or not meta_path.exists():
        raise FileNotFoundError(f"classifier checkpoint incomplete at {path}")
    meta = json.loads(meta_path.read_text())
    if meta.get("kind") != "querycat_classifier":
        raise ValueError(f"not a classifier checkpoint: {path}")
    if meta.get("format_version") != _CLASSIFIER_FORMAT_VERSION:
        raise ValueError(
            f"unsupported classifier checkpoint version {meta.get('format_version')}")
    declared = (meta.get("checksum") or {}).get("weights")
    if declared is not None and checksum_file(weights_path) != declared:
        raise CheckpointCorrupted(weights_path,
                                  "weights checksum mismatch")
    config = QueryClassifierConfig(**meta["config"])
    model = QueryCategoryClassifier(meta["vocab_size"],
                                    meta["num_sub_categories"], config)
    dtype = np.dtype(meta.get("dtype", "float64"))
    if model.embedding.weight.dtype != dtype:
        model.astype(dtype)
    with np.load(weights_path) as archive:
        state = {key: archive[key] for key in archive.files}
        model.load_state_dict(state)
    return model


# ----------------------------------------------------------------------
# Environment bundles (checkpoint-directory serving)
# ----------------------------------------------------------------------
def save_environment(directory: str | Path, spec: FeatureSpec,
                     taxonomy: Taxonomy) -> Path:
    """Write ``environment.json`` describing a checkpoint directory.

    The bundle pins the feature schema and category tree every checkpoint
    in ``directory`` was trained against, which is exactly what
    :func:`repro.utils.serialization.load_model` needs to rebuild them —
    the serving gateway reads it at boot so a scoring process carries no
    dependency on the training-side world generator.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / ENVIRONMENT_FILENAME
    payload = {
        "format_version": _ENVIRONMENT_FORMAT_VERSION,
        "kind": "serving_environment",
        "spec": spec.to_dict(),
        "taxonomy": taxonomy.to_dict(),
    }
    atomic_write_text(path, json.dumps(payload, indent=2))
    return path


def load_environment(directory: str | Path) -> tuple[FeatureSpec, Taxonomy]:
    """Load the (spec, taxonomy) bundle written by :func:`save_environment`."""
    path = Path(directory) / ENVIRONMENT_FILENAME
    if not path.exists():
        raise FileNotFoundError(
            f"no {ENVIRONMENT_FILENAME} in {directory} — write one with "
            "serving.save_environment(dir, spec, taxonomy) when checkpointing")
    payload = json.loads(path.read_text())
    if payload.get("kind") != "serving_environment":
        raise ValueError(f"not a serving environment bundle: {path}")
    if payload.get("format_version") != _ENVIRONMENT_FORMAT_VERSION:
        raise ValueError(
            f"unsupported environment bundle version {payload.get('format_version')}")
    return (FeatureSpec.from_dict(payload["spec"]),
            Taxonomy.from_dict(payload["taxonomy"]))


# ----------------------------------------------------------------------
# Shared weight stores (multi-process serving)
# ----------------------------------------------------------------------
_WEIGHT_STORE_FORMAT_VERSION = 1
_WEIGHT_STORE_MANIFEST = "manifest.json"


def ensure_weight_store(path: str | Path, quantized: bool = False) -> Path:
    """Extract a checkpoint's parameters into a mmap-able ``.npy`` store.

    ``np.load(mmap_mode="r")`` cannot map members of an ``.npz`` archive
    (they are zip entries, not page-aligned files), so multi-process
    serving explodes the archive once into
    ``.<name>-<digest>.weights/`` next to the checkpoint — one ``.npy``
    per parameter plus a manifest mapping qualified parameter names to
    files.  Every scorer process then maps the same files read-only and
    the OS page cache keeps a single physical copy of the weights.

    With ``quantized=True`` the store (``.<name>-<digest>.qweights``) is
    built from the ``.quant.npz`` artifact instead: the int8 tensors,
    their scales, and the float32 passthroughs land as separate ``.npy``
    files under their archive keys (``q:``/``scale:``/``f:``), so process
    shards share one physical copy of the *quantized* weights and the
    full-precision archive never gets parsed.

    The store is keyed by the source file's content digest, so a
    hot-reloaded checkpoint gets a fresh store and an existing store is
    reused as-is (idempotent).  Creation is atomic: the store is built in
    a temp directory and renamed into place; a concurrent creator losing
    the rename race simply uses the winner's store.
    """
    path = Path(path)
    weights_path = path.with_suffix(".quant.npz" if quantized else ".npz")
    fingerprint = checksum_file(weights_path)
    digest = fingerprint.split(":", 1)[1][:16]
    kind = "qweights" if quantized else "weights"
    store = path.parent / f".{path.name}-{digest}.{kind}"
    manifest_path = store / _WEIGHT_STORE_MANIFEST
    if manifest_path.exists():
        return store
    # Verifies the checksum manifest before trusting the bytes — a torn
    # checkpoint must not become a quietly-corrupt weight store.
    if quantized:
        passthrough, qdict, _ = load_quantized_checkpoint(path)
        state = {f"f:{name}": array for name, array in passthrough.items()}
        for name, qw in qdict.items():
            state[f"q:{name}"] = qw.q
            state[f"scale:{name}"] = qw.scales
    else:
        state, _ = load_checkpoint(path)
    tmp = Path(tempfile.mkdtemp(dir=path.parent, prefix=f".{path.name}-tmp."))
    try:
        params = {}
        for index, (name, array) in enumerate(state.items()):
            filename = f"p{index:04d}.npy"
            np.save(tmp / filename, np.ascontiguousarray(array))
            params[name] = filename
        manifest = {
            "format_version": _WEIGHT_STORE_FORMAT_VERSION,
            "kind": "weight_store",
            "quantized": quantized,
            "fingerprint": fingerprint,
            "params": params,
        }
        (tmp / _WEIGHT_STORE_MANIFEST).write_text(json.dumps(manifest, indent=2))
        os.replace(tmp, store)
    except OSError:
        shutil.rmtree(tmp, ignore_errors=True)
        if not manifest_path.exists():
            raise
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return store


def load_shared_state(store: str | Path) -> dict[str, np.ndarray]:
    """Map a weight store's parameters read-only (name → memmap array)."""
    store = Path(store)
    manifest = json.loads((store / _WEIGHT_STORE_MANIFEST).read_text())
    if manifest.get("kind") != "weight_store":
        raise ValueError(f"not a weight store: {store}")
    return {name: np.load(store / filename, mmap_mode="r")
            for name, filename in manifest["params"].items()}


def load_model_shared(path: str | Path, spec: FeatureSpec,
                      taxonomy: Taxonomy, quantized: bool = False):
    """Rebuild a checkpointed model with memory-mapped, shared weights.

    Functionally equivalent to :func:`load_model` but every parameter is
    backed by the checkpoint's weight store (see :func:`ensure_weight_store`)
    instead of a private copy, so N processes serving the same checkpoint
    hold one physical copy of the parameters.  The result is
    inference-only: the arrays are read-only memmaps.

    With ``quantized=True`` the model hydrates from the quantized store:
    int8 tensors and float32 passthroughs are mmap'd and attached (see
    :func:`repro.nn.quantize.hydrate_quantized`), so shards share one
    physical copy of the *int8* weights — the f32 archive stays on disk.
    """
    path = Path(path)
    store = ensure_weight_store(path, quantized=quantized)
    meta = json.loads(path.with_suffix(".json").read_text())
    model = build_model_from_meta(meta, spec, taxonomy)
    if quantized:
        state, qdict = _split_quantized_arrays(load_shared_state(store), store)
        return hydrate_quantized(model, state, qdict)
    model.load_state_dict(load_shared_state(store), copy=False)
    return model


def find_classifier_checkpoint(directory: str | Path) -> Path | None:
    """Locate a query-classifier checkpoint in a checkpoint directory.

    Returns the checkpoint *base* path (no suffix) of the first sidecar
    whose ``kind`` is ``querycat_classifier``, or None when the directory
    serves ranking models only.
    """
    directory = Path(directory)
    for meta_path in sorted(directory.glob("*.json")):
        if meta_path.name == ENVIRONMENT_FILENAME:
            continue
        try:
            meta = json.loads(meta_path.read_text())
        except ValueError:
            continue
        if isinstance(meta, dict) and meta.get("kind") == "querycat_classifier":
            if meta_path.with_suffix(".npz").exists():
                return meta_path.with_suffix("")
    return None
