"""Checkpoint format for the serving layer.

Ranking-model checkpoints are the ``state_dict → .npz + JSON config`` format
from :mod:`repro.utils.serialization` (re-exported here so serving code has
one import surface).  This module adds the same treatment for the BiGRU
query classifier — the intent stage of :class:`repro.serving.RankingService`
— whose architecture is described by ``(vocab_size, num_sub_categories,
QueryClassifierConfig)`` rather than a :class:`~repro.models.config.ModelConfig`.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from ..querycat import QueryCategoryClassifier, QueryClassifierConfig
from ..utils.serialization import (load_checkpoint, load_model,
                                   save_checkpoint)

__all__ = ["save_checkpoint", "load_checkpoint", "load_model",
           "save_classifier_checkpoint", "load_classifier_checkpoint"]

_CLASSIFIER_FORMAT_VERSION = 1


def save_classifier_checkpoint(model: QueryCategoryClassifier,
                               path: str | Path,
                               extra: dict | None = None) -> Path:
    """Persist a query classifier to ``<path>.npz`` + ``<path>.json``.

    The JSON sidecar records the vocabulary size, class count, and the
    :class:`QueryClassifierConfig`, so :func:`load_classifier_checkpoint`
    can rebuild the exact architecture.  Returns the weights path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    weights_path = path.with_suffix(".npz")
    meta_path = path.with_suffix(".json")
    np.savez(weights_path, **model.state_dict())
    meta = {
        "format_version": _CLASSIFIER_FORMAT_VERSION,
        "kind": "querycat_classifier",
        "vocab_size": int(model.embedding.num_embeddings),
        "num_sub_categories": int(model.head.out_features),
        "config": dataclasses.asdict(model.config),
        "dtype": str(model.embedding.weight.dtype),
        "extra": extra or {},
    }
    meta_path.write_text(json.dumps(meta, indent=2))
    return weights_path


def load_classifier_checkpoint(path: str | Path) -> QueryCategoryClassifier:
    """Rebuild a query classifier from a checkpoint and restore its weights."""
    path = Path(path)
    weights_path = path.with_suffix(".npz")
    meta_path = path.with_suffix(".json")
    if not weights_path.exists() or not meta_path.exists():
        raise FileNotFoundError(f"classifier checkpoint incomplete at {path}")
    meta = json.loads(meta_path.read_text())
    if meta.get("kind") != "querycat_classifier":
        raise ValueError(f"not a classifier checkpoint: {path}")
    if meta.get("format_version") != _CLASSIFIER_FORMAT_VERSION:
        raise ValueError(
            f"unsupported classifier checkpoint version {meta.get('format_version')}")
    config = QueryClassifierConfig(**meta["config"])
    model = QueryCategoryClassifier(meta["vocab_size"],
                                    meta["num_sub_categories"], config)
    dtype = np.dtype(meta.get("dtype", "float64"))
    if model.embedding.weight.dtype != dtype:
        model.astype(dtype)
    with np.load(weights_path) as archive:
        state = {key: archive[key] for key in archive.files}
        model.load_state_dict(state)
    return model
