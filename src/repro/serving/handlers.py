"""Transport-agnostic JSON dispatch for the serving gateway.

The dispatch layer of the three-layer gateway split: given a method, a
path, and a raw body, :class:`GatewayDispatcher` routes to an endpoint
handler and returns ``(status, payload, extra headers)``.  It never
touches a socket or an HTTP byte — both the selector transport and the
threaded fallback feed it the same way, which is what pins behavioral
parity between the two front-ends.

Every endpoint handler returns a JSON-safe dict or raises
:class:`ApiError` (4xx for client mistakes); anything else escaping a
handler becomes a structured 500 — a bad request must never take down a
scorer worker or the gateway, exactly as the PR 4 gateway pinned.

The dispatcher is also the gateway's **self-protection gate**: scoring
endpoints are checked against the scorer pools' admission bounds before
a byte of JSON is parsed, and over-budget requests are shed with a
structured 429 carrying ``Retry-After`` derived from the pools' live
drain rate.  Shedding at the door keeps the refusal cost to one int
read — an overloaded gateway must get *cheaper* per excess request, not
more expensive, or shedding itself becomes the overload.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import asdict
from pathlib import Path

import numpy as np

from ..data.schema import FeatureSpec
from ..hierarchy import Taxonomy
from .breaker import CLOSED, HALF_OPEN, OPEN
from .metrics import (PROMETHEUS_CONTENT_TYPE, LatencyHistogram,
                      render_enum_metric, render_histogram, render_metric)
from .protocol import parse_deadline_ms
from .scorer import DeadlineExceeded, PoolOverloaded
from .service import RankingService, candidate_batch

__all__ = ["ApiError", "GatewayDispatcher"]


class ApiError(Exception):
    """A client-visible error: HTTP status + machine-readable type."""

    def __init__(self, status: int, kind: str, message: str):
        super().__init__(message)
        self.status = status
        self.kind = kind


def _require(payload: dict, key: str):
    if key not in payload:
        raise ApiError(400, "bad_request", f"missing required field {key!r}")
    return payload[key]


def _as_array(value, dtype, field: str, ndim: int | None = None) -> np.ndarray:
    try:
        array = np.asarray(value, dtype=dtype)
    except (TypeError, ValueError) as error:
        raise ApiError(400, "bad_request",
                       f"field {field!r} is not a valid array: {error}") from None
    if ndim is not None and array.ndim != ndim:
        raise ApiError(400, "bad_request",
                       f"field {field!r} must be {ndim}-dimensional, "
                       f"got shape {array.shape}")
    return array


class GatewayDispatcher:
    """Route requests to endpoint handlers; own the request/error counters.

    Parameters
    ----------
    service:
        The :class:`RankingService` behind every scoring endpoint.
    spec / taxonomy / checkpoint_dir:
        When all are set, ``POST /reload`` re-scans ``checkpoint_dir``
        through :meth:`ModelRegistry.reload_from_directory`; ``spec``
        alone additionally enables request validation and the
        ``GET /models`` schema block.
    quantized:
        Reload lane: ``POST /reload`` re-scans through the int8
        ``.quant.npz`` artifacts instead of full-precision weights (a
        ``--quantized`` gateway must stay quantized across hot reloads).
    connection_stats:
        Zero-argument callable returning the transport's connection
        counter snapshot (see
        :class:`~repro.serving.transport.GatewayCounters`), surfaced
        under ``GET /stats``.
    """

    # Route table: (method, path) -> handler method name.
    ROUTES = {
        ("POST", "/rank"): "handle_rank",
        ("POST", "/classify"): "handle_classify",
        ("GET", "/healthz"): "handle_healthz",
        ("GET", "/stats"): "handle_stats",
        ("GET", "/metrics"): "handle_metrics",
        ("GET", "/models"): "handle_models",
        ("POST", "/reload"): "handle_reload",
        ("POST", "/faults"): "handle_faults",
    }

    # Scoring endpoints subject to admission control.  Operational
    # endpoints (/healthz, /stats, /metrics, ...) are never shed: an
    # overloaded gateway that also goes dark to its monitoring is
    # indistinguishable from a dead one.
    SHEDDABLE = {("POST", "/rank"), ("POST", "/classify")}

    def __init__(self, service: RankingService,
                 spec: FeatureSpec | None = None,
                 taxonomy: Taxonomy | None = None,
                 checkpoint_dir: str | Path | None = None,
                 connection_stats=None, quantized: bool = False):
        self.service = service
        self.spec = spec
        self.taxonomy = taxonomy
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.quantized = bool(quantized)
        self._connection_stats = connection_stats
        self._started_at = time.monotonic()
        self._counter_lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._shed_requests = 0
        self._deadline_exceeded = 0
        # Per-endpoint latency histograms, known routes only — recording
        # arbitrary 404 paths would hand any client an unbounded-label
        # cardinality attack on the metrics endpoint.
        self._histograms = {path: LatencyHistogram()
                            for _, path in self.ROUTES}

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(self, method: str, path: str, body: bytes,
                 headers: dict | None = None,
                 received_at: float | None = None) -> tuple[int, object, dict]:
        """Route one request: ``(status, payload, extra headers)``.

        ``payload`` is a JSON-safe dict for every endpoint except
        ``/metrics`` (a text body); the extra headers carry per-response
        additions like ``Retry-After`` on a shed request.  Transport
        layers call this with the body already drained from the stream,
        so a 4xx can never desync keep-alive framing.

        ``headers`` (lowercased names) and ``received_at`` (the
        transport's :func:`time.monotonic` arrival stamp) are optional
        for back-compat with direct callers; together they carry the
        request's ``X-Deadline-Ms`` budget into dispatch, anchored at
        arrival so gateway queueing counts against it.
        """
        path = path.split("?", 1)[0].rstrip("/") or "/"
        started = time.monotonic()
        deadline = None
        if headers:
            budget_ms = parse_deadline_ms(headers)
            if budget_ms is not None:
                anchor = received_at if received_at is not None else started
                deadline = anchor + budget_ms / 1000.0
        try:
            return self._route(method, path, body, deadline)
        finally:
            histogram = self._histograms.get(path)
            if histogram is not None and (method, path) in self.ROUTES:
                histogram.observe(time.monotonic() - started)

    def _route(self, method: str, path: str, body: bytes,
               deadline: float | None = None) -> tuple[int, object, dict]:
        try:
            handler_name = self.ROUTES.get((method, path))
            if handler_name is None:
                if any(route_path == path for _, route_path in self.ROUTES):
                    raise ApiError(405, "method_not_allowed",
                                   f"{method} not allowed on {path}")
                raise ApiError(404, "not_found", f"unknown endpoint {path}")
            if (method, path) in self.SHEDDABLE:
                if deadline is not None and time.monotonic() >= deadline:
                    # Already expired on arrival (or while queued in the
                    # transport): refuse pre-parse, same cheapness
                    # argument as the overload gate — the client has
                    # given up, so every further cycle is pure waste.
                    return self._deadline_expired()
                retry_after = self.service.overload_status()
                if retry_after is not None:
                    # Shed before parsing: the whole point of the gate is
                    # that a refused request costs an int read, not a
                    # JSON parse of a payload nobody will score.
                    return self._shed(retry_after)
            payload = self._parse_json(body) if method == "POST" else {}
            if handler_name == "handle_rank":
                # The one handler deadlines propagate *into*: its scoring
                # queue is where a request can expire post-admission.
                result = self.handle_rank(payload, deadline=deadline)
            else:
                result = getattr(self, handler_name)(payload)
            headers = {}
            if isinstance(result, tuple):
                result, headers = result
            self._count(error=False)
            return 200, result, headers
        except PoolOverloaded as error:
            # Admitted at the gate but lost the race to a concurrent
            # burst: the pool's own bound refused the submit.
            return self._shed(error.retry_after_s)
        except DeadlineExceeded:
            # Expired inside the scoring queue: a collector dropped it.
            return self._deadline_expired()
        except ApiError as error:
            self._count(error=True)
            return error.status, {"error": {"type": error.kind,
                                            "message": str(error)}}, {}
        except Exception as error:      # never kill the serving thread
            self._count(error=True)
            return 500, {"error": {
                "type": "internal",
                "message": f"{type(error).__name__}: {error}"}}, {}

    def _deadline_expired(self) -> tuple[int, dict, dict]:
        """Structured 504: the request's deadline passed before scoring."""
        with self._counter_lock:
            self._requests += 1
            self._errors += 1
            self._deadline_exceeded += 1
        return 504, {"error": {
            "type": "deadline_exceeded",
            "message": "request deadline passed before it could be scored",
        }}, {}

    def _shed(self, retry_after_s: float) -> tuple[int, dict, dict]:
        """Structured 429: the scoring backlog is at its admission bound."""
        with self._counter_lock:
            self._requests += 1
            self._errors += 1
            self._shed_requests += 1
        retry_after = max(1, math.ceil(retry_after_s))
        return 429, {"error": {
            "type": "overloaded",
            "message": f"scoring backlog is at its admission bound; "
                       f"retry in ~{retry_after}s",
        }}, {"Retry-After": str(retry_after)}

    @staticmethod
    def _parse_json(body: bytes) -> dict:
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except ValueError as error:
            raise ApiError(400, "bad_json", f"request body is not JSON: {error}") \
                from None
        if not isinstance(payload, dict):
            raise ApiError(400, "bad_json", "request body must be a JSON object")
        return payload

    def _count(self, error: bool) -> None:
        with self._counter_lock:
            self._requests += 1
            if error:
                self._errors += 1

    def record_protocol_error(self) -> None:
        """Count a transport-level framing violation (413/431/...) that
        never reached :meth:`dispatch` — it is still a served error."""
        self._count(error=True)

    def _validate_candidates(self, batch) -> None:
        """Reject schema-invalid candidates before they reach a scorer.

        Micro-batching co-batches concurrent requests: one request with a
        missing feature or out-of-range id would fail the merged batch and
        400 every innocent request coalesced with it.  When the gateway
        knows the schema (``spec``), bad requests are turned away at the
        door instead.
        """
        if self.spec is None:
            return
        expected = set(self.spec.sparse_names)
        provided = set(batch.sparse)
        if provided != expected:
            raise ApiError(400, "bad_request",
                           f"candidates.sparse must provide exactly "
                           f"{sorted(expected)}; got {sorted(provided)}")
        if batch.numeric.shape[1] != self.spec.num_numeric:
            raise ApiError(400, "bad_request",
                           f"candidates.numeric must have "
                           f"{self.spec.num_numeric} columns, "
                           f"got {batch.numeric.shape[1]}")
        for name, ids in batch.sparse.items():
            cardinality = self.spec.cardinality(name)
            if ids.size and (ids.min() < 0 or ids.max() >= cardinality):
                raise ApiError(400, "bad_request",
                               f"candidates.sparse.{name} ids must be in "
                               f"[0, {cardinality})")

    # ------------------------------------------------------------------
    # Endpoint handlers (return JSON-safe dicts; raise ApiError for 4xx)
    # ------------------------------------------------------------------
    def handle_rank(self, payload: dict,
                    deadline: float | None = None) -> dict:
        candidates = _require(payload, "candidates")
        if not isinstance(candidates, dict):
            raise ApiError(400, "bad_request",
                           "'candidates' must be an object with "
                           "'numeric' and 'sparse'")
        numeric = _as_array(_require(candidates, "numeric"), np.float64,
                            "candidates.numeric")
        sparse_raw = candidates.get("sparse", {})
        if not isinstance(sparse_raw, dict):
            raise ApiError(400, "bad_request", "'candidates.sparse' must map "
                           "feature name -> id list")
        sparse = {name: _as_array(ids, np.int64, f"candidates.sparse.{name}",
                                  ndim=1)
                  for name, ids in sparse_raw.items()}
        batch = candidate_batch(numeric, sparse)
        if any(ids.shape[0] != len(batch) for ids in sparse.values()):
            raise ApiError(400, "bad_request",
                           "sparse feature lengths must match the number of "
                           f"candidate rows ({len(batch)})")
        self._validate_candidates(batch)
        query_tokens = payload.get("query_tokens")
        if query_tokens is not None:
            query_tokens = _as_array(query_tokens, np.int64, "query_tokens")
        query_lengths = payload.get("query_lengths")
        top_k = payload.get("top_k", 10)
        if not isinstance(top_k, int) or top_k <= 0:
            raise ApiError(400, "bad_request", "'top_k' must be a positive integer")
        model = payload.get("model")
        version = payload.get("version")
        if model is not None:
            # Resolve explicitly named models up front so "unknown model"
            # is a clean 404; KeyErrors raised *during* scoring (e.g. a
            # missing sparse feature) are client data errors, not routing.
            try:
                self.service.registry.entry(model, version)
            except KeyError as error:
                raise ApiError(404, "unknown_model", str(error)) from None
        try:
            response = self.service.rank(
                batch, query_tokens=query_tokens, query_lengths=query_lengths,
                top_k=top_k, model=model, version=version, deadline=deadline)
        except (KeyError, ValueError, IndexError) as error:
            raise ApiError(400, "bad_request", str(error)) from None
        return {
            "indices": response.indices,
            "scores": response.scores,
            "model_name": response.model_name,
            "model_version": response.model_version,
            "predicted_sc": response.predicted_sc,
            "predicted_tc": response.predicted_tc,
            "latency_ms": response.latency_ms,
            "degraded": response.degraded,
            "cached": response.cached,
        }

    def handle_classify(self, payload: dict) -> dict:
        if self.service.classifier is None:
            raise ApiError(400, "no_classifier",
                           "this gateway serves no query classifier")
        tokens = _as_array(_require(payload, "tokens"), np.int64, "tokens")
        if tokens.ndim != 1:
            raise ApiError(400, "bad_request",
                           "'tokens' must be one query's token id list")
        lengths = payload.get("lengths")
        try:
            sc, tc = self.service.classify_query(tokens, lengths)
        except (KeyError, ValueError, IndexError) as error:
            raise ApiError(400, "bad_request", str(error)) from None
        result = {"sc": sc, "tc": tc}
        if payload.get("probs"):
            token_matrix = tokens[None, :]
            length_vec = np.asarray([lengths if lengths is not None
                                     else tokens.shape[0]], dtype=np.int64)
            result["probs"] = self.service.classifier.predict_proba(
                token_matrix, length_vec)[0]
        return result

    def handle_healthz(self, payload: dict) -> dict:
        return {
            "status": "ok",
            "uptime_s": time.monotonic() - self._started_at,
            "models": self.service.registry.names(),
            "workers": self.service.num_workers,
            "requests": self._requests,
            "errors": self._errors,
        }

    def handle_stats(self, payload: dict) -> dict:
        scorers = {}
        for key, stats in self.service.stats().items():
            entry = asdict(stats)
            entry["mean_batch_rows"] = stats.mean_batch_rows
            entry["throughput_rows_per_s"] = stats.throughput_rows_per_s
            scorers[key] = entry
        connections = (self._connection_stats() if self._connection_stats
                       else {"open": 0, "accepted": 0, "requests": 0,
                             "keepalive_reuses": 0, "in_flight": 0})
        endpoints = {}
        for path, histogram in sorted(self._histograms.items()):
            cumulative, total_sum, total = histogram.snapshot()
            endpoints[path] = {
                "count": total,
                "sum_ms": total_sum * 1000.0,
                "p50_ms": histogram.quantile(0.50) * 1000.0,
                "p95_ms": histogram.quantile(0.95) * 1000.0,
                "p99_ms": histogram.quantile(0.99) * 1000.0,
                # Cumulative counts per log-spaced bucket bound (ms), the
                # same series /metrics exposes in Prometheus text.
                "buckets": [[bound * 1000.0, count] for bound, count
                            in zip(histogram.bounds, cumulative)],
            }
        result = {
            "server": {
                "requests": self._requests,
                "errors": self._errors,
                "shed_requests": self._shed_requests,
                "deadline_exceeded": self._deadline_exceeded,
                "degraded_responses": self.service.degraded_responses,
                "uptime_s": time.monotonic() - self._started_at,
                "connections": connections,
            },
            "scorers": scorers,
            "endpoints": endpoints,
            "breakers": self.service.breaker_stats(),
            "quarantined": self.service.registry.quarantined(),
            "cache": self.service.cache_stats(),
        }
        if self.service.fault_injector is not None:
            result["faults"] = self.service.fault_injector.snapshot()
        return result

    def handle_metrics(self, payload: dict) -> tuple[str, dict]:
        """Prometheus text exposition: the same counters ``/stats`` serves.

        Returns ``(text body, headers)`` — the one endpoint whose body is
        not JSON; the transports pass raw ``str`` payloads through.
        """
        lines: list[str] = []

        def family(name: str, mtype: str, help_text: str) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {mtype}")

        family("gateway_uptime_seconds", "gauge",
               "Seconds since the dispatcher started.")
        lines.append(render_metric("gateway_uptime_seconds",
                                   time.monotonic() - self._started_at))
        family("gateway_requests_total", "counter",
               "Requests dispatched (including error responses).")
        lines.append(render_metric("gateway_requests_total", self._requests))
        family("gateway_errors_total", "counter",
               "Error responses served (4xx/5xx, protocol errors included).")
        lines.append(render_metric("gateway_errors_total", self._errors))
        family("gateway_shed_requests_total", "counter",
               "Requests refused with 429 at the admission gate.")
        lines.append(render_metric("gateway_shed_requests_total",
                                   self._shed_requests))
        family("gateway_deadline_exceeded_total", "counter",
               "Requests answered 504 because their deadline passed.")
        lines.append(render_metric("gateway_deadline_exceeded_total",
                                   self._deadline_exceeded))
        family("gateway_degraded_responses_total", "counter",
               "Rank responses served by the model-free degraded fallback.")
        lines.append(render_metric("gateway_degraded_responses_total",
                                   self.service.degraded_responses))
        cache = self.service.cache_stats()
        family("result_cache_enabled", "gauge",
               "1 when the version-keyed result cache is configured.")
        lines.append(render_metric("result_cache_enabled",
                                   int(cache["enabled"])))
        family("result_cache_entries", "gauge",
               "Entries currently held by the result cache.")
        lines.append(render_metric("result_cache_entries", cache["entries"]))
        family("result_cache_capacity_entries", "gauge",
               "Result cache capacity bound (LRU evicts past it).")
        lines.append(render_metric("result_cache_capacity_entries",
                                   cache["max_entries"]))
        family("result_cache_hits_total", "counter",
               "Requests answered from the result cache.")
        lines.append(render_metric("result_cache_hits_total", cache["hits"]))
        family("result_cache_misses_total", "counter",
               "Cache lookups that fell through to the scorer.")
        lines.append(render_metric("result_cache_misses_total",
                                   cache["misses"]))
        family("result_cache_evictions_total", "counter",
               "Entries evicted by the LRU capacity bound.")
        lines.append(render_metric("result_cache_evictions_total",
                                   cache["evictions"]))
        family("result_cache_expired_total", "counter",
               "Entries dropped at lookup because their TTL passed.")
        lines.append(render_metric("result_cache_expired_total",
                                   cache["expired"]))
        if self._connection_stats is not None:
            connections = self._connection_stats()
            family("gateway_connections_open", "gauge",
                   "Currently connected sockets.")
            lines.append(render_metric("gateway_connections_open",
                                       connections.get("open", 0)))
            family("gateway_connections_accepted_total", "counter",
                   "Connections accepted since start.")
            lines.append(render_metric("gateway_connections_accepted_total",
                                       connections.get("accepted", 0)))
            family("gateway_keepalive_reuses_total", "counter",
                   "Requests that arrived on an already-used connection.")
            lines.append(render_metric("gateway_keepalive_reuses_total",
                                       connections.get("keepalive_reuses", 0)))
            family("gateway_dispatch_in_flight", "gauge",
                   "Requests currently inside a handler.")
            lines.append(render_metric("gateway_dispatch_in_flight",
                                       connections.get("in_flight", 0)))
        family("gateway_request_duration_seconds", "histogram",
               "Request latency by endpoint (dispatch-observed).")
        for path, histogram in sorted(self._histograms.items()):
            lines.extend(render_histogram("gateway_request_duration_seconds",
                                          histogram, {"endpoint": path}))
        scorer_gauges = [
            ("scorer_backlog_rows", "gauge",
             "Rows enqueued but not yet collected into a micro-batch.",
             lambda s: s.backlog_rows),
            ("scorer_max_backlog_rows", "gauge",
             "Admission bound in rows (absent when unbounded).",
             lambda s: s.max_backlog_rows),
            ("scorer_shed_requests_total", "counter",
             "Submissions refused at the pool's admission bound.",
             lambda s: s.shed_requests),
            ("scorer_shed_rows_total", "counter",
             "Rows carried by refused submissions.",
             lambda s: s.shed_rows),
            ("scorer_drain_rate_rows_per_second", "gauge",
             "Recent wall-clock drain rate of the pool.",
             lambda s: s.drain_rate_rows_per_s),
            ("scorer_requests_total", "counter",
             "Score requests completed.", lambda s: s.requests),
            ("scorer_rows_total", "counter",
             "Candidate rows scored.", lambda s: s.rows),
            ("scorer_worker_restarts_total", "counter",
             "Dead scoring workers respawned by the pool supervisor.",
             lambda s: s.worker_restarts),
            ("scorer_expired_requests_total", "counter",
             "Queued requests dropped because their deadline passed.",
             lambda s: s.expired_requests),
            ("scorer_expired_rows_total", "counter",
             "Rows carried by deadline-dropped requests.",
             lambda s: s.expired_rows),
            ("scorer_lost_resolutions_total", "counter",
             "Future resolutions lost to a cancel/race (lost responses).",
             lambda s: s.lost_resolutions),
            ("scorer_averted_respawns_total", "counter",
             "Worker respawns abandoned because close() won the race.",
             lambda s: s.averted_respawns),
            ("scorer_processes", "gauge",
             "Scorer processes behind the pool (0 = in-process scoring).",
             lambda s: s.processes),
            ("scorer_process_restarts_total", "counter",
             "Dead scorer processes respawned by the host.",
             lambda s: s.process_restarts),
            ("scorer_process_busy_seconds_total", "counter",
             "Child-measured seconds inside the scoring plan.",
             lambda s: s.process_busy_seconds),
            ("scorer_quantized", "gauge",
             "1 when the pool scores through int8 quantized plans.",
             lambda s: int(s.quantized)),
        ]
        scorer_stats = self.service.stats()
        for name, mtype, help_text, getter in scorer_gauges:
            family(name, mtype, help_text)
            for pool, stats in sorted(scorer_stats.items()):
                value = getter(stats)
                if value is None:       # unbounded pool: omit the sample
                    continue
                lines.append(render_metric(name, value, {"pool": pool}))
        breakers = self.service.breaker_stats()
        if breakers:
            family("breaker_state", "gauge",
                   "Circuit breaker state (1 on the active state's sample).")
            for model_name, snapshot in breakers.items():
                lines.extend(render_enum_metric(
                    "breaker_state", snapshot["state"],
                    (CLOSED, OPEN, HALF_OPEN), {"model": model_name}))
            family("breaker_opens_total", "counter",
                   "Transitions into the open state.")
            for model_name, snapshot in breakers.items():
                lines.append(render_metric("breaker_opens_total",
                                           snapshot["opens"],
                                           {"model": model_name}))
            family("breaker_rejected_total", "counter",
                   "Requests the breaker diverted to the degraded fallback.")
            for model_name, snapshot in breakers.items():
                lines.append(render_metric("breaker_rejected_total",
                                           snapshot["rejected"],
                                           {"model": model_name}))
        return ("\n".join(lines) + "\n",
                {"Content-Type": PROMETHEUS_CONTENT_TYPE})

    def handle_models(self, payload: dict) -> dict:
        result = {
            "models": [{"name": entry.name, "version": entry.version,
                        "metadata": entry.metadata}
                       for entry in self.service.registry.entries()],
        }
        if self.spec is not None:
            # The feature schema a client (or load generator) needs to
            # construct valid /rank candidates.
            result["spec"] = {
                "numeric": self.spec.numeric_names,
                "sparse": {f.name: f.cardinality for f in self.spec.sparse},
            }
        return result

    def handle_reload(self, payload: dict) -> dict:
        if self.checkpoint_dir is None or self.spec is None \
                or self.taxonomy is None:
            raise ApiError(400, "no_checkpoint_dir",
                           "this gateway was not started from a checkpoint "
                           "directory; nothing to reload")
        registered = self.service.registry.reload_from_directory(
            self.checkpoint_dir, self.spec, self.taxonomy,
            quantized=self.quantized)
        return {
            "registered": [{"name": entry.name, "version": entry.version}
                           for entry in registered],
            "models": self.service.registry.names(),
            # Checkpoints refused this (or an earlier) sweep: corrupt
            # bytes were quarantined and the last good version of each
            # name keeps serving.
            "quarantined": self.service.registry.quarantined(),
        }

    def handle_faults(self, payload: dict) -> dict:
        """Configure fault injection on a live gateway (chaos testing).

        Only routable when the server was started with
        ``--enable-fault-injection`` (which is what constructs the
        service's injector); otherwise a structured 403.  Payload keys:
        ``score_error_rate``, ``latency_rate``, ``latency_ms``,
        ``kill_workers`` (one-shot count), ``tear_checkpoint`` (a model
        name, or ``true`` for the first ranking checkpoint — truncates
        its weights file in place), and ``reset`` (zero all rates first).
        """
        injector = self.service.fault_injector
        if injector is None:
            raise ApiError(403, "fault_injection_disabled",
                           "fault injection is not enabled on this gateway; "
                           "start it with --enable-fault-injection")
        try:
            if payload.get("reset"):
                injector.reset()
            injector.configure(
                score_error_rate=payload.get("score_error_rate"),
                latency_rate=payload.get("latency_rate"),
                latency_ms=payload.get("latency_ms"))
            kills = payload.get("kill_workers", 0)
            if not isinstance(kills, int) or kills < 0:
                raise ValueError("kill_workers must be a non-negative integer")
            if kills:
                injector.arm_worker_kills(kills)
        except (TypeError, ValueError) as error:
            raise ApiError(400, "bad_request", str(error)) from None
        result = {"faults": injector.snapshot()}
        tear = payload.get("tear_checkpoint")
        if tear:
            result["torn"] = self._tear_checkpoint(injector, tear)
            result["faults"] = injector.snapshot()
        return result

    def _tear_checkpoint(self, injector, target) -> dict:
        """Truncate a checkpoint's weights file in place (torn write)."""
        if self.checkpoint_dir is None:
            raise ApiError(400, "no_checkpoint_dir",
                           "this gateway serves no checkpoint directory; "
                           "nothing to tear")
        weights_path = None
        if isinstance(target, str):
            candidate = self.checkpoint_dir / f"{target}.npz"
            if not candidate.exists():
                raise ApiError(404, "not_found",
                               f"no checkpoint weights for {target!r}")
            weights_path = candidate
        else:
            # tear_checkpoint: true — first ranking-model weights file
            # (sidecar carries model_name), mirroring the reload scan.
            for meta_path in sorted(self.checkpoint_dir.glob("*.json")):
                try:
                    meta = json.loads(meta_path.read_text())
                except ValueError:
                    continue
                if isinstance(meta, dict) and "model_name" in meta \
                        and meta_path.with_suffix(".npz").exists():
                    weights_path = meta_path.with_suffix(".npz")
                    break
            if weights_path is None:
                raise ApiError(404, "not_found",
                               "no ranking-model checkpoint to tear")
        new_size = injector.tear_file(weights_path)
        return {"path": str(weights_path), "new_size_bytes": new_size}
