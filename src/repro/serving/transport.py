"""Connection transports for the serving gateway.

The transport layer of the three-layer gateway split owns sockets and
nothing else: bytes in, bytes out, connection lifecycle.  Requests are
framed by :mod:`repro.serving.protocol` and answered by a
:class:`~repro.serving.handlers.GatewayDispatcher`; both transports
drive the exact same dispatcher, which is what lets the test suite pin
behavioral parity between them.

Two implementations:

* :class:`SelectorTransport` — the default.  One event-loop thread
  multiplexes every connection through stdlib :mod:`selectors`
  (non-blocking accept/read/write, per-connection parser state machines,
  keep-alive and idle-timeout reaping).  Completed requests are handed
  to a small dispatch pool (whose threads block on the
  :class:`~repro.serving.ScorerPool` futures — scoring stays on the
  scorer workers) and finished responses come back through a completion
  queue that wakes the loop.  A slow client therefore costs one buffer,
  never a thread: the loop trickles its bytes out as the socket drains,
  which is what lets the gateway hold hundreds of concurrent sockets.
* :class:`ThreadedTransport` — the PR 4 thread-per-connection
  ``ThreadingHTTPServer`` front-end, kept behind ``--backend threaded``
  as the parity baseline and for deployments that prefer its simplicity
  at low connection counts.

:class:`GatewayCounters` is the shared connection-counter block both
transports maintain and ``GET /stats`` reports.
"""

from __future__ import annotations

import queue
import selectors
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .handlers import GatewayDispatcher
from .protocol import (MAX_BODY_BYTES, MAX_HEADER_BYTES, ProtocolError,
                       Request, RequestParser, encode_error, encode_json,
                       encode_response, validate_content_length)

__all__ = ["GatewayCounters", "SelectorTransport", "ThreadedTransport",
           "BACKENDS", "create_transport"]

_RECV_CHUNK = 65536
# Write backpressure: once a connection's outbound buffer passes this,
# stop reading it until the buffer drains.  Without the pause, a client
# that pipelines requests but never reads responses grows the buffer
# without bound — and its own reads would keep resetting the idle timer.
_OUT_HIGH_WATER = 1 << 20
DEFAULT_IDLE_TIMEOUT_S = 30.0


class GatewayCounters:
    """Connection-level counters shared by the transport and ``/stats``.

    ``open`` is the number of currently connected sockets, ``accepted``
    the total ever accepted, ``requests`` the responses served, and
    ``keepalive_reuses`` how many requests arrived on an
    already-used connection (i.e. how much work keep-alive saved).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.open = 0
        self.accepted = 0
        self.requests = 0
        self.keepalive_reuses = 0

    def connection_opened(self) -> None:
        with self._lock:
            self.open += 1
            self.accepted += 1

    def connection_closed(self) -> None:
        with self._lock:
            self.open -= 1

    def request_served(self, reused: bool) -> None:
        with self._lock:
            self.requests += 1
            if reused:
                self.keepalive_reuses += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {"open": self.open, "accepted": self.accepted,
                    "requests": self.requests,
                    "keepalive_reuses": self.keepalive_reuses}


# ----------------------------------------------------------------------
# Selector-based event loop transport
# ----------------------------------------------------------------------
class _Connection:
    """Per-socket state machine for the selector loop.

    Owned by the event-loop thread; dispatch threads only ever read the
    immutable :class:`Request` they were handed and push results onto
    the completion queue, so no per-connection locking is needed.
    """

    __slots__ = ("sock", "parser", "out", "pending", "in_flight",
                 "requests_dispatched", "last_activity", "close_after_write",
                 "read_closed", "registered", "alive")

    def __init__(self, sock: socket.socket, max_header_bytes: int,
                 max_body_bytes: int):
        self.sock = sock
        self.parser = RequestParser(max_header_bytes=max_header_bytes,
                                    max_body_bytes=max_body_bytes)
        self.out = bytearray()
        # Parsed-but-not-dispatched items, strictly in arrival order.  A
        # trailing ProtocolError rides the same queue so its error
        # response cannot jump ahead of responses the client is owed.
        self.pending: list[Request | ProtocolError] = []
        self.in_flight = False              # one dispatch at a time: responses
        self.requests_dispatched = 0        # stay in pipeline order
        self.last_activity = time.monotonic()
        self.close_after_write = False
        self.read_closed = False            # stream desynced: stop reading
        self.registered = True              # currently in the selector
        self.alive = True


class SelectorTransport:
    """Non-blocking event-loop front-end on stdlib :mod:`selectors`.

    Parameters
    ----------
    dispatcher:
        The :class:`GatewayDispatcher` answering completed requests.
    idle_timeout_s:
        A connection with no byte activity for this long is reaped: a
        quiet keep-alive connection is closed silently, a mid-request
        stall (slow-loris) is answered with a structured 408 first.
    max_body_bytes / max_header_bytes:
        Framing limits; violations answer structurally (413/431) and
        close, since the stream can no longer be trusted.
    dispatch_workers:
        Threads executing handlers (which block on scorer futures).
        This caps in-flight *handler* concurrency, not connections —
        idle keep-alive sockets cost nothing.
    """

    def __init__(self, host: str, port: int, dispatcher: GatewayDispatcher,
                 counters: GatewayCounters | None = None,
                 idle_timeout_s: float = DEFAULT_IDLE_TIMEOUT_S,
                 max_body_bytes: int = MAX_BODY_BYTES,
                 max_header_bytes: int = MAX_HEADER_BYTES,
                 dispatch_workers: int = 8):
        if idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive")
        if dispatch_workers <= 0:
            raise ValueError("dispatch_workers must be positive")
        self.dispatcher = dispatcher
        self.counters = counters if counters is not None else GatewayCounters()
        self.idle_timeout_s = idle_timeout_s
        self._max_body_bytes = max_body_bytes
        self._max_header_bytes = max_header_bytes
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(1024)
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        # Self-pipe: dispatch threads finishing a response must wake the
        # loop out of select() to get it written.
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._completions: queue.Queue = queue.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=dispatch_workers, thread_name_prefix="gateway-dispatch")
        self._connections: set[_Connection] = set()
        self._shutdown_requested = threading.Event()
        self._loop_done = threading.Event()
        self._loop_done.set()               # not serving yet

    @property
    def server_address(self) -> tuple[str, int]:
        return self._listener.getsockname()[:2]

    # ------------------------------------------------------------------
    # Lifecycle (mirrors the http.server surface ServingServer drives)
    # ------------------------------------------------------------------
    def serve_forever(self, poll_interval: float = 0.05) -> None:
        # A shutdown() issued before the serve thread got here must win:
        # never clear the flag (serving is one-shot), never touch a
        # selector that server_close() may already have closed.
        if self._shutdown_requested.is_set():
            return
        self._loop_done.clear()
        sel = self._selector
        try:
            try:
                sel.register(self._listener, selectors.EVENT_READ, "accept")
                sel.register(self._wake_r, selectors.EVENT_READ, "wake")
            except (OSError, ValueError, KeyError):
                return                  # closed before serving began
            while not self._shutdown_requested.is_set():
                for key, mask in sel.select(self._select_timeout(poll_interval)):
                    if key.data == "accept":
                        self._accept()
                    elif key.data == "wake":
                        self._drain_wake()
                    else:
                        connection = key.data
                        if connection.alive and mask & selectors.EVENT_READ:
                            self._on_readable(connection)
                        if connection.alive and mask & selectors.EVENT_WRITE:
                            self._on_writable(connection)
                self._apply_completions()
                self._reap_idle()
        finally:
            for connection in list(self._connections):
                self._close_connection(connection)
            for sock in (self._listener, self._wake_r):
                try:
                    sel.unregister(sock)
                except (OSError, ValueError, KeyError):
                    pass
            self._loop_done.set()

    def shutdown(self) -> None:
        """Ask the loop to exit and wait until it has."""
        self._shutdown_requested.set()
        self._wake()
        self._loop_done.wait()

    def server_close(self) -> None:
        self._listener.close()
        self._selector.close()
        self._wake_r.close()
        self._wake_w.close()
        # Don't wait: a dispatch thread may still be blocked on a scorer
        # future that only resolves once the service shuts its pools
        # (ServingServer.close does that right after this call).
        self._executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------
    def _select_timeout(self, poll_interval: float) -> float:
        """Sleep until the next idle deadline could fire (bounded).

        Only reapable connections (no handler in flight) bound the sleep
        — a long-scoring request must not spin the loop at its past-due
        deadline.
        """
        reapable = [c.last_activity for c in self._connections
                    if not c.in_flight]
        if not reapable:
            return max(poll_interval, 0.05)
        next_deadline = min(reapable) + self.idle_timeout_s
        return min(max(next_deadline - time.monotonic(), 0.01), 0.5)

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except (BlockingIOError, OSError):
            pass                        # already pending / already closed

    def _drain_wake(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass

    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return                  # listener closed under us
            sock.setblocking(False)
            # Same latency hygiene as the threaded gateway: small JSON
            # responses on persistent connections stall ~5x on
            # delayed ACKs without NODELAY.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = _Connection(sock, self._max_header_bytes,
                                     self._max_body_bytes)
            self._connections.add(connection)
            self.counters.connection_opened()
            self._selector.register(sock, selectors.EVENT_READ, connection)

    def _on_readable(self, connection: _Connection) -> None:
        if connection.read_closed or connection.close_after_write:
            # Already answering a framing violation: the parser is dead
            # and further bytes must not mint duplicate error responses.
            return
        try:
            data = connection.sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_connection(connection)
            return
        if not data:                    # peer closed its end
            self._close_connection(connection)
            return
        connection.last_activity = time.monotonic()
        try:
            requests = connection.parser.feed(data)
        except ProtocolError as error:
            # The byte stream is desynced: stop reading, answer any
            # requests this feed still completed, then the error — all
            # through the ordered pending queue — and close.
            self.dispatcher.record_protocol_error()
            connection.pending.extend(error.completed)
            connection.pending.append(error)
            connection.read_closed = True
            self._update_interest(connection)
            self._pump_dispatch(connection)
            return
        connection.pending.extend(requests)
        self._pump_dispatch(connection)

    def _pump_dispatch(self, connection: _Connection) -> None:
        """Hand the connection's next request to the dispatch pool.

        One in-flight handler per connection: pipelined requests are
        answered strictly in arrival order, so back-to-back requests in
        one segment can never interleave their responses.
        """
        if connection.in_flight or connection.close_after_write \
                or not connection.pending:
            return
        item = connection.pending.pop(0)
        if isinstance(item, ProtocolError):
            # Terminal by construction (reads stopped when it was queued):
            # emit the structured error in turn, then close once written.
            connection.out += encode_error(item.status, item.kind, str(item))
            connection.close_after_write = True
            self._update_interest(connection)
            self._on_writable(connection)
            return
        connection.in_flight = True
        reused = connection.requests_dispatched > 0
        connection.requests_dispatched += 1
        self._executor.submit(self._run_handler, connection, item, reused)

    def _run_handler(self, connection: _Connection, request: Request,
                     reused: bool) -> None:
        """Dispatch-pool job: compute the response, enqueue, wake the loop."""
        close = not request.keep_alive
        try:
            # Raw target: the dispatcher owns path normalization (the
            # threaded backend hands it raw paths too).
            status, payload = self.dispatcher.dispatch(
                request.method, request.target, request.body)
            data = encode_response(status, payload,
                                   keep_alive=request.keep_alive)
        except BaseException as error:  # encoding failed: still must answer
            data = encode_error(500, "internal",
                                f"{type(error).__name__}: {error}")
            close = True
        self._completions.put((connection, data, close, reused))
        self._wake()

    def _apply_completions(self) -> None:
        while True:
            try:
                connection, data, close, reused = self._completions.get_nowait()
            except queue.Empty:
                return
            if not connection.alive:
                continue                # client vanished while we scored
            connection.in_flight = False
            connection.out += data
            connection.close_after_write |= close
            connection.last_activity = time.monotonic()
            self.counters.request_served(reused=reused)
            self._update_interest(connection)
            self._pump_dispatch(connection)
            # Opportunistic write: the socket is almost always writable
            # for a small JSON response, so skip a select() round trip.
            self._on_writable(connection)

    def _on_writable(self, connection: _Connection) -> None:
        if not connection.out:
            self._update_interest(connection)
            return
        try:
            sent = connection.sock.send(memoryview(connection.out))
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_connection(connection)
            return
        if sent:
            del connection.out[:sent]
            connection.last_activity = time.monotonic()
        if not connection.out and connection.close_after_write:
            self._close_connection(connection)
            return
        # Recompute interest on every write: draining below the
        # high-water mark resumes reads a backpressured peer earned back.
        self._update_interest(connection)

    def _update_interest(self, connection: _Connection) -> None:
        if not connection.alive:
            return
        # Read only while the stream is trusted (a dead parser must not
        # be fed) and the peer is keeping up with its responses (write
        # backpressure: past the high-water mark, reads pause until the
        # buffer drains, so a never-reading pipeliner eventually goes
        # idle and is reaped instead of growing the buffer forever).
        mask = 0
        if not connection.close_after_write and not connection.read_closed \
                and len(connection.out) < _OUT_HIGH_WATER:
            mask = selectors.EVENT_READ
        if connection.out:
            mask |= selectors.EVENT_WRITE
        try:
            if not mask:
                # Nothing to watch (e.g. waiting on an in-flight handler
                # with the stream already desynced): park the socket
                # entirely.  Registering EVENT_WRITE with an empty out
                # buffer would make the always-writable socket spin
                # select() at 100% CPU; completions re-register it.
                if connection.registered:
                    self._selector.unregister(connection.sock)
                    connection.registered = False
            elif connection.registered:
                self._selector.modify(connection.sock, mask, connection)
            else:
                self._selector.register(connection.sock, mask, connection)
                connection.registered = True
        except (KeyError, ValueError, OSError):
            pass                        # unregistered in a racing close

    def _reap_idle(self) -> None:
        if not self._connections:
            return
        now = time.monotonic()
        for connection in list(self._connections):
            if connection.in_flight:
                continue                # a handler is working: not idle
            if now - connection.last_activity <= self.idle_timeout_s:
                continue                # write progress also bumps activity
            if connection.out:
                # Write-stalled: the peer stopped reading its response
                # (send() has made no progress for a full idle window).
                # Nothing can be delivered, so drop it — otherwise a
                # never-reading client leaks the socket + buffer forever.
                self._close_connection(connection)
            elif connection.parser.mid_request or connection.pending:
                # Slow-loris: a request started arriving and stalled.
                # Answer so a confused-but-honest client learns why.
                self.dispatcher.record_protocol_error()
                connection.out += encode_error(
                    408, "request_timeout",
                    f"request idle for more than {self.idle_timeout_s:g}s")
                connection.close_after_write = True
                self._update_interest(connection)
                self._on_writable(connection)
            else:
                self._close_connection(connection)

    def _close_connection(self, connection: _Connection) -> None:
        if not connection.alive:
            return
        connection.alive = False
        self._connections.discard(connection)
        self.counters.connection_closed()
        try:
            self._selector.unregister(connection.sock)
        except (KeyError, ValueError):
            pass
        try:
            connection.sock.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Threaded fallback transport (the PR 4 front-end)
# ----------------------------------------------------------------------
class _GatewayHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # The gateway holds real state (scorer pools); don't let a lingering
    # client connection on a reused address confuse a fresh server.
    allow_reuse_address = True
    dispatcher: GatewayDispatcher
    counters: GatewayCounters
    max_body_bytes: int
    idle_timeout_s: float


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serving/2.0"
    protocol_version = "HTTP/1.1"       # keep-alive for multi-request clients
    # Latency hygiene for small JSON responses on persistent connections:
    # buffer the whole response into one TCP segment and disable Nagle,
    # else the header/body write pattern triggers delayed-ACK stalls
    # (measured ~8x request latency on loopback).
    wbufsize = -1
    disable_nagle_algorithm = True

    def setup(self):
        # Socket timeout doubles as the keep-alive idle timeout: a read
        # that times out makes handle_one_request close the connection,
        # matching the selector backend's reaper.
        self.timeout = self.server.idle_timeout_s
        super().setup()
        self._requests_on_connection = 0
        self.server.counters.connection_opened()

    def finish(self):
        try:
            super().finish()
        finally:
            self.server.counters.connection_closed()

    def log_message(self, format, *args):   # noqa: A002 - stdlib signature
        pass                                # the gateway keeps its own counters

    def do_GET(self):
        self._dispatch("GET")

    def do_POST(self):
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        dispatcher = self.server.dispatcher
        try:
            # Drain the body before anything can error: on a keep-alive
            # connection an unread body would be parsed as the next
            # request line, desyncing every request after a 4xx.
            body = self._read_body() if method == "POST" else b""
        except ProtocolError as error:
            # Same contract as the selector backend's ProtocolError
            # path: structured answer, then drop the connection.
            dispatcher.record_protocol_error()
            self.close_connection = True
            self._send(error.status,
                       {"error": {"type": error.kind, "message": str(error)}})
            return
        status, payload = dispatcher.dispatch(method, self.path, body)
        self._requests_on_connection += 1
        self.server.counters.request_served(
            reused=self._requests_on_connection > 1)
        self._send(status, payload)

    def _read_body(self) -> bytes:
        # Shared validation with the selector backend's parser, so the
        # 400/413 semantics (and error bodies) cannot drift apart.
        length = validate_content_length(self.headers.get("Content-Length"),
                                         self.server.max_body_bytes)
        return self.rfile.read(length) if length > 0 else b""

    def _send(self, status: int, payload: dict) -> None:
        try:
            body = encode_json(payload)
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass                            # client went away mid-response


class ThreadedTransport:
    """Thread-per-connection front-end on stdlib ``ThreadingHTTPServer``.

    The PR 4 gateway, now driving the shared
    :class:`~repro.serving.handlers.GatewayDispatcher` — kept as the
    behavioral-parity baseline for the selector backend and selectable
    with ``--backend threaded``.
    """

    def __init__(self, host: str, port: int, dispatcher: GatewayDispatcher,
                 counters: GatewayCounters | None = None,
                 idle_timeout_s: float = DEFAULT_IDLE_TIMEOUT_S,
                 max_body_bytes: int = MAX_BODY_BYTES,
                 max_header_bytes: int = MAX_HEADER_BYTES,
                 dispatch_workers: int = 8):
        del max_header_bytes, dispatch_workers  # stdlib server manages both
        self.dispatcher = dispatcher
        self.counters = counters if counters is not None else GatewayCounters()
        self.idle_timeout_s = idle_timeout_s
        self._httpd = _GatewayHTTPServer((host, port), _Handler)
        self._httpd.dispatcher = dispatcher
        self._httpd.counters = self.counters
        self._httpd.max_body_bytes = max_body_bytes
        self._httpd.idle_timeout_s = idle_timeout_s

    @property
    def server_address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    def serve_forever(self, poll_interval: float = 0.05) -> None:
        self._httpd.serve_forever(poll_interval=poll_interval)

    def shutdown(self) -> None:
        self._httpd.shutdown()

    def server_close(self) -> None:
        self._httpd.server_close()


BACKENDS = {"selector": SelectorTransport, "threaded": ThreadedTransport}


def create_transport(backend: str, host: str, port: int,
                     dispatcher: GatewayDispatcher, **kwargs):
    """Build the requested transport; ``backend`` is ``selector`` or
    ``threaded``."""
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise ValueError(f"unknown backend {backend!r}; "
                         f"choose from {sorted(BACKENDS)}") from None
    return factory(host, port, dispatcher, **kwargs)
